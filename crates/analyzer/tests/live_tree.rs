//! The two whole-workspace invariants CI's `lint-invariants` job relies on:
//!
//! * the encoded crate DAG matches the real manifests exactly (no silent
//!   drift between `analyzer::layering::CRATE_DAG`, `docs/ARCHITECTURE.md`
//!   and the `Cargo.toml` files);
//! * the live tree passes the analyzer with zero unjustified findings, so
//!   `cargo run -p analyzer -- --check` exits 0 on HEAD.

use std::path::Path;

fn workspace_root() -> std::path::PathBuf {
    analyzer::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the analyzer crate")
}

#[test]
fn dag_matches_workspace_manifests() {
    if let Err(drift) = analyzer::verify_dag_matches(&workspace_root()) {
        panic!("{drift}");
    }
}

#[test]
fn live_tree_has_zero_unjustified_findings() {
    let findings = analyzer::analyze_workspace(&workspace_root()).expect("scan workspace");
    let unjustified: Vec<String> = findings
        .iter()
        .filter(|f| !f.justified())
        .map(|f| f.to_string())
        .collect();
    assert!(
        unjustified.is_empty(),
        "the live tree must analyze clean (fix the hazard or justify it inline):\n{}",
        unjustified.join("\n")
    );
    // Justifications exist in the tree; each must carry a real reason (the
    // grammar already rejects empty ones, so just pin that some survive —
    // a regression that drops all justification parsing would zero this).
    assert!(
        findings.iter().any(|f| f.justified()),
        "expected at least one justified finding in the live tree"
    );
}
