//! Fixture-corpus golden test: every known-bad snippet under `fixtures/bad`
//! trips *exactly* its named lint, every snippet under `fixtures/good`
//! produces zero unjustified findings, and every bad manifest under
//! `fixtures/manifests` trips the layering check.  The corpus pins the
//! analyzer's heuristics: a change that stops recognising a pattern (or
//! starts over-firing) fails here before it silently weakens CI.

use std::path::{Path, PathBuf};

use analyzer::{analyze_source, check_manifest, Lint};

fn fixtures_dir(sub: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub)
}

/// Parses `//@ key: value` (or `#@ key: value` for TOML) header directives.
fn directive(text: &str, key: &str) -> Option<String> {
    for line in text.lines() {
        let line = line.trim();
        let body = line
            .strip_prefix("//@")
            .or_else(|| line.strip_prefix("#@"))?
            .trim();
        if let Some(value) = body.strip_prefix(key).and_then(|r| r.strip_prefix(':')) {
            return Some(value.trim().to_string());
        }
    }
    None
}

fn sorted_fixtures(sub: &str, ext: &str) -> Vec<PathBuf> {
    let dir = fixtures_dir(sub);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("reading {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == ext))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures in {}", dir.display());
    files
}

#[test]
fn bad_fixtures_each_trip_exactly_their_lint() {
    for path in sorted_fixtures("bad", "rs") {
        let text = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let expect = directive(&text, "expect")
            .unwrap_or_else(|| panic!("{name}: missing //@ expect: directive"));
        let expected =
            Lint::from_name(&expect).unwrap_or_else(|| panic!("{name}: unknown lint `{expect}`"));
        let crate_dir = directive(&text, "crate")
            .unwrap_or_else(|| panic!("{name}: missing //@ crate: directive"));

        let findings = analyze_source(&crate_dir, Path::new(&name), &text);
        let unjustified: Vec<_> = findings.iter().filter(|f| !f.justified()).collect();
        assert!(
            !unjustified.is_empty(),
            "{name}: expected at least one unjustified `{expect}` finding, got none"
        );
        for f in &unjustified {
            assert_eq!(
                f.lint, expected,
                "{name}: fixture must trip only `{expect}`, but line {} tripped `{}`: {}",
                f.line, f.lint, f.message
            );
        }
    }
}

#[test]
fn good_fixtures_produce_zero_unjustified_findings() {
    for path in sorted_fixtures("good", "rs") {
        let text = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let crate_dir = directive(&text, "crate")
            .unwrap_or_else(|| panic!("{name}: missing //@ crate: directive"));

        let findings = analyze_source(&crate_dir, Path::new(&name), &text);
        let unjustified: Vec<String> = findings
            .iter()
            .filter(|f| !f.justified())
            .map(|f| f.to_string())
            .collect();
        assert!(
            unjustified.is_empty(),
            "{name}: good fixture produced unjustified findings:\n{}",
            unjustified.join("\n")
        );
    }
}

#[test]
fn justified_good_fixtures_really_exercise_the_lints() {
    // The justified fixture must produce *justified* findings — otherwise it
    // passes trivially without proving the allow-comment grammar works.
    let path = fixtures_dir("good").join("justified_hash_iter.rs");
    let text = std::fs::read_to_string(&path).unwrap();
    let findings = analyze_source("core", Path::new("justified_hash_iter.rs"), &text);
    let justified = findings.iter().filter(|f| f.justified()).count();
    assert!(
        justified >= 2,
        "expected the justified fixture to trip (and suppress) hash-iter at least twice, got {justified}"
    );
}

#[test]
fn bad_manifests_trip_the_layering_check() {
    for path in sorted_fixtures("manifests", "toml") {
        let text = std::fs::read_to_string(&path).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let expect = directive(&text, "expect")
            .unwrap_or_else(|| panic!("{name}: missing #@ expect: directive"));
        assert_eq!(
            expect, "layering",
            "{name}: manifests can only trip layering"
        );
        let crate_dir = directive(&text, "crate")
            .unwrap_or_else(|| panic!("{name}: missing #@ crate: directive"));

        let findings = check_manifest(&crate_dir, &text, Path::new(&name));
        assert!(
            !findings.is_empty(),
            "{name}: expected a layering finding, got none"
        );
        for f in &findings {
            assert_eq!(f.lint, Lint::Layering, "{name}: unexpected lint {}", f.lint);
        }
    }
}
