//@ expect: wall-clock
//@ crate: simkernel
// RandomState seeds SipHash from process entropy: any order or capacity
// decision derived from it varies run to run.

pub fn seeded_map() -> HashMap<u64, u64, RandomState> {
    HashMap::with_hasher(RandomState::new())
}
