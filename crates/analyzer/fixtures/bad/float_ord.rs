//@ expect: float-ord
//@ crate: simkernel
// A NaN comparing `None` silently collapses the ordering: the binary search
// lands on an arbitrary index and every later event inherits the corruption.

pub fn first_bucket_above(cumulative: &[f64], x: f64) -> usize {
    match cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Less)) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}
