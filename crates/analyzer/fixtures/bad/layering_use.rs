//@ expect: layering
//@ crate: storage
// `storage` sits below `tpsim` in the crate DAG: reaching up inverts the
// layering even if the manifest somehow resolved it.

use tpsim::config::SimulationConfig;

pub fn peek(config: &SimulationConfig) -> usize {
    config.nodes
}
