//@ expect: hash-iter
//@ crate: core
// Iteration order of a HashMap differs across compiler versions (SipHash
// keys change); pushing values in that order into a report breaks the
// byte-identity goldens.

pub struct Stats {
    per_tx: HashMap<u64, f64>,
}

pub fn dump(s: &Stats, out: &mut Vec<f64>) {
    for v in s.per_tx.values() {
        out.push(*v);
    }
}
