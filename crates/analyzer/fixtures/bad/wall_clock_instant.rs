//@ expect: wall-clock
//@ crate: core
// Reading the host clock inside the engine makes the run a function of the
// machine's load instead of (config, seed).

pub fn decide_timeout() -> bool {
    let started = std::time::Instant::now();
    started.elapsed().as_millis() > 10
}
