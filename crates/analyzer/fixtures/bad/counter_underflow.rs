//@ expect: counter-underflow
//@ crate: core
// The log_wb_pending class: a double completion event drives the unsigned
// counter through zero and the stat wraps to u64::MAX.

pub struct LogState {
    pending_writes: u64,
}

impl LogState {
    pub fn write_complete(&mut self) {
        self.pending_writes -= 1;
    }
}
