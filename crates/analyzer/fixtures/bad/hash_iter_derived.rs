//@ expect: hash-iter
//@ crate: lockmgr
// The set was looked up out of a map-of-sets: the binding inherits the
// hash container's unordered iteration.

pub struct Graph {
    edges: HashMap<u64, HashSet<u64>>,
}

pub fn first_blocker(g: &mut Graph, waiter: u64) -> Option<u64> {
    if let Some(blockers) = g.edges.remove(&waiter) {
        for b in blockers.iter() {
            return Some(*b); // "first" depends on hash order
        }
    }
    None
}
