//@ expect: hash-iter
//@ crate: core
// `dirty_page_table()` exposes a HashMap-backed iterator: consuming it in
// order (first entry wins) is nondeterministic even though no HashMap is
// declared in this file.

pub fn first_dirty(node: &Node) -> Option<(PageId, u64)> {
    node.bufmgr.dirty_page_table().iter().next()
}
