//@ expect: counter-underflow
//@ crate: simkernel
// Per-worker counters in a Vec underflow exactly like scalar fields.

pub struct Pool {
    in_flight: Vec<usize>,
}

impl Pool {
    pub fn done(&mut self, worker: usize) {
        self.in_flight[worker] -= 1;
    }
}
