//@ crate: core
// An order-independent fold over a hash container is fine — when the
// justification says so inline, where the next reader sees it.

pub struct Stats {
    per_tx: HashMap<u64, f64>,
}

pub fn total(s: &Stats) -> f64 {
    // analyzer: allow(hash-iter): sum is order-independent
    s.per_tx.values().sum()
}

pub fn slowest(s: &Stats) -> Option<u64> {
    let it = s.per_tx.iter(); // analyzer: allow(hash-iter): max below breaks ties on the key
    it.max_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(b.0))).map(|(k, _)| *k)
}
