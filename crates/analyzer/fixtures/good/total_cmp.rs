//@ crate: simkernel
// Total orderings on floats: total_cmp never collapses, sorted iteration
// over a Vec is deterministic by construction.

pub fn first_bucket_above(cumulative: &[f64], x: f64) -> usize {
    match cumulative.binary_search_by(|c| c.total_cmp(&x)) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

pub fn sort_events(times: &mut Vec<(f64, u64)>) {
    times.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}
