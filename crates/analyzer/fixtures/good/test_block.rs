//@ crate: core
// Unit tests may use wall clocks, unordered iteration and bare arithmetic:
// only production code feeds the deterministic schedule.

pub struct Stats {
    per_tx: HashMap<u64, f64>,
}

pub fn len(s: &Stats) -> usize {
    s.per_tx.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_scratchpad() {
        let t0 = std::time::Instant::now();
        let s = Stats { per_tx: HashMap::new() };
        for v in s.per_tx.values() {
            let _ = v.partial_cmp(&0.0);
        }
        assert!(t0.elapsed().as_secs() < 60);
    }
}
