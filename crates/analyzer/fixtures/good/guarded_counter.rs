//@ crate: core
// The checked decrement pattern: a debug_assert names the invariant, the
// guard (or checked_sub) makes release builds saturate instead of wrap.

pub struct LogState {
    pending_writes: u64,
    queued: usize,
}

impl LogState {
    pub fn write_complete(&mut self) {
        debug_assert!(self.pending_writes > 0, "write completion underflow");
        self.pending_writes -= 1;
    }

    pub fn dequeue(&mut self) {
        if let Some(next) = self.queued.checked_sub(1) {
            self.queued = next;
        }
    }

    pub fn drain_one(&mut self) {
        if self.queued == 0 {
            return;
        }
        self.queued -= 1;
    }
}
