//! Line-level source model for the analyzer.
//!
//! The analyzer works on a *stripped* view of each Rust source file: string
//! and character literals are blanked (their delimiters kept), comments are
//! removed from the code channel and routed to a per-line comment channel
//! (where the `analyzer: allow(...)` justification grammar lives), and lines
//! inside `#[cfg(test)] mod … { … }` blocks are marked as test code.  The
//! lint passes then never have to worry about a pattern that only occurs
//! inside a string, a doc comment or a unit test.
//!
//! This is deliberately **not** a Rust parser.  It is a character-level state
//! machine good enough for the handful of token shapes the lints need; the
//! fixture corpus in `fixtures/` pins exactly what it recognises.

/// One logical source line after stripping.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number in the original file.
    pub number: usize,
    /// The code channel: literals blanked, comments removed.
    pub code: String,
    /// The comment channel: the text of any `//` comment on this line
    /// (without the slashes), empty when the line has none.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)] mod … { … }` block.
    pub in_test: bool,
}

/// A stripped source file.
#[derive(Debug)]
pub struct StrippedFile {
    pub lines: Vec<Line>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    /// Inside a `/* … */` comment; payload is the nesting depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal with `n` hashes (`r#"…"#`).
    RawStr(u32),
}

/// Strips `text` into per-line code and comment channels.
pub fn strip(text: &str) -> StrippedFile {
    let mut lines = Vec::new();
    let mut state = State::Normal;
    for (idx, raw) in text.lines().enumerate() {
        let (code, comment, next) = strip_line(raw, state);
        state = next;
        lines.push(Line {
            number: idx + 1,
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_blocks(&mut lines);
    StrippedFile { lines }
}

/// Strips a single physical line, starting in `state`; returns the code
/// channel, the comment channel and the state the next line starts in.
fn strip_line(raw: &str, mut state: State) -> (String, String, State) {
    let b: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < b.len() {
        match state {
            State::Block(depth) => {
                if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    i += 2;
                    state = if depth > 1 {
                        State::Block(depth - 1)
                    } else {
                        State::Normal
                    };
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    i += 2;
                    state = State::Block(depth + 1);
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == '\\' {
                    i += 2; // skip the escaped character (may run past EOL)
                } else if b[i] == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Normal;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b[i] == '"' && closes_raw(&b, i + 1, hashes) {
                    code.push('"');
                    i += 1 + hashes as usize;
                    state = State::Normal;
                } else {
                    i += 1;
                }
            }
            State::Normal => {
                let c = b[i];
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    // Line comment: the rest of the line is the comment
                    // channel (doc-comment slashes included in the skip).
                    let mut j = i + 2;
                    while b.get(j) == Some(&'/') || b.get(j) == Some(&'!') {
                        j += 1;
                    }
                    comment = b[j..].iter().collect::<String>().trim().to_string();
                    i = b.len();
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    i += 2;
                    state = State::Block(1);
                } else if c == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Str;
                } else if c == 'r' && is_raw_string_start(&b, i) {
                    // r"…" or r#…#"…"#…# — blank like a normal string.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    code.push('"');
                    i = j + 1; // past the opening quote
                    state = State::RawStr(hashes);
                } else if c == '\'' {
                    // Char literal vs lifetime: a char literal closes with a
                    // quote one or two (escaped) characters later.
                    if let Some(skip) = char_literal_len(&b, i) {
                        code.push('\'');
                        code.push('\'');
                        i += skip;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (code, comment, state)
}

/// True when the `r` at `i` starts a raw string literal (`r"` or `r#`),
/// rather than ending an identifier like `var`.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    if i > 0 {
        let prev = b[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    match b.get(i + 1) {
        Some('"') => true,
        Some('#') => {
            let mut j = i + 1;
            while b.get(j) == Some(&'#') {
                j += 1;
            }
            b.get(j) == Some(&'"')
        }
        _ => false,
    }
}

/// True when the raw-string terminator (`"` followed by `hashes` hashes)
/// completes at `b[i..]` (the quote itself was at `i - 1`).
fn closes_raw(b: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| b.get(i + k) == Some(&'#'))
}

/// Length (in chars, including quotes) of a char literal starting at `i`,
/// or `None` when the quote is a lifetime.
fn char_literal_len(b: &[char], i: usize) -> Option<usize> {
    match b.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the closing quote within a short window
            // (covers \n, \', \\, \x7f, \u{…}).
            let mut j = i + 2;
            let limit = (i + 12).min(b.len());
            while j < limit {
                if b[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        Some(_) if b.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

/// Marks lines inside `#[cfg(test)] mod … { … }` blocks.  Attributes between
/// the cfg and the `mod` keyword are tolerated; the block ends when its brace
/// depth returns to zero.
fn mark_test_blocks(lines: &mut [Line]) {
    let mut pending_cfg = false;
    let mut depth: i64 = 0;
    let mut in_block = false;
    for line in lines.iter_mut() {
        let code = line.code.trim();
        if in_block {
            line.in_test = true;
            depth += brace_delta(&line.code);
            if depth <= 0 {
                in_block = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_cfg = true;
            continue;
        }
        if pending_cfg {
            if code.is_empty() || code.starts_with("#[") {
                continue; // more attributes (or a blank) before the item
            }
            if code.starts_with("mod ") || code.starts_with("pub mod ") {
                in_block = true;
                line.in_test = true;
                depth = brace_delta(&line.code);
                if depth <= 0 && line.code.contains('{') {
                    in_block = false; // one-line module
                }
                pending_cfg = false;
                continue;
            }
            // `#[cfg(test)]` on a use/fn/field: only that item is test-only;
            // the line-level model just clears the flag and moves on.
            pending_cfg = false;
        }
    }
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_into_comment_channel() {
        let f = strip("let x = 1; // analyzer: allow(hash-iter): reason\n");
        assert_eq!(f.lines[0].code.trim(), "let x = 1;");
        assert_eq!(f.lines[0].comment, "analyzer: allow(hash-iter): reason");
    }

    #[test]
    fn blanks_string_literals() {
        let f = strip("let s = \"partial_cmp inside a string\";\n");
        assert!(!f.lines[0].code.contains("partial_cmp"));
        assert!(f.lines[0].code.contains("\"\""));
    }

    #[test]
    fn blanks_raw_strings_and_chars() {
        let f = strip("let s = r#\"Instant::now\"#; let c = '\\n'; let l: &'a str = s;\n");
        assert!(!f.lines[0].code.contains("Instant::now"));
        assert!(f.lines[0].code.contains("&'a str"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = strip("a /* begin\n partial_cmp \n end */ b\n");
        assert_eq!(f.lines[0].code.trim(), "a");
        assert_eq!(f.lines[1].code.trim(), "");
        assert_eq!(f.lines[2].code.trim(), "b");
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.partial_cmp(y); }\n}\nfn live2() {}\n";
        let f = strip(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn multiline_strings_stay_blanked() {
        let src = "let s = \"first\nsecond Instant::now\nthird\";\nlet x = 1;\n";
        let f = strip(src);
        assert!(!f.lines[1].code.contains("Instant::now"));
        assert_eq!(f.lines[3].code.trim(), "let x = 1;");
    }
}
