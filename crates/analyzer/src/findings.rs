//! Findings and the justification-comment grammar.
//!
//! Every hit the analyzer reports is a [`Finding`] naming one [`Lint`].  A
//! finding can be *justified* by an inline comment of the form
//!
//! ```text
//! // analyzer: allow(<lint-name>): <non-empty reason>
//! ```
//!
//! either trailing the flagged line or on a comment-only line directly above
//! it (several comment-only lines may sit between, as rustfmt wraps long
//! justifications).  Justified findings are reported in `--verbose` mode but
//! never fail the check; a finding without a justification fails `--check`.

use std::fmt;
use std::path::PathBuf;

use crate::scan::Line;

/// The named lints the analyzer enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// `partial_cmp` on `f64` paths: use `f64::total_cmp` or the helpers in
    /// `simkernel/src/time.rs` so NaN can never collapse an ordering.
    FloatOrd,
    /// Iteration over `HashMap`/`HashSet` in the deterministic crates
    /// (`core`, `lockmgr`, `bufmgr`): unordered iteration feeding reports or
    /// event schedules breaks byte-identity.
    HashIter,
    /// Host-dependent state inside `crates/`: `Instant::now`, `SystemTime`,
    /// `RandomState`, `env::var` — anything that makes a run a function of
    /// the machine instead of `(config, seed)`.
    WallClock,
    /// Bare `-=` on an unsigned stat/counter field without a nearby
    /// guard/assert (the `log_wb_pending` underflow class).
    CounterUnderflow,
    /// A crate dependency or `use` that violates the documented crate DAG.
    Layering,
}

impl Lint {
    /// The lint's name as used in `allow(...)` justifications and reports.
    pub fn name(self) -> &'static str {
        match self {
            Lint::FloatOrd => "float-ord",
            Lint::HashIter => "hash-iter",
            Lint::WallClock => "wall-clock",
            Lint::CounterUnderflow => "counter-underflow",
            Lint::Layering => "layering",
        }
    }

    /// Parses a lint name (the inverse of [`Lint::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "float-ord" => Some(Lint::FloatOrd),
            "hash-iter" => Some(Lint::HashIter),
            "wall-clock" => Some(Lint::WallClock),
            "counter-underflow" => Some(Lint::CounterUnderflow),
            "layering" => Some(Lint::Layering),
            _ => None,
        }
    }

    /// All lints, for `--list`.
    pub fn all() -> &'static [Lint] {
        &[
            Lint::FloatOrd,
            Lint::HashIter,
            Lint::WallClock,
            Lint::CounterUnderflow,
            Lint::Layering,
        ]
    }

    /// One-line description for `--list`.
    pub fn describe(self) -> &'static str {
        match self {
            Lint::FloatOrd => {
                "partial_cmp on float paths; use f64::total_cmp (see simkernel/src/time.rs)"
            }
            Lint::HashIter => {
                "HashMap/HashSet iteration in core/lockmgr/bufmgr; order must not feed output"
            }
            Lint::WallClock => {
                "host-dependent state (Instant::now/SystemTime/RandomState/env::var) under crates/"
            }
            Lint::CounterUnderflow => {
                "bare -= on an unsigned counter without a nearby guard or debug_assert"
            }
            Lint::Layering => "crate dependency or use-path outside the documented crate DAG",
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One analyzer hit.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: Lint,
    /// Path relative to the workspace root (or a fixture-supplied label).
    pub path: PathBuf,
    /// 1-based line number (0 for manifest-level findings).
    pub line: usize,
    pub message: String,
    /// The justification reason, when an `analyzer: allow` comment covers
    /// the finding.
    pub justification: Option<String>,
}

impl Finding {
    /// True when the finding carries an inline justification.
    pub fn justified(&self) -> bool {
        self.justification.is_some()
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.lint,
            self.message
        )?;
        if let Some(reason) = &self.justification {
            write!(f, " (allowed: {reason})")?;
        }
        Ok(())
    }
}

/// Parses an `analyzer: allow(<lint>): <reason>` marker out of a comment,
/// returning the lint name and the (non-empty) reason.
pub fn parse_allow(comment: &str) -> Option<(&str, &str)> {
    let idx = comment.find("analyzer: allow(")?;
    let rest = &comment[idx + "analyzer: allow(".len()..];
    let close = rest.find(')')?;
    let lint = &rest[..close];
    let after = rest[close + 1..].strip_prefix(':')?;
    let reason = after.trim();
    if reason.is_empty() {
        return None;
    }
    Some((lint, reason))
}

/// Looks for a justification covering `lint` at `lines[idx]`: trailing the
/// line itself, or on comment-only lines directly above it.
pub fn justification_for(lines: &[Line], idx: usize, lint: Lint) -> Option<String> {
    let matches = |comment: &str| {
        parse_allow(comment)
            .filter(|(name, _)| *name == lint.name())
            .map(|(_, reason)| reason.to_string())
    };
    if let Some(reason) = matches(&lines[idx].comment) {
        return Some(reason);
    }
    // Walk upwards over comment-only lines (code channel empty, comment
    // non-empty) so a wrapped justification above the statement counts.
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        if !line.code.trim().is_empty() {
            break;
        }
        if line.comment.is_empty() {
            break;
        }
        if let Some(reason) = matches(&line.comment) {
            return Some(reason);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;

    #[test]
    fn allow_grammar_requires_reason() {
        assert_eq!(
            parse_allow("analyzer: allow(hash-iter): order-independent sum"),
            Some(("hash-iter", "order-independent sum"))
        );
        assert_eq!(parse_allow("analyzer: allow(hash-iter):"), None);
        assert_eq!(parse_allow("analyzer: allow(hash-iter) no colon"), None);
        assert_eq!(parse_allow("unrelated comment"), None);
    }

    #[test]
    fn justification_found_trailing_and_above() {
        let f = strip(
            "// analyzer: allow(wall-clock): measures host time\nlet t = x;\nlet u = y; // analyzer: allow(float-ord): oracle only\n",
        );
        assert!(justification_for(&f.lines, 1, Lint::WallClock).is_some());
        assert!(justification_for(&f.lines, 1, Lint::FloatOrd).is_none());
        assert!(justification_for(&f.lines, 2, Lint::FloatOrd).is_some());
    }

    #[test]
    fn justification_does_not_cross_code_lines() {
        let f = strip("// analyzer: allow(hash-iter): reason\nlet a = 1;\nlet b = 2;\n");
        assert!(justification_for(&f.lines, 2, Lint::HashIter).is_none());
    }

    #[test]
    fn lint_names_round_trip() {
        for &lint in Lint::all() {
            assert_eq!(Lint::from_name(lint.name()), Some(lint));
        }
        assert_eq!(Lint::from_name("bogus"), None);
    }
}
