//! Layering: the workspace crate DAG, encoded as data.
//!
//! `docs/ARCHITECTURE.md` documents the strict DAG (`simkernel` at the
//! bottom, `bench` at the top, the umbrella suite above everything).  This
//! module is that diagram as machine-checkable data.  Two enforcement
//! points:
//!
//! * **Manifests** — every `[dependencies]` entry of every crate under
//!   `crates/` must be a path dependency to a crate the DAG allows.  An
//!   external (non-path) dependency is *always* a finding: the workspace is
//!   dependency-free by decree (in-repo RNG, bench shims, stats).
//! * **Sources** — a `use <crate>::` or `<crate>::path` token referring to a
//!   workspace crate outside the allowed set is a finding even if the
//!   manifest somehow let it slip.
//!
//! Growing a real new edge (or crate) is a conscious act: update
//! [`CRATE_DAG`] here *and* the diagram in `docs/ARCHITECTURE.md`; the
//! `dag_matches_workspace` integration test pins the encoding to the actual
//! manifests so the two can never drift silently.

use std::collections::BTreeMap;
use std::path::Path;

use crate::findings::{Finding, Lint};

/// One crate in the encoded DAG.
#[derive(Debug, Clone, Copy)]
pub struct CrateSpec {
    /// Directory name under `crates/`.
    pub dir: &'static str,
    /// Package name in `Cargo.toml`.
    pub package: &'static str,
    /// Identifier used in `use` paths (hyphens become underscores).
    pub lib: &'static str,
    /// Allowed dependencies, as package names.  This is the *exact* edge
    /// set, pinned against the real manifests by the DAG test.
    pub deps: &'static [&'static str],
}

/// The workspace crate DAG (see the diagram in `docs/ARCHITECTURE.md`).
pub const CRATE_DAG: &[CrateSpec] = &[
    CrateSpec {
        dir: "simkernel",
        package: "simkernel",
        lib: "simkernel",
        deps: &[],
    },
    CrateSpec {
        dir: "dbmodel",
        package: "dbmodel",
        lib: "dbmodel",
        deps: &["simkernel"],
    },
    CrateSpec {
        dir: "storage",
        package: "storage",
        lib: "storage",
        deps: &["simkernel", "dbmodel"],
    },
    CrateSpec {
        dir: "lockmgr",
        package: "lockmgr",
        lib: "lockmgr",
        deps: &["dbmodel"],
    },
    CrateSpec {
        dir: "bufmgr",
        package: "bufmgr",
        lib: "bufmgr",
        deps: &["simkernel", "dbmodel", "storage"],
    },
    CrateSpec {
        dir: "core",
        package: "tpsim",
        lib: "tpsim",
        deps: &["simkernel", "dbmodel", "storage", "lockmgr", "bufmgr"],
    },
    CrateSpec {
        dir: "bench",
        package: "tpsim-bench",
        lib: "tpsim_bench",
        deps: &[
            "tpsim",
            "simkernel",
            "dbmodel",
            "storage",
            "lockmgr",
            "bufmgr",
        ],
    },
    CrateSpec {
        dir: "analyzer",
        package: "analyzer",
        lib: "analyzer",
        deps: &[],
    },
];

/// Looks up a crate by its directory name under `crates/`.
pub fn spec_for_dir(dir: &str) -> Option<&'static CrateSpec> {
    CRATE_DAG.iter().find(|s| s.dir == dir)
}

/// Maps a package name to the identifier used in `use` paths.
pub fn lib_name(package: &str) -> String {
    package.replace('-', "_")
}

/// One parsed `[dependencies]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestDep {
    pub name: String,
    /// 1-based line in the manifest.
    pub line: usize,
    /// True when the entry carries `path = "…"` (a workspace-internal dep).
    pub is_path: bool,
}

/// Parses the `[dependencies]` section of a `Cargo.toml` (the minimal
/// single-line `name = { path = "…" }` grammar this workspace uses).
pub fn parse_manifest_deps(toml: &str) -> Vec<ManifestDep> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_alphanumeric() || "-_".contains(c))
        {
            continue;
        }
        deps.push(ManifestDep {
            name: name.to_string(),
            line: idx + 1,
            is_path: value.contains("path"),
        });
    }
    deps
}

/// Checks one crate manifest against the DAG.  `rel_path` labels findings.
pub fn check_manifest(dir: &str, toml: &str, rel_path: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(spec) = spec_for_dir(dir) else {
        findings.push(Finding {
            lint: Lint::Layering,
            path: rel_path.to_path_buf(),
            line: 0,
            message: format!(
                "crate directory `{dir}` is not in the encoded crate DAG; \
                 add it to analyzer::layering::CRATE_DAG and docs/ARCHITECTURE.md"
            ),
            justification: None,
        });
        return findings;
    };
    for dep in parse_manifest_deps(toml) {
        if !dep.is_path {
            findings.push(Finding {
                lint: Lint::Layering,
                path: rel_path.to_path_buf(),
                line: dep.line,
                message: format!(
                    "external dependency `{}`: the workspace is dependency-free \
                     (in-repo RNG/bench/stats shims replace crates.io)",
                    dep.name
                ),
                justification: None,
            });
            continue;
        }
        if !spec.deps.contains(&dep.name.as_str()) {
            findings.push(Finding {
                lint: Lint::Layering,
                path: rel_path.to_path_buf(),
                line: dep.line,
                message: format!(
                    "`{}` must not depend on `{}`: the crate DAG allows only {:?} \
                     (see docs/ARCHITECTURE.md)",
                    spec.package, dep.name, spec.deps
                ),
                justification: None,
            });
        }
    }
    findings
}

/// The actual dependency edges of the workspace, read from the manifests:
/// package name → set of path-dependency package names.
pub fn workspace_edges(root: &Path) -> std::io::Result<BTreeMap<String, Vec<String>>> {
    let mut edges = BTreeMap::new();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();
    for dir in dirs {
        let toml = std::fs::read_to_string(dir.join("Cargo.toml"))?;
        let package = toml
            .lines()
            .map(str::trim)
            .find_map(|l| l.strip_prefix("name = "))
            .map(|v| v.trim_matches('"').to_string())
            .unwrap_or_else(|| dir.file_name().unwrap().to_string_lossy().into_owned());
        let mut deps: Vec<String> = parse_manifest_deps(&toml)
            .into_iter()
            .filter(|d| d.is_path)
            .map(|d| d.name)
            .collect();
        deps.sort();
        edges.insert(package, deps);
    }
    Ok(edges)
}

/// Verifies that [`CRATE_DAG`] encodes *exactly* the workspace's real
/// dependency edges (names and edge sets both directions).
pub fn verify_dag_matches(root: &Path) -> Result<(), String> {
    let actual = workspace_edges(root).map_err(|e| format!("reading manifests: {e}"))?;
    let mut encoded = BTreeMap::new();
    for spec in CRATE_DAG {
        let mut deps: Vec<String> = spec.deps.iter().map(|d| d.to_string()).collect();
        deps.sort();
        encoded.insert(spec.package.to_string(), deps);
    }
    if encoded != actual {
        return Err(format!(
            "encoded crate DAG has drifted from the workspace manifests\n\
             encoded: {encoded:?}\n\
             actual:  {actual:?}\n\
             update analyzer::layering::CRATE_DAG and docs/ARCHITECTURE.md together"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn manifest_parser_reads_path_deps() {
        let toml = "[package]\nname = \"storage\"\n[dependencies]\nsimkernel = { path = \"../simkernel\" }\ndbmodel = { path = \"../dbmodel\" }\n";
        let deps = parse_manifest_deps(toml);
        assert_eq!(deps.len(), 2);
        assert!(deps.iter().all(|d| d.is_path));
        assert_eq!(deps[0].name, "simkernel");
    }

    #[test]
    fn illegal_edge_is_flagged() {
        let toml = "[dependencies]\ntpsim = { path = \"../core\" }\n";
        let f = check_manifest("storage", toml, &PathBuf::from("crates/storage/Cargo.toml"));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::Layering);
        assert!(f[0].message.contains("must not depend on `tpsim`"));
    }

    #[test]
    fn external_dependency_is_flagged() {
        let toml = "[dependencies]\nrand = \"0.8\"\n";
        let f = check_manifest(
            "simkernel",
            toml,
            &PathBuf::from("crates/simkernel/Cargo.toml"),
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("external dependency"));
    }

    #[test]
    fn legal_manifest_is_clean() {
        let toml = "[dependencies]\nsimkernel = { path = \"../simkernel\" }\n";
        let f = check_manifest("dbmodel", toml, &PathBuf::from("crates/dbmodel/Cargo.toml"));
        assert!(f.is_empty());
    }

    #[test]
    fn unknown_crate_dir_is_flagged() {
        let f = check_manifest("newcrate", "", &PathBuf::from("crates/newcrate/Cargo.toml"));
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("not in the encoded crate DAG"));
    }
}
