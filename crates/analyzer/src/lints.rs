//! The determinism and counter-safety lints.
//!
//! All passes run on the stripped code channel of [`crate::scan`], so
//! patterns inside strings, comments and `#[cfg(test)] mod` blocks never
//! fire.  The hash-container knowledge is *heuristic* — a token/line-level
//! approximation, not type inference:
//!
//! * names declared `name: HashMap<…>` / `name: HashSet<…>` (fields, params,
//!   typed lets) or bound via `= HashMap::new()` are hash containers;
//! * when a map's *value* type is itself a hash container
//!   (`HashMap<K, HashSet<V>>`), identifiers bound from `name.remove(…)` /
//!   `name.get(…)` / `name.get_mut(…)` / `name.entry(…)` inherit hash-ness
//!   (this is how the waits-for graph's drained edge sets are tracked);
//! * a small repo-native list of accessor methods known to expose hash
//!   iteration (e.g. `dirty_page_table()`) is treated like a container name.
//!
//! The fixture corpus under `fixtures/` pins exactly what the heuristics
//! recognise; anything they miss is caught dynamically by the byte-identity
//! goldens — the analyzer narrows the window, the goldens close it.

use std::collections::BTreeSet;
use std::path::Path;

use crate::findings::{justification_for, Finding, Lint};
use crate::scan::{Line, StrippedFile};

/// Crates whose sources the hash-iter lint covers: the ones whose iteration
/// order can reach reports, goldens, or the event schedule.
pub const HASH_ITER_CRATES: &[&str] = &["core", "lockmgr", "bufmgr"];

/// Repo-native accessor methods that expose a hash-backed iterator, per
/// crate directory.  `dirty_page_table()` returns `&DirtyPageTable`, whose
/// `iter()` walks a `HashMap`.
const HASH_ACCESSORS: &[(&str, &str)] =
    &[("core", "dirty_page_table"), ("bufmgr", "dirty_page_table")];

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

const UNSIGNED_TYPES: &[&str] = &["u8", "u16", "u32", "u64", "u128", "usize"];

/// Tokens whose presence near a counter decrement counts as a guard: an
/// assertion, an explicit zero/bounds check, or a checked subtraction.
const GUARD_TOKENS: &[&str] = &[
    "assert!",
    "> 0",
    ">=",
    "== 0",
    "!= 0",
    ".checked_sub",
    ".saturating_sub",
    "is_empty",
];

/// How many preceding non-empty code lines the counter lint searches for a
/// guard mentioning the decremented identifier.
const GUARD_LOOKBACK: usize = 8;

/// Hash/counter knowledge collected over a crate's sources.
#[derive(Debug, Default, Clone)]
pub struct CrateKnowledge {
    /// Identifiers declared as `HashMap`/`HashSet`.
    pub hash_names: BTreeSet<String>,
    /// Hash maps whose *values* are hash containers (lookups yield hash).
    pub yields_hash: BTreeSet<String>,
    /// Identifiers declared with an unsigned integer (or `Vec<unsigned>`)
    /// type — the counter-underflow candidates.
    pub counter_names: BTreeSet<String>,
}

impl CrateKnowledge {
    /// Folds one stripped file's declarations into the knowledge.
    pub fn collect(&mut self, file: &StrippedFile) {
        for line in &file.lines {
            if line.in_test {
                continue;
            }
            self.collect_line(&line.code);
        }
    }

    fn collect_line(&mut self, code: &str) {
        for container in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = find_word_from(code, container, from) {
                from = pos + container.len();
                if let Some(name) = binding_name_for_type(code, pos) {
                    // `HashMap<K, HashSet<V>>`: lookups on this map yield
                    // hash sets, so bound results inherit hash-ness.
                    if container == "HashMap" && code[pos..].contains("HashSet") {
                        self.yields_hash.insert(name.clone());
                    }
                    self.hash_names.insert(name);
                }
            }
            // `let [mut] name = HashMap::new()` and friends.
            let ctor = format!("= {container}::");
            if let Some(pos) = code.find(&ctor) {
                if let Some(name) = ident_ending_before(code, pos) {
                    self.hash_names.insert(name);
                }
            }
        }
        // Unsigned declarations: `name: u64`, `name: usize`, `name: Vec<usize>`.
        let bytes: Vec<char> = code.chars().collect();
        for (i, &c) in bytes.iter().enumerate() {
            if c != ':' {
                continue;
            }
            // Skip `::` path separators.
            if bytes.get(i + 1) == Some(&':') || (i > 0 && bytes[i - 1] == ':') {
                continue;
            }
            let after = code[i + 1..].trim_start();
            let is_unsigned = UNSIGNED_TYPES
                .iter()
                .any(|t| token_is(after, t) || token_is(after, &format!("Vec<{t}>")));
            if !is_unsigned {
                continue;
            }
            if let Some(name) = ident_ending_before(code, i) {
                self.counter_names.insert(name);
            }
        }
    }
}

/// True when `text` starts with `tok` followed by a non-identifier char
/// (or nothing).
fn token_is(text: &str, tok: &str) -> bool {
    text.starts_with(tok)
        && !text[tok.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Finds `word` in `code` at or after `from`, requiring identifier
/// boundaries on both sides.
fn find_word_from(code: &str, word: &str, from: usize) -> Option<usize> {
    let mut start = from;
    while let Some(rel) = code.get(start..).and_then(|s| s.find(word)) {
        let pos = start + rel;
        let before_ok = pos == 0
            || !code[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = pos + word.len();
        let after_ok = !code[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + word.len();
    }
    None
}

/// For a type occurrence at `type_pos`, walks back to the nearest `:` (not
/// part of `::`) and returns the identifier ending just before it — the
/// declared field/param/binding name.
fn binding_name_for_type(code: &str, type_pos: usize) -> Option<String> {
    let head = &code[..type_pos];
    let colon = head
        .char_indices()
        .rev()
        .find(|&(i, c)| {
            c == ':'
                && head.get(..i).is_none_or(|h| !h.ends_with(':'))
                && !head[i + 1..].trim_start().starts_with(':')
        })
        .map(|(i, _)| i)?;
    ident_ending_before(code, colon)
}

/// The identifier whose last char sits directly before `pos` (skipping
/// whitespace); `None` when the preceding token is not an identifier.
fn ident_ending_before(code: &str, pos: usize) -> Option<String> {
    let head = code[..pos].trim_end();
    let start = head
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_alphanumeric() || *c == '_')
        .last()
        .map(|(i, _)| i)?;
    let ident = &head[start..];
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(ident.to_string())
}

/// Runs the source lints over one stripped file.  `crate_dir` is the
/// directory name under `crates/` (selects hash-iter applicability and the
/// repo-native accessor list); `knowledge` is the crate-wide declaration
/// pass; `allowed_libs` are the `use`-path crate identifiers this crate may
/// reference (for the layering use-check), with `all_libs` the full
/// workspace set.
pub fn lint_file(
    crate_dir: &str,
    rel_path: &Path,
    file: &StrippedFile,
    knowledge: &CrateKnowledge,
    allowed_libs: &BTreeSet<String>,
    all_libs: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let hash_iter_applies = HASH_ITER_CRATES.contains(&crate_dir);
    // Names derived file-locally from lookups on `yields_hash` maps.
    let mut derived: BTreeSet<String> = BTreeSet::new();
    let mut hash_names: BTreeSet<String> = knowledge.hash_names.clone();
    for (dir, accessor) in HASH_ACCESSORS {
        if *dir == crate_dir {
            hash_names.insert((*accessor).to_string());
        }
    }

    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if code.trim().is_empty() {
            continue;
        }

        // Track derived hash bindings before linting the line, so
        // `for x in set` on the same line still sees fresh bindings from
        // previous lines (bindings on the *same* line are intentionally not
        // self-matched: `let s = m.get(..)` alone iterates nothing).
        let fire = |lint: Lint, message: String, findings: &mut Vec<Finding>| {
            findings.push(Finding {
                lint,
                path: rel_path.to_path_buf(),
                line: line.number,
                message,
                justification: justification_for(&file.lines, idx, lint),
            });
        };

        // --- float-ord -------------------------------------------------
        if code.contains(".partial_cmp(") && !code.contains("fn partial_cmp") {
            fire(
                Lint::FloatOrd,
                "call to partial_cmp: a NaN collapses the ordering; use f64::total_cmp \
                 or the helpers in simkernel/src/time.rs"
                    .to_string(),
                &mut findings,
            );
        }

        // --- wall-clock ------------------------------------------------
        for token in ["Instant::now", "SystemTime", "RandomState", "env::var"] {
            if code.contains(token) {
                fire(
                    Lint::WallClock,
                    format!(
                        "`{token}` makes behaviour host-dependent; simulated runs must be a \
                         pure function of (config, seed)"
                    ),
                    &mut findings,
                );
                break;
            }
        }

        // --- hash-iter -------------------------------------------------
        if hash_iter_applies {
            let mut names: Vec<&String> = hash_names.iter().collect();
            names.extend(derived.iter());
            if let Some(name) = hash_iter_hit(code, &names) {
                fire(
                    Lint::HashIter,
                    format!(
                        "iteration over hash container `{name}`: HashMap/HashSet order is \
                         nondeterministic across builds; sort first, use a Vec index, or \
                         justify order-independence"
                    ),
                    &mut findings,
                );
            }
        }

        // --- counter-underflow ----------------------------------------
        if let Some(name) = counter_decrement(code, &knowledge.counter_names) {
            if !guarded(&file.lines, idx, &name) {
                fire(
                    Lint::CounterUnderflow,
                    format!(
                        "bare `-=` on unsigned counter `{name}` with no nearby guard or \
                         debug_assert (the log_wb_pending underflow class); use the checked \
                         decrement pattern"
                    ),
                    &mut findings,
                );
            }
        }

        // --- layering (use-paths) -------------------------------------
        for lib in all_libs {
            if allowed_libs.contains(lib) {
                continue;
            }
            let pattern = format!("{lib}::");
            if find_word_from(code, lib, 0).is_some() && code.contains(&pattern) {
                fire(
                    Lint::Layering,
                    format!(
                        "reference to crate `{lib}` outside the documented DAG for \
                         `{crate_dir}` (see docs/ARCHITECTURE.md)"
                    ),
                    &mut findings,
                );
                break;
            }
        }

        // Derived-binding propagation for subsequent lines.
        propagate_bindings(code, &knowledge.yields_hash, &mut derived);
    }
    findings
}

/// Detects an iteration construct over any of `names` on this line; returns
/// the matched name.  At most one hit per line keeps finding counts stable.
fn hash_iter_hit(code: &str, names: &[&String]) -> Option<String> {
    for name in names {
        let mut from = 0;
        while let Some(pos) = find_word_from(code, name, from) {
            from = pos + name.len();
            let mut rest = &code[pos + name.len()..];
            // Skip an accessor call `()` and/or one index `[…]`.
            if let Some(r) = rest.strip_prefix("()") {
                rest = r;
            }
            if rest.starts_with('[') {
                if let Some(close) = rest.find(']') {
                    rest = &rest[close + 1..];
                }
            }
            if ITER_METHODS.iter().any(|m| rest.starts_with(m)) {
                return Some((*name).clone());
            }
        }
        // `for x in <expr mentioning name>`: the name is consumed by a loop.
        if let Some(in_pos) = code.find(" in ") {
            let head = code[..in_pos].trim_start();
            if head.starts_with("for ") || head.contains(" for ") {
                let tail = &code[in_pos + 4..];
                if find_word_from(tail, name, 0).is_some() {
                    return Some((*name).clone());
                }
            }
        }
    }
    None
}

/// Binds identifiers from `let`/`if let`/`while let` patterns whose RHS
/// looks up a `yields_hash` map (`remove`/`get`/`get_mut`/`entry`).
fn propagate_bindings(code: &str, yields_hash: &BTreeSet<String>, derived: &mut BTreeSet<String>) {
    let trimmed = code.trim_start();
    let has_let = trimmed.starts_with("let ")
        || trimmed.starts_with("if let ")
        || trimmed.starts_with("while let ")
        || trimmed.contains(" let ");
    if !has_let {
        return;
    }
    let Some(eq) = code.find('=') else {
        return;
    };
    let rhs = &code[eq + 1..];
    let yields = yields_hash.iter().any(|name| {
        let mut from = 0;
        while let Some(pos) = find_word_from(rhs, name, from) {
            from = pos + name.len();
            let rest = &rhs[pos + name.len()..];
            for method in [".remove(", ".get(", ".get_mut(", ".entry("] {
                if rest.starts_with(method) {
                    return true;
                }
            }
        }
        false
    });
    if !yields {
        return;
    }
    let pat_start = code.find("let ").map(|p| p + 4).unwrap_or(0);
    let pattern = &code[pat_start..eq];
    let mut ident = String::new();
    let mut idents = Vec::new();
    for c in pattern.chars() {
        if c.is_alphanumeric() || c == '_' {
            ident.push(c);
        } else if !ident.is_empty() {
            idents.push(std::mem::take(&mut ident));
        }
    }
    if !ident.is_empty() {
        idents.push(ident);
    }
    for ident in idents {
        if !matches!(ident.as_str(), "mut" | "ref" | "Some" | "Ok" | "Err" | "_")
            && !ident.chars().next().is_some_and(|c| c.is_ascii_digit())
        {
            derived.insert(ident);
        }
    }
}

/// Detects `<counter> -= …` and returns the counter's field name.
fn counter_decrement(code: &str, counters: &BTreeSet<String>) -> Option<String> {
    let pos = code.find("-=")?;
    // Reject `>-=`-like false matches and comparison operators.
    let head = code[..pos].trim_end();
    // Strip a trailing index `[…]`.
    let head = match head.rfind('[') {
        Some(open) if head.ends_with(']') => head[..open].trim_end(),
        _ => head,
    };
    // The field name is the trailing identifier (after any `.` chain).
    let name = head
        .rsplit(|c: char| !(c.is_alphanumeric() || c == '_'))
        .next()
        .unwrap_or("");
    if name.is_empty() {
        return None;
    }
    counters.contains(name).then(|| name.to_string())
}

/// True when one of the preceding `GUARD_LOOKBACK` non-empty code lines (or
/// the decrementing line itself) both mentions `name` and carries a guard
/// token — an assert, a zero/bounds check, or a checked subtraction.
fn guarded(lines: &[Line], idx: usize, name: &str) -> bool {
    let is_guard = |code: &str| {
        find_word_from(code, name, 0).is_some() && GUARD_TOKENS.iter().any(|g| code.contains(g))
    };
    if is_guard(&lines[idx].code) {
        return true;
    }
    let mut seen = 0;
    let mut i = idx;
    while i > 0 && seen < GUARD_LOOKBACK {
        i -= 1;
        let code = lines[i].code.trim();
        if code.is_empty() {
            continue;
        }
        seen += 1;
        if is_guard(&lines[i].code) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::strip;
    use std::path::PathBuf;

    fn lint_str(crate_dir: &str, src: &str) -> Vec<Finding> {
        let file = strip(src);
        let mut knowledge = CrateKnowledge::default();
        knowledge.collect(&file);
        let all: BTreeSet<String> = ["simkernel", "tpsim"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let allowed = BTreeSet::new();
        lint_file(
            crate_dir,
            &PathBuf::from("test.rs"),
            &file,
            &knowledge,
            &allowed,
            &all,
        )
    }

    #[test]
    fn collects_hash_declarations() {
        let file = strip(
            "struct S {\n    holders: HashMap<PageId, u64>,\n    edges: HashMap<TxId, HashSet<TxId>>,\n    count: u64,\n    pending: Vec<usize>,\n}\nlet mut seen = HashSet::new();\n",
        );
        let mut k = CrateKnowledge::default();
        k.collect(&file);
        assert!(k.hash_names.contains("holders"));
        assert!(k.hash_names.contains("edges"));
        assert!(k.hash_names.contains("seen"));
        assert!(k.yields_hash.contains("edges"));
        assert!(!k.yields_hash.contains("holders"));
        assert!(k.counter_names.contains("count"));
        assert!(k.counter_names.contains("pending"));
    }

    #[test]
    fn flags_hash_iteration_in_restricted_crate_only() {
        let src = "struct S { m: HashMap<u64, u64> }\nfn f(s: &S) { for v in s.m.values() { use_(v); } }\n";
        assert_eq!(lint_str("core", src).len(), 1);
        assert!(lint_str("storage", src).is_empty());
    }

    #[test]
    fn derived_binding_from_yields_hash_map() {
        let src = "struct G { edges: HashMap<u64, HashSet<u64>> }\nfn f(g: &mut G, w: u64) {\n    if let Some(mut blockers) = g.edges.remove(&w) {\n        for b in blockers.drain() { go(b); }\n    }\n}\n";
        let f = lint_str("lockmgr", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("blockers"));
    }

    #[test]
    fn justified_hash_iteration_is_suppressed_but_reported() {
        let src = "struct S { m: HashMap<u64, u64> }\nfn f(s: &S) -> u64 {\n    // analyzer: allow(hash-iter): order-independent sum\n    s.m.values().sum()\n}\n";
        let f = lint_str("core", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].justified());
    }

    #[test]
    fn flags_partial_cmp_but_not_its_definition() {
        assert_eq!(
            lint_str("simkernel", "let o = a.partial_cmp(&b);\n").len(),
            1
        );
        assert!(lint_str(
            "simkernel",
            "fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) }\n"
        )
        .is_empty());
    }

    #[test]
    fn flags_wall_clock_tokens() {
        let f = lint_str("bench", "let t0 = Instant::now();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::WallClock);
    }

    #[test]
    fn counter_decrement_without_guard_fires() {
        let src = "struct S { len: usize }\nimpl S { fn dec(&mut self) { self.len -= 1; } }\n";
        let f = lint_str("simkernel", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::CounterUnderflow);
    }

    #[test]
    fn guarded_counter_decrement_passes() {
        for guard in [
            "debug_assert!(self.len > 0, \"underflow\");",
            "if self.len == 0 { return; }",
            "assert!(self.len > 0);",
        ] {
            let src = format!(
                "struct S {{ len: usize }}\nimpl S {{ fn dec(&mut self) {{ {guard}\n self.len -= 1; }} }}\n"
            );
            assert!(lint_str("simkernel", &src).is_empty(), "guard: {guard}");
        }
    }

    #[test]
    fn indexed_counter_decrement_is_recognised() {
        let src = "struct S { pending: Vec<usize> }\nimpl S { fn dec(&mut self, w: usize) { self.pending[w] -= 1; } }\n";
        let f = lint_str("simkernel", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("pending"));
    }

    #[test]
    fn float_subtraction_is_not_a_counter() {
        let src = "fn f(total: f64) { let mut x = total; x -= 1.0; }\n";
        assert!(lint_str("simkernel", src).is_empty());
    }

    #[test]
    fn layering_use_check_fires_for_forbidden_crate() {
        let f = lint_str("storage", "use tpsim::config::SimulationConfig;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::Layering);
    }

    #[test]
    fn accessor_methods_count_as_hash_names() {
        let src =
            "fn f(n: &Node) { for (p, l) in n.bufmgr.dirty_page_table().iter() { go(p, l); } }\n";
        let f = lint_str("core", src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("dirty_page_table"));
    }

    #[test]
    fn test_blocks_are_exempt() {
        let src = "struct S { m: HashMap<u64, u64> }\n#[cfg(test)]\nmod tests {\n    fn t(s: &S) { for v in s.m.values() { go(v); } }\n}\n";
        assert!(lint_str("core", src).is_empty());
    }
}
