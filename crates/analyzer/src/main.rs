//! CLI for the TPSIM invariant analyzer.
//!
//! ```text
//! cargo run -p analyzer              # report unjustified findings
//! cargo run -p analyzer -- --check   # same + exit 1 when any exist (CI)
//! cargo run -p analyzer -- --verbose # include justified findings
//! cargo run -p analyzer -- --list    # the lint catalog
//! cargo run -p analyzer -- --root P  # analyze a different workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut verbose = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--verbose" | "-v" => verbose = true,
            "--list" => list = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if list {
        println!("lints enforced by the analyzer:");
        for &lint in analyzer::Lint::all() {
            println!("  {:<18} {}", lint.name(), lint.describe());
        }
        println!();
        println!("justify a finding inline with:");
        println!("  // analyzer: allow(<lint-name>): <non-empty reason>");
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match analyzer::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root (Cargo.toml + crates/) above {cwd:?}");
                    return ExitCode::from(2);
                }
            }
        }
    };

    let findings = match analyzer::analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let (justified, unjustified): (Vec<_>, Vec<_>) =
        findings.into_iter().partition(|f| f.justified());

    if verbose {
        for f in &justified {
            println!("{f}");
        }
    }
    for f in &unjustified {
        println!("{f}");
    }
    println!(
        "analyzer: {} finding(s): {} unjustified, {} justified",
        unjustified.len() + justified.len(),
        unjustified.len(),
        justified.len()
    );

    if check && !unjustified.is_empty() {
        eprintln!(
            "analyzer: FAIL ({} unjustified finding(s))",
            unjustified.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_help() {
    println!("analyzer — TPSIM invariant checks (determinism, layering, counter safety)");
    println!();
    println!("usage: cargo run -p analyzer -- [--check] [--verbose] [--list] [--root PATH]");
    println!();
    println!("  --check     exit 1 when any unjustified finding exists (CI mode)");
    println!("  --verbose   also print justified findings");
    println!("  --list      print the lint catalog and the justification grammar");
    println!("  --root P    workspace root (default: walk up from the cwd)");
}
