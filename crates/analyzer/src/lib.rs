//! Repo-native determinism & layering analyzer for the TPSIM workspace.
//!
//! A dependency-free, token/line-level static pass over `crates/*/src` that
//! enforces the invariants `docs/ARCHITECTURE.md` documents in prose:
//!
//! * **`float-ord`** — no `partial_cmp` on simulation paths; `f64::total_cmp`
//!   (or the helpers in `simkernel/src/time.rs`) only.
//! * **`hash-iter`** — no unordered `HashMap`/`HashSet` iteration in the
//!   deterministic crates (`core`, `lockmgr`, `bufmgr`) without an inline
//!   `// analyzer: allow(hash-iter): <why>` justification.
//! * **`wall-clock`** — no `Instant::now` / `SystemTime` / `RandomState` /
//!   `env::var` under `crates/`; a run is a pure function of (config, seed).
//! * **`counter-underflow`** — no bare `-=` on unsigned stat/counter fields
//!   without a nearby guard or `debug_assert` (the `log_wb_pending` class).
//! * **`layering`** — crate dependencies and `use` paths must match the
//!   crate DAG encoded in [`layering::CRATE_DAG`].
//!
//! Scope: production sources only — `crates/*/src/**/*.rs`, minus inline
//! `#[cfg(test)] mod` blocks.  Integration tests, benches and fixtures are
//! free to use wall clocks and unordered iteration.
//!
//! Run `cargo run -p analyzer -- --check` (CI) or `--verbose` (everything,
//! including justified findings).

pub mod findings;
pub mod layering;
pub mod lints;
pub mod scan;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

pub use findings::{Finding, Lint};
pub use layering::{check_manifest, verify_dag_matches, CRATE_DAG};
pub use lints::CrateKnowledge;

/// Analyzes a single source text as if it lived in `crates/<crate_dir>/src`.
/// This is the fixture-corpus entry point: knowledge is collected from the
/// same text, so self-contained snippets lint exactly like live files.
pub fn analyze_source(crate_dir: &str, rel_path: &Path, text: &str) -> Vec<Finding> {
    let stripped = scan::strip(text);
    let mut knowledge = CrateKnowledge::default();
    knowledge.collect(&stripped);
    let (allowed, all) = lib_sets(crate_dir);
    lints::lint_file(crate_dir, rel_path, &stripped, &knowledge, &allowed, &all)
}

/// The (allowed, all) workspace-lib-name sets for the use-path layering
/// check of one crate.
fn lib_sets(crate_dir: &str) -> (BTreeSet<String>, BTreeSet<String>) {
    let all: BTreeSet<String> = CRATE_DAG.iter().map(|s| s.lib.to_string()).collect();
    let allowed: BTreeSet<String> = layering::spec_for_dir(crate_dir)
        .map(|spec| {
            spec.deps
                .iter()
                .map(|d| layering::lib_name(d))
                .chain(std::iter::once(spec.lib.to_string()))
                .collect()
        })
        .unwrap_or_default();
    (allowed, all)
}

/// Analyzes the whole workspace rooted at `root`: every crate manifest plus
/// every production source file.  Findings are sorted by path then line so
/// output is stable across filesystems.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.join("Cargo.toml").is_file())
        .collect();
    dirs.sort();

    for dir in &dirs {
        let crate_dir = dir.file_name().unwrap().to_string_lossy().into_owned();
        let manifest_path = dir.join("Cargo.toml");
        let rel_manifest = manifest_path
            .strip_prefix(root)
            .unwrap_or(&manifest_path)
            .to_path_buf();
        let toml = std::fs::read_to_string(&manifest_path)?;
        findings.extend(check_manifest(&crate_dir, &toml, &rel_manifest));

        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();

        // Pass 1: crate-wide declaration knowledge.
        let mut knowledge = CrateKnowledge::default();
        let mut stripped = Vec::new();
        for file in &files {
            let text = std::fs::read_to_string(file)?;
            let s = scan::strip(&text);
            knowledge.collect(&s);
            stripped.push(s);
        }

        // Pass 2: lints.
        let (allowed, all) = lib_sets(&crate_dir);
        for (file, s) in files.iter().zip(&stripped) {
            let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
            findings.extend(lints::lint_file(
                &crate_dir, &rel, s, &knowledge, &allowed, &all,
            ));
        }
    }

    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` until a directory with
/// both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
