//! # storage — TPSIM external storage device models
//!
//! Implements §3.3 of the paper: the external devices the database and log
//! files can be allocated to.
//!
//! * **Disk units** — the generic term for devices with a disk interface:
//!   regular disks, disks with a volatile cache, disks with a non-volatile
//!   cache, and solid-state disks (SSD).  A disk unit is served by one or more
//!   controllers and one or more disk servers, plus a transmission delay per
//!   page.
//! * **Disk caches** — LRU caches managed by the disk controller, following
//!   the IBM 3990 behaviour described in the paper: read misses allocate,
//!   volatile caches write through (write misses do not allocate),
//!   non-volatile caches absorb writes when a clean frame is available and
//!   update the disk copy asynchronously.
//! * **NVEM** — non-volatile extended memory, a page-addressable store that is
//!   accessed synchronously by the CPU via one or more NVEM servers.
//! * **Request scheduling** — an optional per-unit scheduling layer
//!   ([`scheduler::RequestScheduler`]) adding same-page coalescing,
//!   adjacent-page merging, elevator (C-SCAN) dispatch with a deterministic
//!   aging bound, and sequential-prefetch deduplication.  Disabled by
//!   default; the engine bypasses it entirely then.
//!
//! The device models are *policy only*: they decide which service stages an
//! I/O must pass through ([`io::IoDecision`]) and keep the cache state, but
//! they do not advance simulated time themselves — the transaction engine in
//! the `tpsim` crate executes the stages against `simkernel` resources so that
//! queueing at controllers and disk arms is modelled faithfully.

pub mod device;
pub mod disk_unit;
pub mod io;
pub mod lru;
pub mod lru_k;
pub mod nvem;
pub mod params;
pub mod scheduler;

pub use device::{DeviceSpec, StorageDevice};
pub use disk_unit::{DiskUnit, DiskUnitStats};
pub use io::{IoDecision, IoKind, ServiceStage};
pub use lru::LruCache;
pub use lru_k::LruKTracker;
pub use nvem::{NvemDevice, NvemDeviceParams, NvemParams};
pub use params::{DeviceTimings, DiskUnitKind, DiskUnitParams};
pub use scheduler::{
    CompletedBatch, DispatchBatch, IoSchedulerParams, IoSchedulerStats, PrefetchTag,
    RequestScheduler, SubmitOutcome,
};
