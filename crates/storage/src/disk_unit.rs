//! Disk-unit model: regular disks, cached disks (volatile / non-volatile) and
//! solid-state disks.
//!
//! The management of the controller caches follows the description in §3.3,
//! which in turn models IBM's 3990-style caches:
//!
//! * **Reads**: a read hit is served from the cache (controller + transmission
//!   only); on a read miss the page is read from disk, stored in the cache and
//!   transferred to the requesting system.
//! * **Writes, volatile cache**: every write results in a disk access; a write
//!   hit refreshes the cached copy, a write miss leaves the cache unchanged.
//! * **Writes, non-volatile cache**: the write is satisfied in the cache and
//!   the disk copy is updated asynchronously.  On a write miss the least
//!   recently used *unmodified* page is replaced; if every cached page still
//!   has a pending disk update the write goes synchronously to disk.  The disk
//!   update of an absorbed write is started immediately.
//! * **SSD**: all data lives in non-volatile semiconductor memory; no request
//!   ever touches a disk server.

use dbmodel::PageId;

use crate::io::{IoDecision, IoKind, ServiceStage};
use crate::lru::LruCache;
use crate::params::{DiskUnitKind, DiskUnitParams};

/// Per-unit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskUnitStats {
    /// Read requests received.
    pub reads: u64,
    /// Write requests received.
    pub writes: u64,
    /// Read requests satisfied from the controller cache.
    pub read_hits: u64,
    /// Write requests that found the page in the controller cache.
    pub write_hits: u64,
    /// Writes absorbed by a non-volatile cache (asynchronous disk update).
    pub absorbed_writes: u64,
    /// Writes that had to go to disk because no clean cache frame was free.
    pub forced_sync_writes: u64,
    /// Asynchronous destages completed.
    pub destages_completed: u64,
}

impl DiskUnitStats {
    /// Read hit ratio (0 when no reads were issued).
    pub fn read_hit_ratio(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_hits as f64 / self.reads as f64
        }
    }
}

/// Cache entry state: number of pending asynchronous disk updates for the
/// page.  An entry is "unmodified" (clean, replaceable) when the count is 0.
type PendingDestages = u32;

/// A disk unit: policy state (cache contents) and statistics.
///
/// The unit does not advance simulated time; it returns [`IoDecision`]s that
/// the engine executes against the unit's controller and disk resources.
#[derive(Debug)]
pub struct DiskUnit {
    name: String,
    params: DiskUnitParams,
    cache: Option<LruCache<PageId, PendingDestages>>,
    stats: DiskUnitStats,
}

impl DiskUnit {
    /// Creates a disk unit.
    pub fn new(name: impl Into<String>, params: DiskUnitParams) -> Self {
        let cache = params
            .kind
            .has_cache()
            .then(|| LruCache::new(params.cache_size.max(1)));
        Self {
            name: name.into(),
            params,
            cache,
            stats: DiskUnitStats::default(),
        }
    }

    /// The unit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit's parameters.
    pub fn params(&self) -> &DiskUnitParams {
        &self.params
    }

    /// Current statistics.
    pub fn stats(&self) -> DiskUnitStats {
        self.stats
    }

    /// Resets the statistics (end of warm-up) without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = DiskUnitStats::default();
    }

    /// Number of pages currently in the controller cache.
    pub fn cached_pages(&self) -> usize {
        self.cache.as_ref().map(LruCache::len).unwrap_or(0)
    }

    /// True if `page` is currently in the controller cache.
    pub fn cache_contains(&self, page: PageId) -> bool {
        self.cache.as_ref().is_some_and(|c| c.contains(&page))
    }

    fn full_access(&self) -> Vec<ServiceStage> {
        vec![
            ServiceStage::Controller(self.params.controller_delay),
            ServiceStage::Disk(self.params.disk_delay),
            ServiceStage::Transmission(self.params.transmission_delay),
        ]
    }

    fn cache_access(&self) -> Vec<ServiceStage> {
        vec![
            ServiceStage::Controller(self.params.controller_delay),
            ServiceStage::Transmission(self.params.transmission_delay),
        ]
    }

    fn destage(&self) -> Vec<ServiceStage> {
        vec![ServiceStage::Disk(self.params.disk_delay)]
    }

    /// Handles an I/O request for `page` and returns the service decision.
    pub fn request(&mut self, kind: IoKind, page: PageId) -> IoDecision {
        match kind {
            IoKind::Read => self.read(page),
            IoKind::Write => self.write(page),
        }
    }

    fn read(&mut self, page: PageId) -> IoDecision {
        self.stats.reads += 1;
        match self.params.kind {
            DiskUnitKind::Regular => IoDecision {
                foreground: self.full_access(),
                background: vec![],
                cache_hit: false,
                absorbed_write: false,
            },
            DiskUnitKind::Ssd => {
                self.stats.read_hits += 1;
                IoDecision {
                    foreground: self.cache_access(),
                    background: vec![],
                    cache_hit: true,
                    absorbed_write: false,
                }
            }
            DiskUnitKind::VolatileCache | DiskUnitKind::NonVolatileCache => {
                let cache = self.cache.as_mut().expect("cached unit has a cache");
                if cache.get(&page).is_some() {
                    self.stats.read_hits += 1;
                    IoDecision {
                        foreground: self.cache_access(),
                        background: vec![],
                        cache_hit: true,
                        absorbed_write: false,
                    }
                } else {
                    // Read miss: fetch from disk and allocate in the cache.
                    // The evicted frame must be clean for a non-volatile cache;
                    // prefer the LRU clean frame, otherwise drop the LRU frame
                    // (its destage is already under way and will simply find
                    // the page gone when it completes).
                    Self::allocate_frame(cache, page, 0);
                    IoDecision {
                        foreground: self.full_access(),
                        background: vec![],
                        cache_hit: false,
                        absorbed_write: false,
                    }
                }
            }
        }
    }

    fn write(&mut self, page: PageId) -> IoDecision {
        self.stats.writes += 1;
        match self.params.kind {
            DiskUnitKind::Regular => IoDecision {
                foreground: self.full_access(),
                background: vec![],
                cache_hit: false,
                absorbed_write: false,
            },
            DiskUnitKind::Ssd => {
                self.stats.write_hits += 1;
                self.stats.absorbed_writes += 1;
                IoDecision {
                    foreground: self.cache_access(),
                    background: vec![],
                    cache_hit: true,
                    absorbed_write: true,
                }
            }
            DiskUnitKind::VolatileCache => {
                let cache = self.cache.as_mut().expect("cached unit has a cache");
                // Write-through: the disk is always accessed.  A write hit
                // refreshes the cached copy (LRU update); a write miss leaves
                // the cache unchanged.
                let hit = cache.touch(&page);
                if hit {
                    self.stats.write_hits += 1;
                }
                IoDecision {
                    foreground: self.full_access(),
                    background: vec![],
                    cache_hit: hit,
                    absorbed_write: false,
                }
            }
            DiskUnitKind::NonVolatileCache => {
                let cache = self.cache.as_mut().expect("cached unit has a cache");
                if let Some(pending) = cache.get_mut(&page) {
                    // Write hit: absorb, destage asynchronously.
                    *pending += 1;
                    self.stats.write_hits += 1;
                    self.stats.absorbed_writes += 1;
                    IoDecision {
                        foreground: self.cache_access(),
                        background: self.destage(),
                        cache_hit: true,
                        absorbed_write: true,
                    }
                } else {
                    // Write miss: need a clean (fully destaged) frame.
                    let have_room = !cache.is_full();
                    let clean_victim = if have_room {
                        None
                    } else {
                        cache.lru_matching(|pending| *pending == 0)
                    };
                    if have_room || clean_victim.is_some() {
                        if let Some(victim) = clean_victim {
                            cache.remove(&victim);
                        }
                        cache.insert(page, 1);
                        self.stats.absorbed_writes += 1;
                        IoDecision {
                            foreground: self.cache_access(),
                            background: self.destage(),
                            cache_hit: false,
                            absorbed_write: true,
                        }
                    } else {
                        // Every cached page still has a pending disk update:
                        // "we cannot satisfy the write I/O in the cache but
                        // directly go to the disk".
                        self.stats.forced_sync_writes += 1;
                        IoDecision {
                            foreground: self.full_access(),
                            background: vec![],
                            cache_hit: false,
                            absorbed_write: false,
                        }
                    }
                }
            }
        }
    }

    /// Allocates a cache frame for `page` after a read miss.
    fn allocate_frame(
        cache: &mut LruCache<PageId, PendingDestages>,
        page: PageId,
        initial: PendingDestages,
    ) {
        if cache.is_full() && !cache.contains(&page) {
            // Prefer evicting a clean frame; fall back to the plain LRU frame.
            if let Some(victim) = cache.lru_matching(|pending| *pending == 0) {
                cache.remove(&victim);
            }
        }
        cache.insert(page, initial);
    }

    /// Called by the engine when an asynchronous destage for `page` completed:
    /// the disk copy is now current and the frame becomes replaceable.
    pub fn destage_complete(&mut self, page: PageId) {
        self.stats.destages_completed += 1;
        if let Some(cache) = self.cache.as_mut() {
            if let Some(pending) = cache.peek_mut(&page) {
                *pending = pending.saturating_sub(1);
            }
        }
    }
}

impl crate::device::StorageDevice for DiskUnit {
    fn name(&self) -> &str {
        DiskUnit::name(self)
    }

    fn request(&mut self, kind: IoKind, page: PageId) -> IoDecision {
        DiskUnit::request(self, kind, page)
    }

    fn destage_complete(&mut self, page: PageId) {
        DiskUnit::destage_complete(self, page)
    }

    fn stats(&self) -> DiskUnitStats {
        DiskUnit::stats(self)
    }

    fn reset_stats(&mut self) {
        DiskUnit::reset_stats(self)
    }

    fn uncached_latency(&self) -> simkernel::time::SimTime {
        match self.params.kind {
            DiskUnitKind::Ssd => self.params.cache_hit_latency(),
            _ => self.params.disk_access_latency(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(kind: DiskUnitKind, cache_size: usize) -> DiskUnit {
        DiskUnit::new(
            "u",
            DiskUnitParams {
                kind,
                cache_size,
                ..DiskUnitParams::default()
            },
        )
    }

    #[test]
    fn regular_disk_always_pays_full_access() {
        let mut u = unit(DiskUnitKind::Regular, 10);
        for kind in [IoKind::Read, IoKind::Write] {
            let d = u.request(kind, PageId(1));
            assert!((d.foreground_service_time() - 16.4).abs() < 1e-9);
            assert!(!d.cache_hit);
            assert!(d.background.is_empty());
        }
        assert_eq!(u.cached_pages(), 0);
    }

    #[test]
    fn ssd_never_touches_disk() {
        let mut u = unit(DiskUnitKind::Ssd, 10);
        let r = u.request(IoKind::Read, PageId(1));
        let w = u.request(IoKind::Write, PageId(2));
        assert!((r.foreground_service_time() - 1.4).abs() < 1e-9);
        assert!((w.foreground_service_time() - 1.4).abs() < 1e-9);
        assert!(!r.touches_disk_in_foreground());
        assert!(w.absorbed_write);
        assert!(w.background.is_empty());
    }

    #[test]
    fn volatile_cache_read_miss_then_hit() {
        let mut u = unit(DiskUnitKind::VolatileCache, 10);
        let miss = u.request(IoKind::Read, PageId(7));
        assert!(!miss.cache_hit);
        assert!(miss.touches_disk_in_foreground());
        let hit = u.request(IoKind::Read, PageId(7));
        assert!(hit.cache_hit);
        assert!((hit.foreground_service_time() - 1.4).abs() < 1e-9);
        assert_eq!(u.stats().read_hits, 1);
        assert!((u.stats().read_hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn volatile_cache_writes_always_go_to_disk_and_miss_does_not_allocate() {
        let mut u = unit(DiskUnitKind::VolatileCache, 10);
        // Write miss: disk access, cache unchanged.
        let w = u.request(IoKind::Write, PageId(3));
        assert!(w.touches_disk_in_foreground());
        assert!(!w.absorbed_write);
        assert!(!u.cache_contains(PageId(3)));
        // Read allocates; subsequent write hit still goes to disk.
        u.request(IoKind::Read, PageId(3));
        let w2 = u.request(IoKind::Write, PageId(3));
        assert!(w2.cache_hit);
        assert!(w2.touches_disk_in_foreground());
        assert_eq!(u.stats().write_hits, 1);
        assert_eq!(u.stats().absorbed_writes, 0);
    }

    #[test]
    fn nonvolatile_cache_absorbs_writes_and_destages() {
        let mut u = unit(DiskUnitKind::NonVolatileCache, 10);
        let w = u.request(IoKind::Write, PageId(5));
        assert!(w.absorbed_write);
        assert!(!w.touches_disk_in_foreground());
        assert!((w.foreground_service_time() - 1.4).abs() < 1e-9);
        assert_eq!(w.background.len(), 1);
        assert!(u.cache_contains(PageId(5)));
        // Destage completes → page becomes clean and replaceable.
        u.destage_complete(PageId(5));
        assert_eq!(u.stats().destages_completed, 1);
        // A read of the page now hits.
        let r = u.request(IoKind::Read, PageId(5));
        assert!(r.cache_hit);
    }

    #[test]
    fn nonvolatile_cache_write_hit_on_dirty_page_is_still_absorbed() {
        let mut u = unit(DiskUnitKind::NonVolatileCache, 4);
        u.request(IoKind::Write, PageId(1));
        let w2 = u.request(IoKind::Write, PageId(1));
        assert!(w2.cache_hit && w2.absorbed_write);
        // Two destages pending; the first completion does not make it clean.
        u.destage_complete(PageId(1));
        // Fill the cache with dirty pages and check page 1 only becomes a
        // replacement candidate after its second destage completes.
        for p in 2..=4 {
            u.request(IoKind::Write, PageId(p));
        }
        assert!(u.cache_contains(PageId(1)));
        let w5 = u.request(IoKind::Write, PageId(5));
        // No clean frame anywhere → forced synchronous write.
        assert!(!w5.absorbed_write);
        u.destage_complete(PageId(1));
        let w6 = u.request(IoKind::Write, PageId(6));
        assert!(w6.absorbed_write);
        assert!(!u.cache_contains(PageId(1)), "clean LRU frame was replaced");
    }

    #[test]
    fn nonvolatile_cache_forced_sync_write_when_all_frames_dirty() {
        let mut u = unit(DiskUnitKind::NonVolatileCache, 3);
        for p in 1..=3 {
            assert!(u.request(IoKind::Write, PageId(p)).absorbed_write);
        }
        let w = u.request(IoKind::Write, PageId(99));
        assert!(!w.absorbed_write);
        assert!(w.touches_disk_in_foreground());
        assert_eq!(u.stats().forced_sync_writes, 1);
        // After destaging one page, absorption works again.
        u.destage_complete(PageId(2));
        assert!(u.request(IoKind::Write, PageId(100)).absorbed_write);
    }

    #[test]
    fn nonvolatile_cache_read_allocation_prefers_clean_victims() {
        let mut u = unit(DiskUnitKind::NonVolatileCache, 2);
        u.request(IoKind::Write, PageId(1)); // dirty
        u.request(IoKind::Read, PageId(2)); // clean
                                            // Cache full {1 dirty, 2 clean}; a read miss should evict page 2 (the
                                            // clean one) even though page 1 is least recently used.
        u.request(IoKind::Read, PageId(3));
        assert!(u.cache_contains(PageId(1)));
        assert!(!u.cache_contains(PageId(2)));
        assert!(u.cache_contains(PageId(3)));
    }

    #[test]
    fn stats_reset_keeps_cache_contents() {
        let mut u = unit(DiskUnitKind::NonVolatileCache, 4);
        u.request(IoKind::Write, PageId(1));
        u.reset_stats();
        assert_eq!(u.stats(), DiskUnitStats::default());
        assert!(u.cache_contains(PageId(1)));
        assert_eq!(u.name(), "u");
        assert_eq!(u.params().kind, DiskUnitKind::NonVolatileCache);
    }
}
