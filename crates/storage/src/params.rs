//! Device parameters (Table 2.1 and Table 3.4 of the paper).

use simkernel::time::{self, SimTime};

/// The four kinds of disk units TPSIM supports ("regular, volatile cache,
/// non-volatile cache, SSD", Table 3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskUnitKind {
    /// Plain magnetic disks: every I/O pays the disk access time.
    #[default]
    Regular,
    /// Disks fronted by a volatile controller cache: read hits avoid the disk,
    /// writes always go through to disk.
    VolatileCache,
    /// Disks fronted by a non-volatile controller cache: read hits avoid the
    /// disk, writes are absorbed by the cache when possible and destaged
    /// asynchronously.
    NonVolatileCache,
    /// Solid-state disk: the whole unit is semiconductor memory, no disk
    /// access ever.
    Ssd,
}

impl DiskUnitKind {
    /// True if the unit has a controller cache (volatile or non-volatile).
    pub fn has_cache(self) -> bool {
        matches!(
            self,
            DiskUnitKind::VolatileCache | DiskUnitKind::NonVolatileCache
        )
    }

    /// True if writes can be absorbed without a synchronous disk access.
    pub fn absorbs_writes(self) -> bool {
        matches!(self, DiskUnitKind::NonVolatileCache | DiskUnitKind::Ssd)
    }
}

/// Parameters of one disk unit (Table 3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskUnitParams {
    /// Kind of unit.
    pub kind: DiskUnitKind,
    /// Number of disk controllers serving the unit.
    pub num_controllers: usize,
    /// Average controller service time per page (ms).
    pub controller_delay: SimTime,
    /// Average transmission time per page between main memory and the unit (ms).
    pub transmission_delay: SimTime,
    /// Number of disk servers (drives) the unit's data is spread over.
    pub num_disks: usize,
    /// Average disk access time per page (ms).
    pub disk_delay: SimTime,
    /// Size of the controller cache in page frames (ignored for `Regular` and
    /// `Ssd` units).
    pub cache_size: usize,
}

impl Default for DiskUnitParams {
    fn default() -> Self {
        // Database-disk defaults of Table 4.1.
        Self {
            kind: DiskUnitKind::Regular,
            num_controllers: 1,
            controller_delay: 1.0,
            transmission_delay: 0.4,
            num_disks: 1,
            disk_delay: 15.0,
            cache_size: 1_000,
        }
    }
}

impl DiskUnitParams {
    /// Database-disk unit with the paper's default timings (15 ms disk access)
    /// and enough controllers/disks to avoid bottlenecks at the studied rates.
    pub fn database_disks(kind: DiskUnitKind, num_controllers: usize, num_disks: usize) -> Self {
        Self {
            kind,
            num_controllers,
            num_disks,
            ..Self::default()
        }
    }

    /// Log-disk unit: sequential access shortens seeks, so the paper assumes a
    /// 5 ms disk access time.
    pub fn log_disks(kind: DiskUnitKind, num_controllers: usize, num_disks: usize) -> Self {
        Self {
            kind,
            num_controllers,
            num_disks,
            disk_delay: 5.0,
            ..Self::default()
        }
    }

    /// Sets the controller cache size (page frames).
    pub fn with_cache_size(mut self, pages: usize) -> Self {
        self.cache_size = pages;
        self
    }

    /// Minimal service time of a read that hits in the controller cache or an
    /// SSD (controller + transmission, no queueing): 1.4 ms with the default
    /// parameters, matching §4.1.
    pub fn cache_hit_latency(&self) -> SimTime {
        self.controller_delay + self.transmission_delay
    }

    /// Minimal service time of an access that must touch the disk
    /// (controller + disk + transmission, no queueing): 16.4 ms for database
    /// disks / 6.4 ms for log disks with the default parameters (§4.1).
    pub fn disk_access_latency(&self) -> SimTime {
        self.controller_delay + self.disk_delay + self.transmission_delay
    }
}

/// Aggregate timing constants of the storage hierarchy (Table 2.1), used by
/// the Table 2.1 reproduction and for documentation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceTimings {
    /// NVEM access time per 4 KB page including OS overhead (ms).
    pub nvem_access: SimTime,
    /// SSD / cached-disk access time per page (ms).
    pub ssd_access: SimTime,
    /// Disk access time per page (ms).
    pub disk_access: SimTime,
    /// Approximate cost per megabyte for extended memory (USD, 1990 mainframe
    /// pricing, midpoint of the paper's range).
    pub extended_memory_cost_per_mb: f64,
    /// Approximate cost per megabyte for SSD (USD).
    pub ssd_cost_per_mb: f64,
    /// Approximate cost per megabyte for disks (USD).
    pub disk_cost_per_mb: f64,
}

impl Default for DeviceTimings {
    fn default() -> Self {
        Self {
            nvem_access: time::from_micros(75.0),
            ssd_access: 2.0,
            disk_access: 15.0,
            extended_memory_cost_per_mb: 1_500.0,
            ssd_cost_per_mb: 750.0,
            disk_cost_per_mb: 12.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_match_section_4_1() {
        let db = DiskUnitParams::database_disks(DiskUnitKind::Regular, 4, 16);
        assert!((db.disk_access_latency() - 16.4).abs() < 1e-9);
        assert!((db.cache_hit_latency() - 1.4).abs() < 1e-9);
        let log = DiskUnitParams::log_disks(DiskUnitKind::Regular, 1, 1);
        assert!((log.disk_access_latency() - 6.4).abs() < 1e-9);
    }

    #[test]
    fn kind_capability_predicates() {
        assert!(!DiskUnitKind::Regular.has_cache());
        assert!(DiskUnitKind::VolatileCache.has_cache());
        assert!(DiskUnitKind::NonVolatileCache.has_cache());
        assert!(!DiskUnitKind::Ssd.has_cache());
        assert!(DiskUnitKind::NonVolatileCache.absorbs_writes());
        assert!(DiskUnitKind::Ssd.absorbs_writes());
        assert!(!DiskUnitKind::VolatileCache.absorbs_writes());
        assert!(!DiskUnitKind::Regular.absorbs_writes());
    }

    #[test]
    fn table_2_1_ordering_of_speeds_and_costs() {
        let t = DeviceTimings::default();
        // Faster storage is more expensive per megabyte.
        assert!(t.nvem_access < t.ssd_access);
        assert!(t.ssd_access < t.disk_access);
        assert!(t.extended_memory_cost_per_mb > t.ssd_cost_per_mb);
        assert!(t.ssd_cost_per_mb > t.disk_cost_per_mb);
    }

    #[test]
    fn builder_helpers() {
        let p =
            DiskUnitParams::database_disks(DiskUnitKind::VolatileCache, 2, 8).with_cache_size(500);
        assert_eq!(p.cache_size, 500);
        assert_eq!(p.num_controllers, 2);
        assert_eq!(p.num_disks, 8);
        assert_eq!(p.kind, DiskUnitKind::VolatileCache);
    }
}
