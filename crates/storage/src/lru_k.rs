//! LRU-K access-history tracking for buffer replacement.
//!
//! Classic LRU ranks pages by their single most recent access, which lets one
//! sequential scan flush the whole buffer.  LRU-K (O'Neil et al.) instead
//! ranks pages by their K-th most recent access: the victim is the page with
//! the largest *backward K-distance* — the age of its K-th most recent
//! reference.  Pages with fewer than K recorded accesses have an infinite
//! backward K-distance and are evicted first, ordered by their earliest
//! recorded access (plain LRU among the cold newcomers).
//!
//! The tracker is pure bookkeeping: it does not own the cached values, it only
//! records access history per key and answers "which resident key should be
//! evicted next".  The buffer manager pairs it with its resident-page map and
//! keeps the two in sync (every insert/eviction/invalidation must be mirrored
//! here).  Victim selection scans the tracked set, which is fine for the
//! simulated buffer sizes (hundreds to a few thousand pages); the logical
//! access counter makes every recorded timestamp unique, so the scan's winner
//! is deterministic regardless of hash-map iteration order.
//!
//! With `k == 1` the backward K-distance degenerates to the age of the most
//! recent access and the eviction order is exactly LRU.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Per-key access history: the timestamps of the up-to-K most recent
/// accesses, oldest first.
#[derive(Debug, Clone)]
struct History {
    stamps: VecDeque<u64>,
}

/// LRU-K replacement bookkeeping over a set of tracked keys.
#[derive(Debug, Clone)]
pub struct LruKTracker<K: Eq + Hash + Clone> {
    k: usize,
    /// Logical access clock; incremented on every recorded access, so every
    /// stored timestamp is globally unique.
    counter: u64,
    history: HashMap<K, History>,
}

impl<K: Eq + Hash + Clone> LruKTracker<K> {
    /// Creates a tracker ranking by the K-th most recent access (k >= 1).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "LRU-K needs K >= 1");
        Self {
            k,
            counter: 0,
            history: HashMap::new(),
        }
    }

    /// The configured K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// True if `key` has recorded history.
    pub fn contains(&self, key: &K) -> bool {
        self.history.contains_key(key)
    }

    /// Records an access to `key` at the next logical timestamp, starting to
    /// track it if necessary.
    pub fn record_access(&mut self, key: K) {
        let stamp = self.counter;
        self.counter += 1;
        let entry = self.history.entry(key).or_insert_with(|| History {
            stamps: VecDeque::with_capacity(self.k),
        });
        if entry.stamps.len() == self.k {
            entry.stamps.pop_front();
        }
        entry.stamps.push_back(stamp);
    }

    /// Stops tracking `key` (evicted or invalidated out of the buffer);
    /// returns true if it was tracked.
    pub fn remove(&mut self, key: &K) -> bool {
        self.history.remove(key).is_some()
    }

    /// Chooses the eviction victim among the tracked keys and stops tracking
    /// it: the key with the largest backward K-distance, where keys with
    /// fewer than K accesses rank as infinite and tie-break by their earliest
    /// recorded access.  Returns `None` when nothing is tracked.
    pub fn evict(&mut self) -> Option<K> {
        // Rank: infinite-distance keys (fewer than K accesses) beat all
        // full-history keys; among the former the earliest first access
        // loses, among the latter the earliest K-th-most-recent access
        // (the front of a full deque) loses.  All timestamps are unique, so
        // the minimum is unique and the scan is order-independent.
        let mut victim: Option<(bool, u64, &K)> = None;
        for (key, h) in &self.history {
            let inf = h.stamps.len() < self.k;
            let rank = *h.stamps.front().expect("tracked key has history");
            let better = match &victim {
                None => true,
                Some((v_inf, v_rank, _)) => {
                    (inf, std::cmp::Reverse(rank)) > (*v_inf, std::cmp::Reverse(*v_rank))
                }
            };
            if better {
                victim = Some((inf, rank, key));
            }
        }
        let key = victim.map(|(_, _, k)| k.clone())?;
        self.history.remove(&key);
        Some(key)
    }

    /// Forgets all history (warm-up resets do not use this — access history
    /// is simulation state, not a statistic — but restart processing drops
    /// the buffer wholesale).
    pub fn clear(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_matches_lru_order() {
        let mut t = LruKTracker::new(1);
        for key in [1u64, 2, 3] {
            t.record_access(key);
        }
        t.record_access(1); // 2 is now the coldest
        assert_eq!(t.evict(), Some(2));
        assert_eq!(t.evict(), Some(3));
        assert_eq!(t.evict(), Some(1));
        assert_eq!(t.evict(), None);
        assert!(t.is_empty());
    }

    #[test]
    fn cold_keys_evict_before_full_history_keys() {
        let mut t = LruKTracker::new(2);
        // Key 1 gets two accesses (finite distance), keys 2 and 3 one each.
        t.record_access(1u64);
        t.record_access(1);
        t.record_access(2);
        t.record_access(3);
        // Infinite-distance keys go first, earliest first access first.
        assert_eq!(t.evict(), Some(2));
        assert_eq!(t.evict(), Some(3));
        assert_eq!(t.evict(), Some(1));
    }

    #[test]
    fn k2_ranks_by_second_most_recent_access() {
        let mut t = LruKTracker::new(2);
        // Both keys have full history; 1's accesses are older overall but its
        // 2nd-most-recent (t=0 vs t=1) decides.
        t.record_access(1u64); // t=0
        t.record_access(2); // t=1
        t.record_access(1); // t=2  → key 1 history [0, 2]
        t.record_access(2); // t=3  → key 2 history [1, 3]
        t.record_access(1); // t=4  → key 1 history [2, 4]
                            // Key 2's 2nd-most-recent access (1) is older than key 1's (2).
        assert_eq!(t.evict(), Some(2));
        assert_eq!(t.evict(), Some(1));
    }

    #[test]
    fn scan_resistance_with_k2() {
        // A hot page referenced repeatedly survives a one-touch scan that
        // would flush it under plain LRU.
        let mut t = LruKTracker::new(2);
        t.record_access(100u64);
        t.record_access(100);
        for page in 0..5u64 {
            t.record_access(page);
        }
        // Plain LRU would evict 100 (least recently used); LRU-2 evicts the
        // scanned single-access pages first, oldest first.
        for expected in 0..5u64 {
            assert_eq!(t.evict(), Some(expected));
        }
        assert_eq!(t.evict(), Some(100));
    }

    #[test]
    fn remove_untracks_and_history_is_bounded() {
        let mut t = LruKTracker::new(3);
        for _ in 0..10 {
            t.record_access(7u64);
        }
        assert_eq!(t.len(), 1);
        assert!(t.contains(&7));
        assert!(t.remove(&7));
        assert!(!t.remove(&7));
        assert!(t.is_empty());
        t.record_access(8);
        t.clear();
        assert_eq!(t.evict(), None);
        assert_eq!(t.k(), 3);
    }

    #[test]
    fn victim_choice_is_deterministic_across_equivalent_builds() {
        // Two trackers fed the same access sequence must evict in the same
        // order even though HashMap iteration order may differ between them.
        let feed = |t: &mut LruKTracker<u64>| {
            for step in 0..1000u64 {
                t.record_access(step % 37);
                if step % 5 == 0 {
                    t.record_access(step % 11);
                }
            }
        };
        let mut a = LruKTracker::new(2);
        let mut b = LruKTracker::new(2);
        feed(&mut a);
        feed(&mut b);
        loop {
            let (va, vb) = (a.evict(), b.evict());
            assert_eq!(va, vb);
            if va.is_none() {
                break;
            }
        }
    }
}
