//! I/O plans: the service stages a request must pass through.
//!
//! The device models *decide* which stages an I/O needs (controller, disk,
//! transmission) and whether parts of the work can happen asynchronously
//! (destaging a write from a non-volatile cache to disk); the transaction
//! engine *executes* the stages against queued resources.

use simkernel::time::SimTime;

/// Whether an I/O is a read or a write of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoKind {
    /// Read a page from the unit into main memory.
    Read,
    /// Write a page from main memory to the unit.
    Write,
}

/// One service stage of an I/O at a disk unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServiceStage {
    /// Service at one of the unit's controllers for the given time (ms).
    Controller(SimTime),
    /// Service at one of the unit's disk servers for the given time (ms).
    Disk(SimTime),
    /// Page transmission between main memory and the unit (ms); assumed not to
    /// be a bottleneck, so it is a plain delay without queueing.
    Transmission(SimTime),
}

impl ServiceStage {
    /// The stage's service time, ignoring queueing.
    pub fn service_time(&self) -> SimTime {
        match *self {
            ServiceStage::Controller(t) | ServiceStage::Disk(t) | ServiceStage::Transmission(t) => {
                t
            }
        }
    }
}

/// The decision a disk unit makes for one I/O request.
#[derive(Debug, Clone, PartialEq)]
pub struct IoDecision {
    /// Stages the requester must wait for before the I/O counts as done.
    pub foreground: Vec<ServiceStage>,
    /// Stages performed asynchronously after the foreground part completed
    /// (e.g. the destage of an absorbed write).  The requester does not wait.
    pub background: Vec<ServiceStage>,
    /// True if the request hit in the unit's cache.
    pub cache_hit: bool,
    /// True if a write was absorbed by a non-volatile cache (disk copy updated
    /// asynchronously).
    pub absorbed_write: bool,
}

impl IoDecision {
    /// Sum of the foreground service times (the minimal I/O latency, ignoring
    /// queueing).
    pub fn foreground_service_time(&self) -> SimTime {
        self.foreground.iter().map(ServiceStage::service_time).sum()
    }

    /// Sum of the background service times.
    pub fn background_service_time(&self) -> SimTime {
        self.background.iter().map(ServiceStage::service_time).sum()
    }

    /// Sum of the foreground transmission stages: the per-page transfer
    /// cost a merged batch member pays on top of its leader's seek (see
    /// [`crate::scheduler`]).
    pub fn transmission_time(&self) -> SimTime {
        self.foreground
            .iter()
            .filter(|s| matches!(s, ServiceStage::Transmission(_)))
            .map(ServiceStage::service_time)
            .sum()
    }

    /// True if the request needs a synchronous disk access.
    pub fn touches_disk_in_foreground(&self) -> bool {
        self.foreground
            .iter()
            .any(|s| matches!(s, ServiceStage::Disk(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_times_add_up() {
        let d = IoDecision {
            foreground: vec![
                ServiceStage::Controller(1.0),
                ServiceStage::Disk(15.0),
                ServiceStage::Transmission(0.4),
            ],
            background: vec![ServiceStage::Disk(15.0)],
            cache_hit: false,
            absorbed_write: false,
        };
        assert!((d.foreground_service_time() - 16.4).abs() < 1e-12);
        assert!((d.background_service_time() - 15.0).abs() < 1e-12);
        assert!((d.transmission_time() - 0.4).abs() < 1e-12);
        assert!(d.touches_disk_in_foreground());
    }

    #[test]
    fn cache_hit_decision_has_no_disk_stage() {
        let d = IoDecision {
            foreground: vec![
                ServiceStage::Controller(1.0),
                ServiceStage::Transmission(0.4),
            ],
            background: vec![],
            cache_hit: true,
            absorbed_write: false,
        };
        assert!(!d.touches_disk_in_foreground());
        assert!((d.foreground_service_time() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn stage_service_time_accessor() {
        assert_eq!(ServiceStage::Controller(2.0).service_time(), 2.0);
        assert_eq!(ServiceStage::Disk(5.0).service_time(), 5.0);
        assert_eq!(ServiceStage::Transmission(0.4).service_time(), 0.4);
    }
}
