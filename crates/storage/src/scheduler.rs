//! Per-device I/O request scheduling: coalescing, elevator dispatch and
//! sequential prefetch.
//!
//! Every storage unit today serves requests strictly FCFS, one page at a
//! time, straight against its controller/disk resources.  This module adds
//! an optional scheduling layer in front of a unit's disk servers:
//!
//! * **Coalescing** — concurrent reads of the same page join one in-flight
//!   request (the engine fans the completion back out to every waiter), and
//!   adjacent-page reads merge into one disk access paying a single seek
//!   plus one transmission per page.
//! * **Elevator (C-SCAN) dispatch** — when a disk server frees up, the next
//!   request is picked by an ascending page-order sweep instead of arrival
//!   order.  A deterministic aging bound guarantees no request starves: the
//!   oldest pending request is dispatched after at most
//!   [`IoSchedulerParams::aging_bound`] sweep picks that passed it over.
//! * **Sequential prefetch** — the engine detects ascending runs of buffer
//!   misses and submits speculative reads for the following pages; the
//!   scheduler deduplicates them against pending and in-flight work.
//!
//! Determinism rules: the pending queue is a `BTreeMap` keyed by
//! `(page, seq)` where `seq` is a per-scheduler arrival counter, so every
//! tie is broken identically on every run and iteration order is
//! reproducible.  The scheduler never consults simulated time; aging is
//! counted in dispatch decisions, not milliseconds.
//!
//! The scheduler only *orders and groups* requests.  The engine still
//! executes each dispatched batch's service stages against the unit's
//! queued controller/disk resources, and the device model is still asked
//! for a decision per member page so controller-cache state and per-unit
//! counters evolve exactly as if the pages had been requested individually.

use std::collections::BTreeMap;

use dbmodel::PageId;
use simkernel::time::SimTime;

use crate::device::StorageDevice;
use crate::io::IoKind;

/// Maximum number of pages merged into one dispatched disk access.
///
/// Bounds both the service time of a single batch (so one merged access
/// cannot monopolise a disk server for arbitrarily long) and the size of
/// the completion fan-out.
pub const MERGE_CAP: usize = 8;

/// Opaque tag carried by a speculative (prefetch) request and handed back to
/// the submitter when the request completes.  The engine stores
/// `(node, partition)` here so it can route the page into the right buffer
/// pool; the scheduler itself never interprets the value.
pub type PrefetchTag = (usize, usize);

/// Scheduling policy knobs for one simulation (applied to every disk unit).
///
/// The default is fully disabled: every request is dispatched immediately in
/// arrival order, exactly as without a scheduler, and no scheduler section
/// appears in reports — existing goldens stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSchedulerParams {
    /// Join concurrent same-page reads and merge adjacent-page reads into
    /// one disk access (single seek, one transmission per page).
    pub coalesce: bool,
    /// Dispatch pending reads in ascending page order (C-SCAN sweep)
    /// instead of arrival order.
    pub elevator: bool,
    /// Number of pages to read ahead on a detected ascending miss run
    /// (0 disables prefetching).
    pub prefetch_depth: u32,
    /// Starvation bound for the elevator: the oldest pending request is
    /// dispatched after at most this many sweep picks that passed it over.
    /// Ignored unless `elevator` is set; must be ≥ 1 when it is.
    pub aging_bound: u32,
}

impl Default for IoSchedulerParams {
    fn default() -> Self {
        Self {
            coalesce: false,
            elevator: false,
            prefetch_depth: 0,
            aging_bound: 16,
        }
    }
}

impl IoSchedulerParams {
    /// True if any scheduling policy is active.  When false the engine
    /// bypasses the scheduler entirely.
    pub fn enabled(&self) -> bool {
        self.coalesce || self.elevator || self.prefetch_depth > 0
    }

    /// Validates the parameter combination.
    pub fn validate(&self) -> Result<(), String> {
        if self.elevator && self.aging_bound == 0 {
            return Err("elevator dispatch requires aging_bound >= 1 \
                 (0 would let the sweep starve old requests forever)"
                .into());
        }
        Ok(())
    }
}

/// Counters kept by one device's scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSchedulerStats {
    /// Reads that joined an existing pending or in-flight request for the
    /// same page instead of being queued separately.
    pub coalesced: u64,
    /// Extra pages carried by merged adjacent-page accesses (a batch of k
    /// pages counts k - 1 here).
    pub merged_adjacent: u64,
    /// Speculative reads accepted into the pending queue.
    pub prefetch_issued: u64,
    /// Sum of pending-queue depths observed at each submission.
    pub depth_sum: u64,
    /// Number of submissions observed (denominator for the mean depth).
    pub depth_samples: u64,
}

impl IoSchedulerStats {
    /// Mean pending-queue depth seen by arriving requests (0 when no
    /// request ever arrived).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.depth_samples == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.depth_samples as f64
        }
    }
}

/// What happened to a submitted read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The page is already being read: the waiter must be attached to the
    /// identified in-flight request's completion fan-out.
    JoinedInflight(u32),
    /// The request was queued (possibly joining a pending entry for the
    /// same page).  The engine should try to dispatch.
    Queued,
}

/// One dispatched batch: the pages to read in one disk access, every waiter
/// to wake when it completes, and the prefetch tag (if any) per page.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchBatch {
    /// Member pages in ascending order; the first is the seek leader.
    pub pages: Vec<PageId>,
    /// Transaction slots waiting for any member page.
    pub waiters: Vec<usize>,
    /// Per-page prefetch tag, aligned with `pages` (`None` for demand reads).
    pub prefetch: Vec<Option<PrefetchTag>>,
}

/// The pages and prefetch tags of a completed batch, handed back to the
/// engine so it can admit speculative pages into the buffer pool.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedBatch {
    /// Member pages of the completed access.
    pub pages: Vec<PageId>,
    /// `(page, tag)` for every member that was a speculative read.
    pub prefetched: Vec<(PageId, PrefetchTag)>,
}

/// A queued (not yet dispatched) request.
#[derive(Debug, Clone, PartialEq)]
struct PendingEntry {
    /// Arrival order, used for FCFS dispatch and the aging bound.
    seq: u64,
    /// Transaction slots waiting for the page (empty for pure prefetches).
    waiters: Vec<usize>,
    /// Set if the entry originated as a speculative read.
    prefetch: Option<PrefetchTag>,
}

/// An already dispatched batch the scheduler still tracks (so same-page
/// reads can join it and its completion frees a service slot).
#[derive(Debug, Clone, PartialEq)]
struct InflightBatch {
    io_id: u32,
    pages: Vec<PageId>,
    prefetch: Vec<Option<PrefetchTag>>,
}

/// Per-device request scheduler.  See the module docs for the policies.
#[derive(Debug)]
pub struct RequestScheduler {
    params: IoSchedulerParams,
    /// Concurrent dispatch cap: one batch per disk server.  Requests beyond
    /// it wait in `pending`, which is where reordering happens.
    width: usize,
    /// Pending reads keyed by `(page, seq)`: BTreeMap iteration *is* the
    /// elevator's sweep order, and `seq` makes every key unique so ties are
    /// broken by arrival deterministically.
    pending: BTreeMap<(PageId, u64), PendingEntry>,
    /// Next arrival sequence number.
    next_seq: u64,
    /// C-SCAN sweep position: the next dispatch prefers the smallest
    /// pending page at or above this, wrapping to the smallest overall.
    cursor: PageId,
    /// Dispatch decisions that passed over the oldest pending request since
    /// it became oldest; at `aging_bound` the oldest is dispatched next.
    oldest_skipped: u32,
    /// Batches currently executing against the device (≤ `width`).
    in_service: usize,
    inflight: Vec<InflightBatch>,
    stats: IoSchedulerStats,
}

impl RequestScheduler {
    /// Creates a scheduler for a unit with `num_disks` disk servers.
    ///
    /// # Panics
    /// Panics if the parameters fail [`IoSchedulerParams::validate`].
    pub fn new(params: IoSchedulerParams, num_disks: usize) -> Self {
        if let Err(msg) = params.validate() {
            panic!("invalid I/O scheduler parameters: {msg}");
        }
        Self {
            params,
            width: num_disks.max(1),
            pending: BTreeMap::new(),
            next_seq: 0,
            cursor: PageId(0),
            oldest_skipped: 0,
            in_service: 0,
            inflight: Vec::new(),
            stats: IoSchedulerStats::default(),
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &IoSchedulerParams {
        &self.params
    }

    /// Current counters.
    pub fn stats(&self) -> IoSchedulerStats {
        self.stats
    }

    /// Resets the counters (end of warm-up) without touching queue state.
    pub fn reset_stats(&mut self) {
        self.stats = IoSchedulerStats::default();
    }

    /// Number of queued (not yet dispatched) requests.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of batches currently executing against the device.
    pub fn in_service(&self) -> usize {
        self.in_service
    }

    /// Submits a demand read of `page` on behalf of transaction slot
    /// `waiter`.  The queue depth each request observes on arrival feeds
    /// `mean_queue_depth`.
    pub fn submit(&mut self, page: PageId, waiter: usize) -> SubmitOutcome {
        self.stats.depth_sum += self.pending.len() as u64;
        self.stats.depth_samples += 1;
        if self.params.coalesce {
            if let Some(batch) = self.inflight.iter().find(|b| b.pages.contains(&page)) {
                self.stats.coalesced += 1;
                return SubmitOutcome::JoinedInflight(batch.io_id);
            }
            if let Some(entry) = self.pending_entry_mut(page) {
                entry.waiters.push(waiter);
                self.stats.coalesced += 1;
                return SubmitOutcome::Queued;
            }
        }
        let seq = self.take_seq();
        self.pending.insert(
            (page, seq),
            PendingEntry {
                seq,
                waiters: vec![waiter],
                prefetch: None,
            },
        );
        SubmitOutcome::Queued
    }

    /// Submits a speculative read of `page`.  Returns false (a no-op) if the
    /// page is already pending or in flight — the prefetch is redundant.
    /// Deduplication applies regardless of `coalesce`: issuing the same
    /// speculative page twice models nothing.
    pub fn submit_prefetch(&mut self, page: PageId, tag: PrefetchTag) -> bool {
        if self.inflight.iter().any(|b| b.pages.contains(&page))
            || self.pending_entry_mut(page).is_some()
        {
            return false;
        }
        let seq = self.take_seq();
        self.pending.insert(
            (page, seq),
            PendingEntry {
                seq,
                waiters: Vec::new(),
                prefetch: Some(tag),
            },
        );
        self.stats.prefetch_issued += 1;
        true
    }

    /// Picks the next batch to dispatch, or `None` when every disk server
    /// already has a batch in service or nothing is pending.  The caller
    /// must follow up with [`RequestScheduler::register_inflight`] once the
    /// batch has an I/O id.
    pub fn next_batch(&mut self) -> Option<DispatchBatch> {
        if self.in_service >= self.width || self.pending.is_empty() {
            return None;
        }
        let leader = self.pick_leader();
        let entry = self.pending.remove(&leader).expect("picked key pending");
        let mut pages = vec![leader.0];
        let mut waiters = entry.waiters;
        let mut prefetch = vec![entry.prefetch];
        if self.params.coalesce {
            // Grab consecutive ascending neighbours: a single seek serves
            // the whole run.
            while pages.len() < MERGE_CAP {
                let next_page = PageId(pages.last().expect("non-empty").0.wrapping_add(1));
                let Some(key) = self.first_key_for(next_page) else {
                    break;
                };
                let member = self.pending.remove(&key).expect("ranged key pending");
                pages.push(next_page);
                waiters.extend(member.waiters);
                prefetch.push(member.prefetch);
                self.stats.merged_adjacent += 1;
            }
        }
        self.cursor = PageId(pages.last().expect("non-empty").0.wrapping_add(1));
        self.in_service += 1;
        Some(DispatchBatch {
            pages,
            waiters,
            prefetch,
        })
    }

    /// Records the I/O id the engine assigned to a batch returned by
    /// [`RequestScheduler::next_batch`], so later same-page submissions can
    /// join it and its completion can be matched back.
    pub fn register_inflight(&mut self, io_id: u32, batch: &DispatchBatch) {
        self.inflight.push(InflightBatch {
            io_id,
            pages: batch.pages.clone(),
            prefetch: batch.prefetch.clone(),
        });
    }

    /// Reports the completion of the batch dispatched as `io_id`, freeing
    /// its service slot.  Returns the batch's pages and prefetch tags, or
    /// `None` if the id was never registered (a non-scheduled I/O).
    pub fn complete(&mut self, io_id: u32) -> Option<CompletedBatch> {
        let idx = self.inflight.iter().position(|b| b.io_id == io_id)?;
        let batch = self.inflight.remove(idx);
        debug_assert!(
            self.in_service > 0,
            "batch completion without a matching dispatch"
        );
        if let Some(next) = self.in_service.checked_sub(1) {
            self.in_service = next;
        }
        let prefetched = batch
            .pages
            .iter()
            .zip(batch.prefetch.iter())
            .filter_map(|(&page, tag)| tag.map(|t| (page, t)))
            .collect();
        Some(CompletedBatch {
            pages: batch.pages,
            prefetched,
        })
    }

    /// True if `page` is pending or in flight (used to avoid duplicate
    /// speculative work upstream).
    pub fn tracks_page(&self, page: PageId) -> bool {
        self.inflight.iter().any(|b| b.pages.contains(&page))
            || self
                .pending
                .range((page, 0)..=(page, u64::MAX))
                .next()
                .is_some()
    }

    fn take_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// The earliest-arrived pending entry for `page`, if any.
    fn pending_entry_mut(&mut self, page: PageId) -> Option<&mut PendingEntry> {
        let key = self.first_key_for(page)?;
        self.pending.get_mut(&key)
    }

    fn first_key_for(&self, page: PageId) -> Option<(PageId, u64)> {
        self.pending
            .range((page, 0)..=(page, u64::MAX))
            .next()
            .map(|(&k, _)| k)
    }

    /// Key of the oldest (minimum-seq) pending entry.  BTreeMap iteration
    /// is key-ordered, so the scan is deterministic (and seqs are unique).
    fn oldest_key(&self) -> (PageId, u64) {
        *self
            .pending
            .iter()
            .min_by_key(|(_, e)| e.seq)
            .map(|(k, _)| k)
            .expect("pending non-empty")
    }

    /// Picks the leader key for the next dispatch: FCFS (minimum seq) when
    /// the elevator is off; otherwise the C-SCAN sweep pick, overridden by
    /// the oldest request once the aging bound is reached.
    fn pick_leader(&mut self) -> (PageId, u64) {
        if !self.params.elevator {
            return self.oldest_key();
        }
        let oldest = self.oldest_key();
        if self.oldest_skipped >= self.params.aging_bound {
            self.oldest_skipped = 0;
            return oldest;
        }
        let sweep = self
            .pending
            .range((self.cursor, 0)..)
            .next()
            .map(|(&k, _)| k)
            .unwrap_or_else(|| {
                // Wrap: sweep restarts at the smallest pending page.
                *self.pending.keys().next().expect("pending non-empty")
            });
        if sweep == oldest {
            self.oldest_skipped = 0;
        } else {
            self.oldest_skipped += 1;
        }
        sweep
    }
}

/// Groups an ascending page list into maximal consecutive runs of at most
/// `cap` pages each, returning `(start, len)` per run.  Shared by the
/// steady-state dispatcher and the restart redo planner so both use one
/// definition of "adjacent".
pub fn coalesce_runs(pages: &[PageId], cap: usize) -> Vec<(PageId, usize)> {
    let cap = cap.max(1);
    let mut runs = Vec::new();
    let mut iter = pages.iter().copied();
    let Some(first) = iter.next() else {
        return runs;
    };
    let (mut start, mut len) = (first, 1usize);
    for page in iter {
        if page.0 == start.0.wrapping_add(len as u64) && len < cap {
            len += 1;
        } else {
            runs.push((start, len));
            start = page;
            len = 1;
        }
    }
    runs.push((start, len));
    runs
}

/// Plans the service time of reading `pages` (in the given order) from
/// `device`, honouring the scheduler's coalescing policy.
///
/// * Scheduler (or coalescing) disabled: each page is requested
///   individually and the foreground service times are summed in the given
///   order — arithmetic-identical to issuing the reads one by one.
/// * Coalescing enabled: the pages are sorted, grouped into consecutive
///   runs of at most [`MERGE_CAP`], and each run pays its leader's full
///   access plus one transmission per additional member.
///
/// Every page is still individually requested from the device so cache
/// state and per-unit counters evolve exactly as under individual reads.
/// Used by crash-restart redo replay so restart reads share the
/// steady-state queueing model.
pub fn plan_reads(
    params: &IoSchedulerParams,
    device: &mut dyn StorageDevice,
    pages: &[PageId],
) -> SimTime {
    if !(params.enabled() && params.coalesce) {
        return pages
            .iter()
            .map(|&p| device.request(IoKind::Read, p).foreground_service_time())
            .sum();
    }
    let mut sorted = pages.to_vec();
    sorted.sort_unstable();
    let mut total: SimTime = 0.0;
    for (start, len) in coalesce_runs(&sorted, MERGE_CAP) {
        for i in 0..len {
            let page = PageId(start.0.wrapping_add(i as u64));
            let decision = device.request(IoKind::Read, page);
            total += if i == 0 {
                decision.foreground_service_time()
            } else {
                decision.transmission_time()
            };
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk_unit::DiskUnit;
    use crate::params::{DiskUnitKind, DiskUnitParams};

    fn sched(params: IoSchedulerParams, width: usize) -> RequestScheduler {
        RequestScheduler::new(params, width)
    }

    fn all_on() -> IoSchedulerParams {
        IoSchedulerParams {
            coalesce: true,
            elevator: true,
            prefetch_depth: 4,
            aging_bound: 4,
        }
    }

    #[test]
    fn default_params_are_disabled_and_valid() {
        let p = IoSchedulerParams::default();
        assert!(!p.enabled());
        assert!(p.validate().is_ok());
        assert!(IoSchedulerParams {
            elevator: true,
            aging_bound: 0,
            ..p
        }
        .validate()
        .is_err());
    }

    #[test]
    fn fcfs_dispatches_in_arrival_order() {
        let mut s = sched(
            IoSchedulerParams {
                coalesce: true,
                ..Default::default()
            },
            1,
        );
        s.submit(PageId(9), 0);
        s.submit(PageId(3), 1);
        let b = s.next_batch().unwrap();
        assert_eq!(b.pages, vec![PageId(9)]);
        // Width 1: nothing else dispatches until the batch completes.
        assert!(s.next_batch().is_none());
        s.register_inflight(7, &b);
        s.complete(7).unwrap();
        assert_eq!(s.next_batch().unwrap().pages, vec![PageId(3)]);
    }

    #[test]
    fn same_page_reads_coalesce_and_fan_out() {
        let mut s = sched(
            IoSchedulerParams {
                coalesce: true,
                ..Default::default()
            },
            1,
        );
        s.submit(PageId(5), 0);
        assert_eq!(s.submit(PageId(5), 1), SubmitOutcome::Queued);
        let b = s.next_batch().unwrap();
        // Both waiters ride the single pending entry.
        assert_eq!(b.pages, vec![PageId(5)]);
        assert_eq!(b.waiters, vec![0, 1]);
        s.register_inflight(11, &b);
        // A third reader arrives while the read is in flight: it joins it.
        assert_eq!(s.submit(PageId(5), 2), SubmitOutcome::JoinedInflight(11));
        assert_eq!(s.stats().coalesced, 2);
        let done = s.complete(11).unwrap();
        assert_eq!(done.pages, vec![PageId(5)]);
        assert!(done.prefetched.is_empty());
        assert_eq!(s.in_service(), 0);
    }

    #[test]
    fn adjacent_pages_merge_into_one_batch() {
        let mut s = sched(
            IoSchedulerParams {
                coalesce: true,
                ..Default::default()
            },
            2,
        );
        s.submit(PageId(10), 0);
        s.submit(PageId(12), 1);
        s.submit(PageId(11), 2);
        let b = s.next_batch().unwrap();
        assert_eq!(b.pages, vec![PageId(10), PageId(11), PageId(12)]);
        assert_eq!(b.waiters, vec![0, 2, 1]);
        assert_eq!(s.stats().merged_adjacent, 2);
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn merge_cap_bounds_batch_size() {
        let mut s = sched(
            IoSchedulerParams {
                coalesce: true,
                ..Default::default()
            },
            4,
        );
        for (i, p) in (0..(MERGE_CAP as u64 + 3)).enumerate() {
            s.submit(PageId(p), i);
        }
        let b = s.next_batch().unwrap();
        assert_eq!(b.pages.len(), MERGE_CAP);
        assert_eq!(s.pending_len(), 3);
    }

    #[test]
    fn elevator_sweeps_in_page_order_with_wraparound() {
        let mut s = sched(
            IoSchedulerParams {
                elevator: true,
                aging_bound: 100,
                ..Default::default()
            },
            1,
        );
        for (i, p) in [40u64, 10, 30, 20].into_iter().enumerate() {
            s.submit(PageId(p), i);
        }
        let mut order = Vec::new();
        for io in 0..4u32 {
            let b = s.next_batch().unwrap();
            order.push(b.pages[0]);
            s.register_inflight(io, &b);
            s.complete(io).unwrap();
        }
        // Cursor starts at 0 → ascending sweep.
        assert_eq!(order, vec![PageId(10), PageId(20), PageId(30), PageId(40)]);
        // Now queue pages below the cursor: the sweep wraps.
        s.submit(PageId(5), 9);
        assert_eq!(s.next_batch().unwrap().pages, vec![PageId(5)]);
    }

    #[test]
    fn aging_bound_dispatches_the_oldest_request() {
        // Page 100 arrives first, then a stream of low pages keeps the sweep
        // busy below it after a wrap.  The oldest entry must be dispatched
        // after at most `aging_bound` picks that passed it over.
        let bound = 3u32;
        let mut s = sched(
            IoSchedulerParams {
                elevator: true,
                aging_bound: bound,
                ..Default::default()
            },
            1,
        );
        s.submit(PageId(100), 0);
        // Drive the sweep past 100 once so the cursor wraps above it.
        let mut io = 0u32;
        let mut dispatch = |s: &mut RequestScheduler| {
            let b = s.next_batch().unwrap();
            s.register_inflight(io, &b);
            s.complete(io).unwrap();
            io += 1;
            b.pages[0]
        };
        // Feed low pages; each dispatch picks the low page (cursor < 100
        // never holds after the first pick at 100?). First dispatch picks
        // 100 directly (cursor 0 → smallest ≥ 0 is 100 when alone), so add
        // competitors first.
        for (i, p) in [1u64, 2, 3, 4, 5, 6].into_iter().enumerate() {
            s.submit(PageId(p), i + 1);
        }
        let mut skipped = 0u32;
        loop {
            let picked = dispatch(&mut s);
            if picked == PageId(100) {
                break;
            }
            skipped += 1;
            // Keep the queue stocked with small pages so the sweep would
            // otherwise never reach 100 (it wraps to the small pages).
            s.submit(PageId(u64::from(skipped)), 50 + skipped as usize);
            assert!(skipped <= bound, "oldest request starved past the bound");
        }
        assert_eq!(skipped, bound, "aging must fire exactly at the bound");
    }

    #[test]
    fn prefetch_dedupes_against_pending_and_inflight() {
        let mut s = sched(all_on(), 1);
        assert!(s.submit_prefetch(PageId(7), (0, 0)));
        assert!(!s.submit_prefetch(PageId(7), (0, 0)), "already pending");
        let b = s.next_batch().unwrap();
        s.register_inflight(3, &b);
        assert!(!s.submit_prefetch(PageId(7), (0, 0)), "already in flight");
        let done = s.complete(3).unwrap();
        assert_eq!(done.prefetched, vec![(PageId(7), (0, 0))]);
        assert!(s.submit_prefetch(PageId(7), (0, 0)), "free again");
        assert_eq!(s.stats().prefetch_issued, 2);
        // Prefetch joins are not demand coalescing.
        assert_eq!(s.stats().coalesced, 0);
    }

    #[test]
    fn demand_read_joins_a_pending_prefetch() {
        let mut s = sched(all_on(), 1);
        assert!(s.submit_prefetch(PageId(20), (1, 2)));
        assert_eq!(s.submit(PageId(20), 8), SubmitOutcome::Queued);
        let b = s.next_batch().unwrap();
        assert_eq!(b.pages, vec![PageId(20)]);
        assert_eq!(b.waiters, vec![8]);
        // The entry keeps its prefetch tag: admission still runs at
        // completion (and will find the page already resident).
        assert_eq!(b.prefetch, vec![Some((1, 2))]);
        assert_eq!(s.stats().coalesced, 1);
    }

    #[test]
    fn mean_queue_depth_counts_arrival_depths() {
        let mut s = sched(
            IoSchedulerParams {
                coalesce: true,
                ..Default::default()
            },
            1,
        );
        s.submit(PageId(1), 0); // depth 0
        s.submit(PageId(3), 1); // depth 1
        s.submit(PageId(5), 2); // depth 2
        assert!((s.stats().mean_queue_depth() - 1.0).abs() < 1e-12);
        s.reset_stats();
        assert_eq!(s.stats(), IoSchedulerStats::default());
        assert_eq!(s.pending_len(), 3, "reset keeps queue state");
    }

    #[test]
    fn coalesce_runs_groups_consecutive_pages() {
        let pages: Vec<PageId> = [1u64, 2, 3, 7, 8, 20].iter().map(|&p| PageId(p)).collect();
        assert_eq!(
            coalesce_runs(&pages, 8),
            vec![(PageId(1), 3), (PageId(7), 2), (PageId(20), 1)]
        );
        assert_eq!(
            coalesce_runs(&pages, 2),
            vec![
                (PageId(1), 2),
                (PageId(3), 1),
                (PageId(7), 2),
                (PageId(20), 1)
            ]
        );
        assert!(coalesce_runs(&[], 8).is_empty());
    }

    #[test]
    fn plan_reads_disabled_matches_per_page_sum() {
        let params = DiskUnitParams::database_disks(DiskUnitKind::Regular, 4, 16);
        let mut a = DiskUnit::new("a", params);
        let mut b = DiskUnit::new("b", params);
        let pages: Vec<PageId> = (0..5).map(PageId).collect();
        let individually: SimTime = pages
            .iter()
            .map(|&p| a.request(IoKind::Read, p).foreground_service_time())
            .sum();
        let planned = plan_reads(&IoSchedulerParams::default(), &mut b, &pages);
        assert_eq!(planned, individually, "bit-identical, not just close");
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn plan_reads_coalesced_pays_one_seek_per_run() {
        let params = DiskUnitParams::database_disks(DiskUnitKind::Regular, 4, 16);
        let mut u = DiskUnit::new("u", params);
        let sched_params = IoSchedulerParams {
            coalesce: true,
            ..Default::default()
        };
        // Pages 3,1,2 form one run of 3 after sorting: 16.4 + 2 * 0.4.
        let pages: Vec<PageId> = [3u64, 1, 2].iter().map(|&p| PageId(p)).collect();
        let planned = plan_reads(&sched_params, &mut u, &pages);
        assert!((planned - (16.4 + 2.0 * 0.4)).abs() < 1e-9);
        // Device counters still see every page.
        assert_eq!(u.stats().reads, 3);
    }
}
