//! An order-preserving LRU cache with O(1) access, insert and removal.
//!
//! Used for the disk caches (volatile and non-volatile), the second-level
//! NVEM database buffer and the main-memory buffer.  Besides the usual LRU
//! operations it supports scanning from the least-recently-used end for the
//! first entry matching a predicate — needed to find "the least recently
//! accessed unmodified page" when a non-volatile cache handles a write miss.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K, V> {
    key: K,
    /// `None` only for slots on the free list.
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity LRU cache.
#[derive(Debug, Clone)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (capacity >= 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        Self {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// True if the cache is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// True if `key` is cached.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Marks `key` as most recently used.  Returns false if absent.
    pub fn touch(&mut self, key: &K) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.detach(idx);
            self.attach_front(idx);
            true
        } else {
            false
        }
    }

    /// Returns the value for `key` and marks it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if let Some(&idx) = self.map.get(key) {
            self.detach(idx);
            self.attach_front(idx);
            self.nodes[idx].value.as_ref()
        } else {
            None
        }
    }

    /// Mutable access to the value for `key`, marking it most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if let Some(&idx) = self.map.get(key) {
            self.detach(idx);
            self.attach_front(idx);
            self.nodes[idx].value.as_mut()
        } else {
            None
        }
    }

    /// Returns the value for `key` without affecting recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.nodes[idx].value.as_ref())
    }

    /// Mutable access without affecting recency.
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut V> {
        if let Some(&idx) = self.map.get(key) {
            self.nodes[idx].value.as_mut()
        } else {
            None
        }
    }

    /// Inserts (or updates) `key`, marking it most recently used.  If the
    /// cache is full the least-recently-used entry is evicted and returned.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = Some(value);
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let evicted = if self.is_full() { self.pop_lru() } else { None };
        let idx = if let Some(free) = self.free.pop() {
            self.nodes[free] = Node {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            };
            free
        } else {
            self.nodes.push(Node {
                key: key.clone(),
                value: Some(value),
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        self.nodes[idx].value.take()
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NIL {
            return None;
        }
        let key = self.nodes[self.tail].key.clone();
        let value = self.remove(&key)?;
        Some((key, value))
    }

    /// Key of the least-recently-used entry.
    pub fn lru_key(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.nodes[self.tail].key)
    }

    /// Scans from the least-recently-used end and returns the key of the first
    /// entry whose value matches `pred`.
    pub fn lru_matching<F: Fn(&V) -> bool>(&self, pred: F) -> Option<K> {
        let mut idx = self.tail;
        while idx != NIL {
            if self.nodes[idx].value.as_ref().is_some_and(&pred) {
                return Some(self.nodes[idx].key.clone());
            }
            idx = self.nodes[idx].prev;
        }
        None
    }

    /// Iterates from least-recently-used to most-recently-used.
    pub fn iter_lru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut idx = self.tail;
        std::iter::from_fn(move || {
            if idx == NIL {
                None
            } else {
                let node = &self.nodes[idx];
                idx = node.prev;
                Some((
                    &node.key,
                    node.value.as_ref().expect("live node has a value"),
                ))
            }
        })
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut c = LruCache::new(3);
        assert!(c.insert(1, "a").is_none());
        assert!(c.insert(2, "b").is_none());
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.peek(&2), Some(&"b"));
        assert_eq!(c.len(), 2);
        assert!(!c.is_full());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1); // 2 is now LRU
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert!(c.contains(&1) && c.contains(&3));
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert!(c.insert(1, 11).is_none());
        assert_eq!(c.peek(&1), Some(&11));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(3);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(3, 30);
        assert_eq!(c.remove(&2), Some(20));
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&2));
        c.insert(4, 40);
        c.insert(5, 50); // evicts 1 (LRU)
        assert!(!c.contains(&1));
        assert!(c.contains(&3) && c.contains(&4) && c.contains(&5));
    }

    #[test]
    fn pop_lru_order() {
        let mut c = LruCache::new(3);
        c.insert(1, 'a');
        c.insert(2, 'b');
        c.insert(3, 'c');
        c.touch(&1);
        assert_eq!(c.pop_lru(), Some((2, 'b')));
        assert_eq!(c.pop_lru(), Some((3, 'c')));
        assert_eq!(c.pop_lru(), Some((1, 'a')));
        assert_eq!(c.pop_lru(), None);
        assert!(c.is_empty());
    }

    #[test]
    fn lru_matching_finds_oldest_matching_entry() {
        let mut c = LruCache::new(4);
        c.insert(1, true); // dirty
        c.insert(2, false); // clean
        c.insert(3, true);
        c.insert(4, false);
        // Oldest clean entry is 2.
        assert_eq!(c.lru_matching(|dirty| !*dirty), Some(2));
        // Oldest dirty entry is 1.
        assert_eq!(c.lru_matching(|dirty| *dirty), Some(1));
        assert_eq!(c.lru_matching(|_| false), None);
    }

    #[test]
    fn iter_lru_walks_from_cold_to_hot() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&1);
        let order: Vec<i32> = c.iter_lru().map(|(k, _)| *k).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn peek_does_not_change_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.peek(&1);
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((1, 10)));
    }

    #[test]
    fn get_mut_and_peek_mut() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        *c.peek_mut(&1).unwrap() += 1;
        // peek_mut did not touch; 1 is still LRU.
        assert_eq!(c.lru_key(), Some(&1));
        *c.get_mut(&1).unwrap() += 1;
        assert_eq!(c.peek(&1), Some(&12));
        assert_eq!(c.lru_key(), Some(&2));
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = LruCache::new(2);
        c.insert(1, 1);
        c.clear();
        assert!(c.is_empty());
        assert!(c.insert(2, 2).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_one_cache() {
        let mut c = LruCache::new(1);
        assert!(c.insert(1, 'x').is_none());
        assert_eq!(c.insert(2, 'y'), Some((1, 'x')));
        assert_eq!(c.lru_key(), Some(&2));
    }

    #[test]
    fn capacity_one_eviction_order_under_churn() {
        // At capacity 1 the sole resident entry is simultaneously MRU and
        // LRU: every insert of a new key must evict exactly the previous
        // key, in insertion order, and touch/get must not change that.
        let mut c = LruCache::new(1);
        c.insert(10, "a");
        c.get(&10);
        c.touch(&10);
        assert!(c.is_full());
        for (next, prev) in [(11u64, 10u64), (12, 11), (13, 12)] {
            let evicted = c.insert(next, "x");
            assert_eq!(evicted.map(|(k, _)| k), Some(prev));
            assert_eq!(c.len(), 1);
            assert_eq!(c.lru_key(), Some(&next));
            assert!(c.contains(&next) && !c.contains(&prev));
        }
        // Re-inserting the resident key is an update, not an eviction.
        assert!(c.insert(13, "y").is_none());
        assert_eq!(c.peek(&13), Some(&"y"));
    }

    #[test]
    fn capacity_one_predicate_scan() {
        let mut c = LruCache::new(1);
        assert_eq!(c.lru_matching(|_: &bool| true), None);
        c.insert(7, true);
        assert_eq!(c.lru_matching(|dirty| *dirty), Some(7));
        assert_eq!(c.lru_matching(|dirty| !*dirty), None);
    }

    #[test]
    fn lru_matching_models_find_from_lru_for_unmodified_pages() {
        // The non-volatile disk cache's "least recently used unmodified page"
        // lookup: values count pending destages, 0 = clean (replaceable).
        let mut c: LruCache<u64, u32> = LruCache::new(4);
        c.insert(1, 0); // clean, oldest
        c.insert(2, 2); // dirty
        c.insert(3, 0); // clean
        c.insert(4, 1); // dirty
        assert_eq!(c.lru_matching(|pending| *pending == 0), Some(1));
        // Touching page 1 makes page 3 the LRU clean frame.
        c.touch(&1);
        assert_eq!(c.lru_matching(|pending| *pending == 0), Some(3));
        // Dirty pages become candidates once their destages complete.
        *c.peek_mut(&2).unwrap() = 0;
        assert_eq!(c.lru_matching(|pending| *pending == 0), Some(2));
        // With every frame dirty the scan finds nothing.
        for k in [1, 2, 3] {
            *c.peek_mut(&k).unwrap() = 1;
        }
        assert_eq!(c.lru_matching(|pending| *pending == 0), None);
        // The scan must not disturb recency: page 2 is still the LRU frame.
        assert_eq!(c.lru_key(), Some(&2));
    }

    #[test]
    fn heavy_mixed_workload_is_consistent() {
        // Cross-check against a naive reference implementation.
        let mut c = LruCache::new(8);
        let mut reference: Vec<(u32, u32)> = Vec::new(); // front = MRU
        let mut seed = 123456789u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as u32
        };
        for step in 0..5000u32 {
            let key = next() % 20;
            match next() % 4 {
                0 | 1 => {
                    // insert
                    if let Some(pos) = reference.iter().position(|(k, _)| *k == key) {
                        reference.remove(pos);
                    } else if reference.len() == 8 {
                        reference.pop();
                    }
                    reference.insert(0, (key, step));
                    c.insert(key, step);
                }
                2 => {
                    // get
                    let expect = reference.iter().position(|(k, _)| *k == key);
                    let got = c.get(&key).copied();
                    match expect {
                        Some(pos) => {
                            let entry = reference.remove(pos);
                            assert_eq!(got, Some(entry.1));
                            reference.insert(0, entry);
                        }
                        None => assert_eq!(got, None),
                    }
                }
                _ => {
                    // remove
                    let expect = reference.iter().position(|(k, _)| *k == key);
                    let got = c.remove(&key);
                    match expect {
                        Some(pos) => {
                            let entry = reference.remove(pos);
                            assert_eq!(got, Some(entry.1));
                        }
                        None => assert_eq!(got, None),
                    }
                }
            }
            assert_eq!(c.len(), reference.len());
            // LRU order must match the reference exactly.
            let order: Vec<u32> = c.iter_lru().map(|(k, _)| *k).collect();
            let expected: Vec<u32> = reference.iter().rev().map(|(k, _)| *k).collect();
            assert_eq!(order, expected, "divergence at step {step}");
        }
    }
}
