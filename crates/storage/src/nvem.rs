//! Non-volatile extended memory (NVEM) device parameters.
//!
//! NVEM (the paper's model of IBM Expanded Storage / Fujitsu SSU with battery
//! backup) is page-addressable semiconductor memory accessed *synchronously*
//! by special machine instructions: "accesses to ES are synchronous, i.e. the
//! CPU is not released during the page transfer" (§2).  All data transfers
//! between NVEM and disk must go through main memory.
//!
//! The contents of the NVEM (second-level database buffer, write buffer,
//! resident files) are managed by the DBMS buffer manager (`bufmgr` crate);
//! this module only carries the device parameters, the service model (one or
//! more NVEM servers) being provided by `simkernel::Resource` in the engine.

use simkernel::time::{self, SimTime};

/// NVEM device parameters (Table 3.4 / Table 4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvemParams {
    /// Number of NVEM servers (controllers) allowing concurrent page moves.
    pub num_servers: usize,
    /// Average access time per page move between main memory and NVEM (ms).
    pub access_time: SimTime,
    /// CPU instructions charged per NVEM access (page-move instruction plus
    /// bookkeeping; 300 in Table 4.1).
    pub instr_per_access: f64,
}

impl Default for NvemParams {
    fn default() -> Self {
        Self {
            num_servers: 1,
            access_time: time::from_micros(50.0),
            instr_per_access: 300.0,
        }
    }
}

impl NvemParams {
    /// Total CPU-held time of one synchronous NVEM access on a CPU rated at
    /// `mips`: the instruction overhead plus the page transfer itself.
    pub fn synchronous_cost(&self, mips: f64) -> SimTime {
        time::instr_time(self.instr_per_access, mips) + self.access_time
    }
}

/// Parameters of NVEM accessed through a *server interface* — the
/// [`StorageDevice`](crate::device::StorageDevice) flavour of extended memory, used when a configuration
/// allocates a whole device slot (e.g. the log) to NVEM instead of modelling
/// the access as a synchronous CPU instruction.
///
/// Unlike the synchronous [`NvemParams`] path, requests to an NVEM device
/// queue at its servers like any other device, which models an NVEM reached
/// via an asynchronous page-transfer interface (channel-attached expanded
/// storage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvemDeviceParams {
    /// Number of NVEM servers handling concurrent page transfers.
    pub num_servers: usize,
    /// Service time per page transfer at a server (ms).
    pub access_time: SimTime,
    /// Page transmission delay between main memory and the NVEM (ms); a pure
    /// delay without queueing.
    pub transmission_delay: SimTime,
}

impl Default for NvemDeviceParams {
    fn default() -> Self {
        Self {
            num_servers: 1,
            access_time: time::from_micros(50.0),
            transmission_delay: time::from_micros(25.0),
        }
    }
}

/// NVEM with a device (server) interface: every read and write is absorbed
/// at NVEM speed, no request ever touches a disk.
#[derive(Debug)]
pub struct NvemDevice {
    name: String,
    params: NvemDeviceParams,
    stats: crate::disk_unit::DiskUnitStats,
}

impl NvemDevice {
    /// Creates an NVEM device.
    pub fn new(name: impl Into<String>, params: NvemDeviceParams) -> Self {
        Self {
            name: name.into(),
            params,
            stats: Default::default(),
        }
    }

    /// The device parameters.
    pub fn params(&self) -> &NvemDeviceParams {
        &self.params
    }

    fn access(&self) -> Vec<crate::io::ServiceStage> {
        vec![
            crate::io::ServiceStage::Controller(self.params.access_time),
            crate::io::ServiceStage::Transmission(self.params.transmission_delay),
        ]
    }
}

impl crate::device::StorageDevice for NvemDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn request(
        &mut self,
        kind: crate::io::IoKind,
        _page: dbmodel::PageId,
    ) -> crate::io::IoDecision {
        match kind {
            crate::io::IoKind::Read => {
                self.stats.reads += 1;
                self.stats.read_hits += 1;
            }
            crate::io::IoKind::Write => {
                self.stats.writes += 1;
                self.stats.write_hits += 1;
                self.stats.absorbed_writes += 1;
            }
        }
        crate::io::IoDecision {
            foreground: self.access(),
            background: vec![],
            cache_hit: true,
            absorbed_write: kind == crate::io::IoKind::Write,
        }
    }

    fn destage_complete(&mut self, _page: dbmodel::PageId) {
        // NVEM never destages: the device itself is non-volatile.
    }

    fn stats(&self) -> crate::disk_unit::DiskUnitStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = Default::default();
    }

    fn uncached_latency(&self) -> SimTime {
        self.params.access_time + self.params.transmission_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::StorageDevice;
    use crate::io::IoKind;
    use dbmodel::PageId;

    #[test]
    fn nvem_device_absorbs_everything() {
        let mut d = NvemDevice::new("nvem", NvemDeviceParams::default());
        assert_eq!(d.name(), "nvem");
        let r = d.request(IoKind::Read, PageId(1));
        let w = d.request(IoKind::Write, PageId(2));
        assert!(r.cache_hit && !r.absorbed_write);
        assert!(w.cache_hit && w.absorbed_write);
        assert!(!r.touches_disk_in_foreground());
        assert!(w.background.is_empty());
        let s = StorageDevice::stats(&d);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.absorbed_writes, 1);
        d.destage_complete(PageId(2));
        d.reset_stats();
        assert_eq!(StorageDevice::stats(&d).reads, 0);
        assert!((d.uncached_latency() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn default_access_time_is_50_microseconds() {
        let p = NvemParams::default();
        assert!((p.access_time - 0.05).abs() < 1e-12);
        assert_eq!(p.num_servers, 1);
    }

    #[test]
    fn synchronous_cost_includes_instruction_overhead() {
        let p = NvemParams::default();
        // 300 instructions at 50 MIPS = 6 microseconds, plus the 50 microsecond
        // page move = 56 microseconds.
        let cost = p.synchronous_cost(50.0);
        assert!((cost - 0.056).abs() < 1e-9, "cost {cost}");
    }
}
