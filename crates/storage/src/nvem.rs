//! Non-volatile extended memory (NVEM) device parameters.
//!
//! NVEM (the paper's model of IBM Expanded Storage / Fujitsu SSU with battery
//! backup) is page-addressable semiconductor memory accessed *synchronously*
//! by special machine instructions: "accesses to ES are synchronous, i.e. the
//! CPU is not released during the page transfer" (§2).  All data transfers
//! between NVEM and disk must go through main memory.
//!
//! The contents of the NVEM (second-level database buffer, write buffer,
//! resident files) are managed by the DBMS buffer manager (`bufmgr` crate);
//! this module only carries the device parameters, the service model (one or
//! more NVEM servers) being provided by `simkernel::Resource` in the engine.

use simkernel::time::{self, SimTime};

/// NVEM device parameters (Table 3.4 / Table 4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NvemParams {
    /// Number of NVEM servers (controllers) allowing concurrent page moves.
    pub num_servers: usize,
    /// Average access time per page move between main memory and NVEM (ms).
    pub access_time: SimTime,
    /// CPU instructions charged per NVEM access (page-move instruction plus
    /// bookkeeping; 300 in Table 4.1).
    pub instr_per_access: f64,
}

impl Default for NvemParams {
    fn default() -> Self {
        Self {
            num_servers: 1,
            access_time: time::from_micros(50.0),
            instr_per_access: 300.0,
        }
    }
}

impl NvemParams {
    /// Total CPU-held time of one synchronous NVEM access on a CPU rated at
    /// `mips`: the instruction overhead plus the page transfer itself.
    pub fn synchronous_cost(&self, mips: f64) -> SimTime {
        time::instr_time(self.instr_per_access, mips) + self.access_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_access_time_is_50_microseconds() {
        let p = NvemParams::default();
        assert!((p.access_time - 0.05).abs() < 1e-12);
        assert_eq!(p.num_servers, 1);
    }

    #[test]
    fn synchronous_cost_includes_instruction_overhead() {
        let p = NvemParams::default();
        // 300 instructions at 50 MIPS = 6 microseconds, plus the 50 microsecond
        // page move = 56 microseconds.
        let cost = p.synchronous_cost(50.0);
        assert!((cost - 0.056).abs() < 1e-9, "cost {cost}");
    }
}
