//! The pluggable storage-device abstraction.
//!
//! Every external device the engine can issue page I/O against — regular
//! disks, cached disks (volatile and non-volatile), solid-state disks, and
//! NVEM accessed through a server interface — implements [`StorageDevice`].
//! Devices are *policy only*: [`StorageDevice::request`] decides which
//! service stages an I/O must pass through (an [`IoDecision`]) and maintains
//! cache state, while the transaction engine executes the stages against
//! queued `simkernel` resources so controller and disk-arm queueing is
//! modelled faithfully.
//!
//! A concrete topology is described by a list of [`DeviceSpec`]s in the
//! simulation configuration; [`DeviceSpec::build`] instantiates the matching
//! device model.  New topologies (an all-NVEM log device, a cached-disk
//! database with an SSD log, ...) are therefore configuration, not engine
//! code.

use dbmodel::PageId;
use simkernel::time::SimTime;

use crate::disk_unit::{DiskUnit, DiskUnitStats};
use crate::io::{IoDecision, IoKind};
use crate::nvem::{NvemDevice, NvemDeviceParams};
use crate::params::DiskUnitParams;

/// A pluggable external storage device.
///
/// # Contract
///
/// * [`request`](StorageDevice::request) is called once per page I/O.  It
///   must return the foreground stages the requester waits for, optional
///   background (destage) stages, and update the device's cache state and
///   statistics.  It must not advance simulated time.
/// * [`destage_complete`](StorageDevice::destage_complete) is called by the
///   engine when a background destage for `page` has finished; the device
///   marks the frame clean (replaceable).
/// * [`stats`](StorageDevice::stats) /
///   [`reset_stats`](StorageDevice::reset_stats) expose and clear the
///   per-device counters; `reset_stats` (end of warm-up) must not disturb
///   cache contents.
/// * Foreground `Controller` stages queue at the device's controller
///   resource, `Disk` stages at its disk-server resource, and `Transmission`
///   stages are pure delays — the engine owns those resources, sized by
///   [`DeviceSpec::num_controllers`] and [`DeviceSpec::num_disks`].
pub trait StorageDevice: Send {
    /// The device's name (used in reports).
    fn name(&self) -> &str;

    /// Decides the service stages of one page I/O and updates cache state.
    fn request(&mut self, kind: IoKind, page: PageId) -> IoDecision;

    /// Informs the device that the asynchronous destage of `page` completed.
    fn destage_complete(&mut self, page: PageId);

    /// Current per-device counters.
    fn stats(&self) -> DiskUnitStats;

    /// Resets the counters (end of warm-up) without touching cache contents.
    fn reset_stats(&mut self);

    /// Minimal foreground service time of an access that misses every cache
    /// (used for documentation and sanity checks; no queueing).
    fn uncached_latency(&self) -> SimTime;
}

/// Configuration of one storage device slot.
///
/// The engine builds a [`StorageDevice`] trait object per spec and creates
/// the controller/disk-server resources the device's service stages queue at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceSpec {
    /// A disk unit (regular, volatile cache, non-volatile cache, or SSD).
    DiskUnit(DiskUnitParams),
    /// NVEM accessed through a server interface (e.g. an all-NVEM log
    /// device): every request is absorbed at NVEM speed, no disk stage ever.
    NvemServer(NvemDeviceParams),
}

impl From<DiskUnitParams> for DeviceSpec {
    fn from(params: DiskUnitParams) -> Self {
        DeviceSpec::DiskUnit(params)
    }
}

impl From<NvemDeviceParams> for DeviceSpec {
    fn from(params: NvemDeviceParams) -> Self {
        DeviceSpec::NvemServer(params)
    }
}

impl DeviceSpec {
    /// Instantiates the device model for this spec.
    pub fn build(&self, name: impl Into<String>) -> Box<dyn StorageDevice> {
        match *self {
            DeviceSpec::DiskUnit(params) => Box::new(DiskUnit::new(name, params)),
            DeviceSpec::NvemServer(params) => Box::new(NvemDevice::new(name, params)),
        }
    }

    /// Number of controller servers the engine must provide.
    pub fn num_controllers(&self) -> usize {
        match *self {
            DeviceSpec::DiskUnit(p) => p.num_controllers.max(1),
            DeviceSpec::NvemServer(p) => p.num_servers.max(1),
        }
    }

    /// Number of disk servers the engine must provide (1 for devices that
    /// never emit a disk stage, so the resource exists but stays idle).
    pub fn num_disks(&self) -> usize {
        match *self {
            DeviceSpec::DiskUnit(p) => p.num_disks.max(1),
            DeviceSpec::NvemServer(_) => 1,
        }
    }

    /// The disk-unit parameters of a [`DeviceSpec::DiskUnit`] spec.
    ///
    /// # Panics
    /// Panics when called on a non-disk spec; use it only where the
    /// configuration is known to describe a disk unit (presets, tests).
    pub fn disk(&self) -> &DiskUnitParams {
        match self {
            DeviceSpec::DiskUnit(p) => p,
            other => panic!("device spec {other:?} is not a disk unit"),
        }
    }

    /// Mutable access to the disk-unit parameters (same contract as
    /// [`DeviceSpec::disk`]).
    pub fn disk_mut(&mut self) -> &mut DiskUnitParams {
        match self {
            DeviceSpec::DiskUnit(p) => p,
            other => panic!("device spec {other:?} is not a disk unit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DiskUnitKind;

    #[test]
    fn disk_spec_builds_a_disk_unit() {
        let spec: DeviceSpec = DiskUnitParams::database_disks(DiskUnitKind::Regular, 4, 16).into();
        assert_eq!(spec.num_controllers(), 4);
        assert_eq!(spec.num_disks(), 16);
        let mut dev = spec.build("db");
        assert_eq!(dev.name(), "db");
        let d = dev.request(IoKind::Read, PageId(1));
        assert!(d.touches_disk_in_foreground());
        assert!((dev.uncached_latency() - 16.4).abs() < 1e-9);
    }

    #[test]
    fn nvem_spec_builds_an_nvem_device() {
        let spec: DeviceSpec = NvemDeviceParams::default().into();
        assert_eq!(spec.num_disks(), 1);
        let mut dev = spec.build("nvem-log");
        let d = dev.request(IoKind::Write, PageId(9));
        assert!(!d.touches_disk_in_foreground());
        assert!(d.absorbed_write);
    }

    #[test]
    #[should_panic(expected = "not a disk unit")]
    fn disk_accessor_panics_for_nvem_spec() {
        let spec: DeviceSpec = NvemDeviceParams::default().into();
        let _ = spec.disk();
    }
}
