//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use storage::{DiskUnit, DiskUnitKind, DiskUnitParams, IoKind, LruCache};

use dbmodel::PageId;

proptest! {
    /// The LRU cache never exceeds its capacity, and a key just inserted is
    /// always present.
    #[test]
    fn lru_capacity_invariant(capacity in 1usize..32,
                              ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..500)) {
        let mut c: LruCache<u64, u64> = LruCache::new(capacity);
        for (i, (key, is_insert)) in ops.into_iter().enumerate() {
            if is_insert {
                c.insert(key, i as u64);
                prop_assert!(c.contains(&key));
            } else {
                c.remove(&key);
                prop_assert!(!c.contains(&key));
            }
            prop_assert!(c.len() <= capacity);
        }
    }

    /// The LRU cache behaves identically to a naive reference model under an
    /// arbitrary mix of inserts, gets and removes.
    #[test]
    fn lru_matches_reference_model(capacity in 1usize..16,
                                   ops in proptest::collection::vec((0u8..3, 0u64..32), 1..400)) {
        let mut c: LruCache<u64, u64> = LruCache::new(capacity);
        let mut reference: Vec<(u64, u64)> = Vec::new(); // front = MRU
        for (i, (op, key)) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    if let Some(pos) = reference.iter().position(|(k, _)| *k == key) {
                        reference.remove(pos);
                    } else if reference.len() == capacity {
                        reference.pop();
                    }
                    reference.insert(0, (key, i as u64));
                    c.insert(key, i as u64);
                }
                1 => {
                    let expected = reference.iter().position(|(k, _)| *k == key);
                    let got = c.get(&key).copied();
                    match expected {
                        Some(pos) => {
                            let e = reference.remove(pos);
                            prop_assert_eq!(got, Some(e.1));
                            reference.insert(0, e);
                        }
                        None => prop_assert_eq!(got, None),
                    }
                }
                _ => {
                    let expected = reference.iter().position(|(k, _)| *k == key).map(|p| reference.remove(p).1);
                    prop_assert_eq!(c.remove(&key), expected);
                }
            }
            let order: Vec<u64> = c.iter_lru().map(|(k, _)| *k).collect();
            let expected_order: Vec<u64> = reference.iter().rev().map(|(k, _)| *k).collect();
            prop_assert_eq!(order, expected_order);
        }
    }

    /// Disk-unit invariants that must hold for every request sequence:
    /// * the cache never grows beyond its configured size,
    /// * every decision has a positive foreground service time,
    /// * only non-volatile caches and SSDs ever absorb writes,
    /// * an absorbed write on a cached unit schedules exactly one destage.
    #[test]
    fn disk_unit_invariants(kind_sel in 0u8..4,
                            cache_size in 1usize..16,
                            ops in proptest::collection::vec((any::<bool>(), 0u64..48), 1..400)) {
        let kind = match kind_sel {
            0 => DiskUnitKind::Regular,
            1 => DiskUnitKind::VolatileCache,
            2 => DiskUnitKind::NonVolatileCache,
            _ => DiskUnitKind::Ssd,
        };
        let mut unit = DiskUnit::new("p", DiskUnitParams {
            kind,
            cache_size,
            ..DiskUnitParams::default()
        });
        let mut destage_backlog: Vec<PageId> = Vec::new();
        for (is_write, page) in ops {
            let kind_io = if is_write { IoKind::Write } else { IoKind::Read };
            let d = unit.request(kind_io, PageId(page));
            prop_assert!(d.foreground_service_time() > 0.0);
            prop_assert!(unit.cached_pages() <= cache_size);
            if d.absorbed_write {
                prop_assert!(kind.absorbs_writes());
                prop_assert!(is_write);
            }
            if !d.background.is_empty() {
                prop_assert_eq!(kind, DiskUnitKind::NonVolatileCache);
                destage_backlog.push(PageId(page));
            }
            // Occasionally complete the oldest destage, as the engine would.
            if destage_backlog.len() > 4 {
                let p = destage_backlog.remove(0);
                unit.destage_complete(p);
            }
        }
        // Statistics are consistent.
        let s = unit.stats();
        prop_assert!(s.read_hits <= s.reads);
        prop_assert!(s.write_hits <= s.writes);
        prop_assert!(s.absorbed_writes + s.forced_sync_writes <= s.writes + s.reads);
    }
}
