//! Core workload vocabulary shared by all generators.

use simkernel::SimRng;

/// Identifier of a database partition (file / record type / index).
pub type PartitionId = usize;

/// Identifier of a transaction type.
pub type TxTypeId = usize;

/// Global page identifier.
///
/// Pages are numbered globally across partitions: each partition owns a dense
/// contiguous range of page numbers, assigned by [`crate::Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Global object identifier (an object lives inside exactly one page).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

/// Read or write access, as recorded per object reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Read access; requests a read lock.
    Read,
    /// Write access; requests a write lock and dirties the page.
    Write,
}

impl AccessMode {
    /// True for write accesses.
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessMode::Write)
    }
}

/// One object reference of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectRef {
    /// Partition the object belongs to.
    pub partition: super::database::PartitionId,
    /// Page holding the object.
    pub page: PageId,
    /// The object itself (used for object-level locking).
    pub object: ObjectId,
    /// Read or write.
    pub mode: AccessMode,
}

/// A fully materialized transaction: its type and the ordered list of object
/// references it will perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionTemplate {
    /// Transaction type (indexes per-type statistics and the reference matrix).
    pub tx_type: TxTypeId,
    /// Ordered object references.
    pub refs: Vec<ObjectRef>,
}

impl TransactionTemplate {
    /// Number of object references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True if the transaction performs no references (possible for degenerate
    /// variable-size draws; such transactions only consume BOT/EOT CPU).
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// True if any reference is a write (the transaction is an update
    /// transaction and must write log data at commit).
    pub fn is_update(&self) -> bool {
        self.refs.iter().any(|r| r.mode.is_write())
    }

    /// Number of distinct pages written by the transaction.
    pub fn distinct_pages_written(&self) -> usize {
        let mut pages: Vec<PageId> = self
            .refs
            .iter()
            .filter(|r| r.mode.is_write())
            .map(|r| r.page)
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }

    /// Number of distinct pages referenced by the transaction.
    pub fn distinct_pages(&self) -> usize {
        let mut pages: Vec<PageId> = self.refs.iter().map(|r| r.page).collect();
        pages.sort_unstable();
        pages.dedup();
        pages.len()
    }
}

/// A workload generator produces the next transaction to submit.
///
/// The SOURCE component of the simulator asks the generator for a new
/// transaction template whenever an arrival event fires.  Implementations are
/// free to be stochastic (synthetic workloads) or deterministic replays
/// (trace-driven workloads).
pub trait WorkloadGenerator {
    /// Produces the next transaction, or `None` when the workload is
    /// exhausted (only trace-driven workloads terminate).
    fn next_transaction(&mut self, rng: &mut SimRng) -> Option<TransactionTemplate>;

    /// Number of distinct transaction types this workload can generate.
    fn num_tx_types(&self) -> usize;

    /// A human-readable name for reports.
    fn name(&self) -> &str;

    /// Total number of global pages of the underlying database, used to build
    /// range [`crate::PartitionMap`]s for shared-nothing runs.  Generators
    /// without a materialized database may return the default `0`; a
    /// range-partitioned simulation then refuses to start.
    fn total_pages(&self) -> u64 {
        0
    }

    /// Switches the generator into Zipfian hot-spot mode (see
    /// [`crate::hotspot::HotSpotParams`]).  Called once before the run starts,
    /// and only with *active* parameters — generators that do not support
    /// skew (e.g. trace replay, whose accesses are fixed) keep the default
    /// no-op.  Implementations must leave their draw sequences untouched
    /// until this is called, so runs without skew stay byte-identical.
    fn apply_hot_spot(&mut self, params: crate::hotspot::HotSpotParams) {
        let _ = params;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_ref(page: u64, object: u64, mode: AccessMode) -> ObjectRef {
        ObjectRef {
            partition: 0,
            page: PageId(page),
            object: ObjectId(object),
            mode,
        }
    }

    #[test]
    fn update_detection() {
        let read_only = TransactionTemplate {
            tx_type: 0,
            refs: vec![
                make_ref(1, 1, AccessMode::Read),
                make_ref(2, 2, AccessMode::Read),
            ],
        };
        assert!(!read_only.is_update());
        let update = TransactionTemplate {
            tx_type: 0,
            refs: vec![
                make_ref(1, 1, AccessMode::Read),
                make_ref(2, 2, AccessMode::Write),
            ],
        };
        assert!(update.is_update());
    }

    #[test]
    fn distinct_page_counting() {
        let t = TransactionTemplate {
            tx_type: 1,
            refs: vec![
                make_ref(1, 10, AccessMode::Write),
                make_ref(1, 11, AccessMode::Write),
                make_ref(2, 20, AccessMode::Read),
                make_ref(3, 30, AccessMode::Write),
            ],
        };
        assert_eq!(t.len(), 4);
        assert_eq!(t.distinct_pages(), 3);
        assert_eq!(t.distinct_pages_written(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn access_mode_predicates() {
        assert!(AccessMode::Write.is_write());
        assert!(!AccessMode::Read.is_write());
    }
}
