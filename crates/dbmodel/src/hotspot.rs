//! Zipfian hot-spot access model for internet-scale workloads.
//!
//! The paper's synthetic model skews access with contiguous sub-partitions
//! (the generalized b/c rule); traffic from millions of users is better
//! described by a Zipfian popularity curve over a *hot set*: a fraction
//! `hot_fraction` of the items receives all but `hot_fraction` of the
//! accesses, Zipf-distributed inside the hot set, with the cold remainder hit
//! uniformly.  `hot_fraction = 0.2, theta = 0.9` therefore means "80 % of the
//! traffic hammers a Zipf-skewed fifth of the data".
//!
//! The default parameters (`theta = 0`, `hot_fraction = 1`) are **inactive**:
//! generators must not change their draw sequences at all, so every existing
//! seed stays byte-identical.

use simkernel::dist::Zipf;
use simkernel::SimRng;

/// Hot-spot skew parameters, carried on the simulation config and applied to
/// workload generators before the run starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotSpotParams {
    /// Zipf skew inside the hot set, in `[0, 1)` (0 = uniform hot set).
    pub theta: f64,
    /// Fraction of the items forming the hot set, in `(0, 1]`.  `1.0` spreads
    /// the Zipf curve over the whole partition.
    pub hot_fraction: f64,
}

impl Default for HotSpotParams {
    fn default() -> Self {
        Self {
            theta: 0.0,
            hot_fraction: 1.0,
        }
    }
}

impl HotSpotParams {
    /// Convenience constructor.
    pub fn new(theta: f64, hot_fraction: f64) -> Self {
        Self {
            theta,
            hot_fraction,
        }
    }

    /// True when the parameters actually skew anything.  Inactive parameters
    /// must leave generators untouched (draw-sequence identical).
    pub fn is_active(&self) -> bool {
        self.theta > 0.0 || self.hot_fraction < 1.0
    }

    /// Validates ranges; mirrored by `SimulationConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if !self.theta.is_finite() || !(0.0..1.0).contains(&self.theta) {
            return Err(format!(
                "hot-spot theta must be in [0, 1), got {}",
                self.theta
            ));
        }
        if !(self.hot_fraction.is_finite() && self.hot_fraction > 0.0 && self.hot_fraction <= 1.0) {
            return Err(format!(
                "hot-spot fraction must be in (0, 1], got {}",
                self.hot_fraction
            ));
        }
        Ok(())
    }
}

/// A sampler over `0..n` implementing the hot-spot model: with probability
/// `1 - hot_fraction` the access goes to the hot set (the first
/// `hot_fraction · n` items, Zipf-ranked), otherwise uniformly to the cold
/// remainder.  With `hot_fraction = 1` it degenerates to plain Zipf over the
/// whole range.
#[derive(Debug, Clone)]
pub struct HotSpotSampler {
    n: u64,
    hot_items: u64,
    hot_access_prob: f64,
    zipf: Zipf,
}

impl HotSpotSampler {
    /// Builds a sampler over `0..n` items.  `params` must be valid.
    pub fn new(n: u64, params: HotSpotParams) -> Self {
        assert!(n >= 1, "hot-spot sampler needs at least one item");
        params.validate().expect("invalid hot-spot parameters");
        let hot_items = ((params.hot_fraction * n as f64).round() as u64).clamp(1, n);
        let hot_access_prob = if hot_items >= n {
            1.0
        } else {
            1.0 - params.hot_fraction
        };
        Self {
            n,
            hot_items,
            hot_access_prob,
            zipf: Zipf::new(hot_items, params.theta),
        }
    }

    /// Samples an item index in `0..n` (0 is the most popular item).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        // `chance(1.0)` returns true without drawing, so the degenerate
        // whole-range case costs no extra random number.
        if rng.chance(self.hot_access_prob) {
            self.zipf.sample(rng)
        } else {
            self.hot_items + rng.below(self.n - self.hot_items)
        }
    }

    /// Number of items in the hot set.
    pub fn hot_items(&self) -> u64 {
        self.hot_items
    }

    /// Total number of items.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Always false (the sampler covers at least one item).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_are_inactive_and_valid() {
        let p = HotSpotParams::default();
        assert!(!p.is_active());
        assert!(p.validate().is_ok());
        assert!(HotSpotParams::new(0.5, 0.2).is_active());
        assert!(HotSpotParams::new(0.0, 0.5).is_active());
    }

    #[test]
    fn invalid_ranges_are_rejected() {
        assert!(HotSpotParams::new(1.0, 0.5).validate().is_err());
        assert!(HotSpotParams::new(-0.1, 0.5).validate().is_err());
        assert!(HotSpotParams::new(f64::NAN, 0.5).validate().is_err());
        assert!(HotSpotParams::new(0.5, 0.0).validate().is_err());
        assert!(HotSpotParams::new(0.5, 1.5).validate().is_err());
        assert!(HotSpotParams::new(0.5, f64::NAN).validate().is_err());
    }

    #[test]
    fn sampler_concentrates_traffic_on_hot_set() {
        let n = 100_000;
        let s = HotSpotSampler::new(n, HotSpotParams::new(0.9, 0.1));
        assert_eq!(s.hot_items(), 10_000);
        let mut rng = SimRng::seed_from(31);
        let draws = 50_000;
        let hot = (0..draws)
            .filter(|_| s.sample(&mut rng) < s.hot_items())
            .count() as f64
            / draws as f64;
        // 90% of accesses should land in the hottest 10% of items.
        assert!((hot - 0.9).abs() < 0.01, "hot share {hot}");
    }

    #[test]
    fn sampler_is_zipf_skewed_inside_hot_set() {
        let s = HotSpotSampler::new(100_000, HotSpotParams::new(0.9, 0.1));
        let mut rng = SimRng::seed_from(32);
        let draws = 50_000;
        let top100 = (0..draws).filter(|_| s.sample(&mut rng) < 100).count() as f64 / draws as f64;
        // Zipf(theta=0.9) over 10k items puts far more than 1% of the hot
        // traffic on the 100 hottest items.
        assert!(top100 > 0.25, "top-100 share {top100}");
    }

    #[test]
    fn whole_range_fraction_degenerates_to_zipf() {
        let s = HotSpotSampler::new(1000, HotSpotParams::new(0.5, 1.0));
        let z = Zipf::new(1000, 0.5);
        let mut ra = SimRng::seed_from(33);
        let mut rb = SimRng::seed_from(33);
        for _ in 0..2000 {
            assert_eq!(s.sample(&mut ra), z.sample(&mut rb));
        }
    }

    #[test]
    fn sampler_stays_in_range() {
        let s = HotSpotSampler::new(77, HotSpotParams::new(0.3, 0.4));
        let mut rng = SimRng::seed_from(34);
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) < 77);
        }
        assert_eq!(s.len(), 77);
        assert!(!s.is_empty());
    }

    #[test]
    fn tiny_partitions_are_safe() {
        let s = HotSpotSampler::new(1, HotSpotParams::new(0.9, 0.1));
        let mut rng = SimRng::seed_from(35);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }
}
