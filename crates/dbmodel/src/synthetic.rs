//! General synthetic workload generator.
//!
//! Implements the SOURCE module for "general synthetic transaction loads with
//! a high flexibility for studying different load profiles" (§3.1): multiple
//! transaction types, each with an arrival weight, an average number of object
//! accesses (fixed or exponentially distributed), a write probability, and a
//! sequential or non-sequential access pattern; the partition accessed per
//! reference is drawn from the relative reference matrix, the object within
//! the partition from the partition's sub-partition model.

use simkernel::SimRng;

use crate::database::Database;
use crate::hotspot::{HotSpotParams, HotSpotSampler};
use crate::reference::ReferenceMatrix;
use crate::types::{AccessMode, ObjectRef, TransactionTemplate, TxTypeId, WorkloadGenerator};

/// Per-transaction-type parameters of the synthetic model (Table 3.1).
#[derive(Debug, Clone)]
pub struct TransactionTypeSpec {
    /// Diagnostic name.
    pub name: String,
    /// Relative arrival weight (the mix is sampled proportionally to this).
    pub arrival_weight: f64,
    /// Average number of objects accessed per transaction.
    pub tx_size: f64,
    /// Probability that an individual access is a write.
    pub write_prob: f64,
    /// Sequential transactions access `tx_size` consecutive objects of one
    /// partition; non-sequential transactions draw each access independently.
    pub sequential: bool,
    /// Variable-size transactions draw their size from an exponential
    /// distribution over `tx_size`; fixed-size transactions always access
    /// exactly `tx_size` objects.
    pub variable_size: bool,
}

impl TransactionTypeSpec {
    /// A non-sequential, fixed-size transaction type.
    pub fn fixed(name: impl Into<String>, tx_size: u64, write_prob: f64) -> Self {
        Self {
            name: name.into(),
            arrival_weight: 1.0,
            tx_size: tx_size as f64,
            write_prob,
            sequential: false,
            variable_size: false,
        }
    }

    /// A non-sequential, variable-size transaction type.
    pub fn variable(name: impl Into<String>, mean_size: f64, write_prob: f64) -> Self {
        Self {
            name: name.into(),
            arrival_weight: 1.0,
            tx_size: mean_size,
            write_prob,
            sequential: false,
            variable_size: true,
        }
    }

    /// Sets the relative arrival weight.
    pub fn with_arrival_weight(mut self, w: f64) -> Self {
        self.arrival_weight = w;
        self
    }

    /// Marks the type as sequential.
    pub fn sequential(mut self) -> Self {
        self.sequential = true;
        self
    }
}

/// The general synthetic workload generator.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    name: String,
    database: Database,
    tx_types: Vec<TransactionTypeSpec>,
    matrix: ReferenceMatrix,
    /// Per-partition hot-spot samplers; when set they replace the
    /// sub-partition object draw (the partition mix is unchanged).
    hot_spot: Option<Vec<HotSpotSampler>>,
}

impl SyntheticWorkload {
    /// Creates a generator.  The reference matrix must have one row per
    /// transaction type and one column per database partition.
    pub fn new(
        name: impl Into<String>,
        database: Database,
        tx_types: Vec<TransactionTypeSpec>,
        matrix: ReferenceMatrix,
    ) -> Self {
        assert_eq!(
            matrix.num_tx_types(),
            tx_types.len(),
            "reference matrix rows must match the number of transaction types"
        );
        assert_eq!(
            matrix.num_partitions(),
            database.num_partitions(),
            "reference matrix columns must match the number of partitions"
        );
        for (i, _) in tx_types.iter().enumerate() {
            assert!(
                matrix.row_is_valid(i),
                "transaction type {i} has an all-zero reference matrix row"
            );
        }
        Self {
            name: name.into(),
            database,
            tx_types,
            matrix,
            hot_spot: None,
        }
    }

    /// Samples a local object index of `partition`: from the hot-spot curve
    /// when skew is active, from the sub-partition model otherwise.
    fn sample_local(&self, partition: usize, rng: &mut SimRng) -> u64 {
        match &self.hot_spot {
            Some(samplers) => samplers[partition].sample(rng),
            None => self.database.partition(partition).sample_object(rng),
        }
    }

    /// The database this workload runs against.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The transaction type specifications.
    pub fn tx_types(&self) -> &[TransactionTypeSpec] {
        &self.tx_types
    }

    /// Samples which transaction type arrives next.
    pub fn sample_tx_type(&self, rng: &mut SimRng) -> TxTypeId {
        let weights: Vec<f64> = self.tx_types.iter().map(|t| t.arrival_weight).collect();
        rng.weighted_index(&weights)
    }

    /// Number of object accesses for one instance of `tx_type`.
    fn sample_size(&self, tx_type: TxTypeId, rng: &mut SimRng) -> u64 {
        let spec = &self.tx_types[tx_type];
        if spec.variable_size {
            // Exponential over the mean, rounded, but at least one access.
            rng.exponential(spec.tx_size).round().max(1.0) as u64
        } else {
            spec.tx_size.round().max(1.0) as u64
        }
    }

    /// Generates one transaction of the given type.
    pub fn generate_of_type(&mut self, tx_type: TxTypeId, rng: &mut SimRng) -> TransactionTemplate {
        let size = self.sample_size(tx_type, rng);
        let spec = &self.tx_types[tx_type];
        let write_prob = spec.write_prob;
        let sequential = spec.sequential;
        let mut refs = Vec::with_capacity(size as usize);

        if sequential {
            // Sequential transactions: all accesses to one partition, starting
            // at a sampled object and following its successors (§3.1).
            let partition = self.matrix.sample_partition(tx_type, rng);
            let start = self.sample_local(partition, rng);
            let p = self.database.partition(partition);
            for i in 0..size {
                let local = (start + i) % p.num_objects();
                let mode = if rng.chance(write_prob) {
                    AccessMode::Write
                } else {
                    AccessMode::Read
                };
                refs.push(ObjectRef {
                    partition,
                    page: p.page_of_object(local),
                    object: p.object(local),
                    mode,
                });
            }
        } else {
            for _ in 0..size {
                let partition = self.matrix.sample_partition(tx_type, rng);
                let local = self.sample_local(partition, rng);
                let p = self.database.partition(partition);
                let mode = if rng.chance(write_prob) {
                    AccessMode::Write
                } else {
                    AccessMode::Read
                };
                refs.push(ObjectRef {
                    partition,
                    page: p.page_of_object(local),
                    object: p.object(local),
                    mode,
                });
            }
        }
        TransactionTemplate { tx_type, refs }
    }
}

impl WorkloadGenerator for SyntheticWorkload {
    fn next_transaction(&mut self, rng: &mut SimRng) -> Option<TransactionTemplate> {
        let tx_type = self.sample_tx_type(rng);
        Some(self.generate_of_type(tx_type, rng))
    }

    fn num_tx_types(&self) -> usize {
        self.tx_types.len()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn total_pages(&self) -> u64 {
        self.database.total_pages()
    }

    fn apply_hot_spot(&mut self, params: HotSpotParams) {
        let samplers = self
            .database
            .partitions()
            .map(|p| HotSpotSampler::new(p.num_objects(), params))
            .collect();
        self.hot_spot = Some(samplers);
    }
}

/// Builds the two-partition, high-contention synthetic workload used in the
/// lock-contention experiment (§4.7 / Fig. 4.8):
///
/// * one variable-size transaction type, mean 10 object accesses, 100 % update
///   probability;
/// * 80 % of the accesses go to a small partition of 10,000 objects, 20 % to a
///   large partition of 100,000 objects;
/// * blocking factor 10 for both partitions.
pub fn contention_workload() -> SyntheticWorkload {
    use crate::database::PartitionSpec;

    let database = Database::from_specs(vec![
        PartitionSpec::uniform("SMALL", 10_000, 10),
        PartitionSpec::uniform("LARGE", 100_000, 10),
    ]);
    let tx = TransactionTypeSpec::variable("UPDATE-TX", 10.0, 1.0);
    let matrix = ReferenceMatrix::from_rows(vec![vec![0.8, 0.2]]);
    SyntheticWorkload::new("lock-contention", database, vec![tx], matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::PartitionSpec;

    fn simple_workload() -> SyntheticWorkload {
        let database = Database::from_specs(vec![
            PartitionSpec::uniform("P1", 1000, 10),
            PartitionSpec::uniform("P2", 2000, 10),
        ]);
        let types = vec![
            TransactionTypeSpec::fixed("T1", 4, 0.0),
            TransactionTypeSpec::variable("T2", 8.0, 1.0).with_arrival_weight(3.0),
        ];
        let matrix = ReferenceMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.5, 0.5]]);
        SyntheticWorkload::new("test", database, types, matrix)
    }

    #[test]
    fn fixed_size_type_always_generates_same_length() {
        let mut w = simple_workload();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..50 {
            let t = w.generate_of_type(0, &mut rng);
            assert_eq!(t.len(), 4);
            assert!(!t.is_update());
            assert!(t.refs.iter().all(|r| r.partition == 0));
        }
    }

    #[test]
    fn variable_size_type_varies_and_is_update() {
        let mut w = simple_workload();
        let mut rng = SimRng::seed_from(2);
        let sizes: Vec<usize> = (0..200)
            .map(|_| w.generate_of_type(1, &mut rng).len())
            .collect();
        let distinct: std::collections::HashSet<_> = sizes.iter().collect();
        assert!(distinct.len() > 5, "sizes should vary, got {distinct:?}");
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((mean - 8.0).abs() < 2.0, "mean size {mean}");
        let t = w.generate_of_type(1, &mut rng);
        assert!(t.is_update());
    }

    #[test]
    fn arrival_mix_follows_weights() {
        let w = simple_workload();
        let mut rng = SimRng::seed_from(3);
        let n = 40_000;
        let t2 = (0..n).filter(|_| w.sample_tx_type(&mut rng) == 1).count() as f64 / n as f64;
        assert!((t2 - 0.75).abs() < 0.02, "type-2 share {t2}");
    }

    #[test]
    fn sequential_type_accesses_consecutive_objects() {
        let database = Database::from_specs(vec![PartitionSpec::uniform("S", 100, 10)]);
        let types = vec![TransactionTypeSpec::fixed("SEQ", 5, 0.0).sequential()];
        let matrix = ReferenceMatrix::from_rows(vec![vec![1.0]]);
        let mut w = SyntheticWorkload::new("seq", database, types, matrix);
        let mut rng = SimRng::seed_from(4);
        let t = w.generate_of_type(0, &mut rng);
        assert_eq!(t.len(), 5);
        let objs: Vec<u64> = t.refs.iter().map(|r| r.object.0).collect();
        for pair in objs.windows(2) {
            let next = (pair[0] + 1) % 100;
            assert_eq!(pair[1], next);
        }
    }

    #[test]
    fn contention_workload_shape() {
        let mut w = contention_workload();
        assert_eq!(w.num_tx_types(), 1);
        assert_eq!(w.database().total_pages(), 1000 + 10_000);
        let mut rng = SimRng::seed_from(5);
        let mut small = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let t = w.next_transaction(&mut rng).unwrap();
            assert!(t.is_update());
            for r in &t.refs {
                total += 1;
                if r.partition == 0 {
                    small += 1;
                }
            }
        }
        let share = small as f64 / total as f64;
        assert!((share - 0.8).abs() < 0.02, "small-partition share {share}");
    }

    #[test]
    fn generator_trait_produces_transactions() {
        let mut w = simple_workload();
        let mut rng = SimRng::seed_from(6);
        assert_eq!(w.name(), "test");
        assert_eq!(w.num_tx_types(), 2);
        assert!(w.next_transaction(&mut rng).is_some());
    }

    #[test]
    fn hot_spot_mode_skews_object_draws() {
        let mut w = simple_workload();
        w.apply_hot_spot(crate::hotspot::HotSpotParams::new(0.9, 0.1));
        let mut rng = SimRng::seed_from(7);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let t = w.generate_of_type(0, &mut rng);
            for r in &t.refs {
                // Type 0 only touches partition P1 (1000 objects, first
                // object id 0): the hottest 10% are object ids 0..100.
                total += 1;
                if r.object.0 < 100 {
                    hot += 1;
                }
            }
        }
        let share = hot as f64 / total as f64;
        assert!((share - 0.9).abs() < 0.03, "hot share {share}");
    }

    #[test]
    #[should_panic]
    fn mismatched_matrix_is_rejected() {
        let database = Database::from_specs(vec![PartitionSpec::uniform("P1", 10, 1)]);
        let types = vec![TransactionTypeSpec::fixed("T1", 1, 0.0)];
        let matrix = ReferenceMatrix::from_rows(vec![vec![1.0, 1.0]]);
        let _ = SyntheticWorkload::new("bad", database, types, matrix);
    }
}
