//! Database model: partitions, sub-partitions, blocking factors.
//!
//! "The database is a collection of partitions.  A partition may be used to
//! represent a file, a record type (relation), part of a record type, or an
//! index structure. ... A partition consists of a number of database pages
//! which in turn consist of a specific number of objects.  The number of
//! objects per page is determined by the blocking factor." (§3.1)
//!
//! Within a partition the reference distribution is controlled by a
//! generalized b/c rule: an arbitrary number of sub-partitions, each with a
//! relative size and an access probability, uniform access inside each
//! sub-partition.

use simkernel::dist::DiscreteDist;
use simkernel::SimRng;

use crate::types::{ObjectId, PageId};

/// Identifier of a database partition.
pub type PartitionId = usize;

/// One sub-partition of the generalized b/c rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Subpartition {
    /// Relative size (fraction of the partition's objects), need not be
    /// normalized across sub-partitions.
    pub relative_size: f64,
    /// Relative access probability, need not be normalized.
    pub access_probability: f64,
}

impl Subpartition {
    /// Convenience constructor.
    pub fn new(relative_size: f64, access_probability: f64) -> Self {
        Self {
            relative_size,
            access_probability,
        }
    }
}

/// Static description of a database partition.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    /// Diagnostic name ("ACCOUNT", "BRANCH/TELLER", ...).
    pub name: String,
    /// Number of objects in the partition.
    pub num_objects: u64,
    /// Objects per page.
    pub block_factor: u64,
    /// Sub-partitions of the generalized b/c rule.  An empty vector means
    /// uniform access over the whole partition.
    pub subpartitions: Vec<Subpartition>,
    /// Sequential partitions are accessed by appending at the end of file
    /// (e.g. the Debit-Credit HISTORY relation).
    pub sequential: bool,
}

impl PartitionSpec {
    /// Uniform-access partition.
    pub fn uniform(name: impl Into<String>, num_objects: u64, block_factor: u64) -> Self {
        Self {
            name: name.into(),
            num_objects,
            block_factor,
            subpartitions: Vec::new(),
            sequential: false,
        }
    }

    /// Partition following a simple b/c rule: `b_percent` of the accesses go
    /// to `c_percent` of the objects (e.g. 80/20).
    pub fn bc_rule(
        name: impl Into<String>,
        num_objects: u64,
        block_factor: u64,
        b_percent: f64,
        c_percent: f64,
    ) -> Self {
        assert!((0.0..=100.0).contains(&b_percent) && (0.0..=100.0).contains(&c_percent));
        Self {
            name: name.into(),
            num_objects,
            block_factor,
            subpartitions: vec![
                Subpartition::new(c_percent, b_percent),
                Subpartition::new(100.0 - c_percent, 100.0 - b_percent),
            ],
            sequential: false,
        }
    }

    /// Marks the partition as sequentially accessed (append at end of file).
    pub fn sequential(mut self) -> Self {
        self.sequential = true;
        self
    }

    /// Adds explicit sub-partitions (generalized b/c rule).
    pub fn with_subpartitions(mut self, subs: Vec<Subpartition>) -> Self {
        self.subpartitions = subs;
        self
    }

    /// Number of pages in the partition.
    pub fn num_pages(&self) -> u64 {
        debug_assert!(self.block_factor >= 1);
        self.num_objects.div_ceil(self.block_factor.max(1))
    }
}

/// A partition instantiated inside a [`Database`], with its global page range
/// and pre-computed sub-partition boundaries.
#[derive(Debug, Clone)]
pub struct Partition {
    spec: PartitionSpec,
    id: PartitionId,
    first_page: u64,
    first_object: u64,
    /// Object-index boundaries of the sub-partitions (exclusive upper bounds).
    sub_bounds: Vec<u64>,
    /// Discrete distribution over sub-partitions by access probability.
    sub_dist: Option<DiscreteDist>,
    /// Append cursor for sequential partitions (object index).
    append_cursor: u64,
}

impl Partition {
    fn new(spec: PartitionSpec, id: PartitionId, first_page: u64, first_object: u64) -> Self {
        let mut sub_bounds = Vec::with_capacity(spec.subpartitions.len());
        let mut sub_dist = None;
        if !spec.subpartitions.is_empty() {
            let total_size: f64 = spec.subpartitions.iter().map(|s| s.relative_size).sum();
            assert!(total_size > 0.0, "sub-partition sizes must not all be zero");
            let mut acc = 0.0;
            for s in &spec.subpartitions {
                acc += s.relative_size;
                let bound = ((acc / total_size) * spec.num_objects as f64).round() as u64;
                sub_bounds.push(bound.clamp(1, spec.num_objects));
            }
            // The last bound must cover the whole partition.
            if let Some(last) = sub_bounds.last_mut() {
                *last = spec.num_objects;
            }
            let weights: Vec<f64> = spec
                .subpartitions
                .iter()
                .map(|s| s.access_probability)
                .collect();
            sub_dist = DiscreteDist::new(&weights);
        }
        Self {
            spec,
            id,
            first_page,
            first_object,
            sub_bounds,
            sub_dist,
            append_cursor: 0,
        }
    }

    /// Partition identifier.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// Partition name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Number of objects.
    pub fn num_objects(&self) -> u64 {
        self.spec.num_objects
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u64 {
        self.spec.num_pages()
    }

    /// Blocking factor (objects per page).
    pub fn block_factor(&self) -> u64 {
        self.spec.block_factor
    }

    /// True for sequentially accessed (append-only) partitions.
    pub fn is_sequential(&self) -> bool {
        self.spec.sequential
    }

    /// First global page id owned by this partition.
    pub fn first_page(&self) -> PageId {
        PageId(self.first_page)
    }

    /// Global page id of local page index `local` (0-based).
    pub fn page(&self, local: u64) -> PageId {
        debug_assert!(local < self.num_pages());
        PageId(self.first_page + local)
    }

    /// Global object id of local object index `local` (0-based).
    pub fn object(&self, local: u64) -> ObjectId {
        debug_assert!(local < self.spec.num_objects);
        ObjectId(self.first_object + local)
    }

    /// Global page id that holds local object index `local`.
    pub fn page_of_object(&self, local: u64) -> PageId {
        PageId(self.first_page + local / self.spec.block_factor.max(1))
    }

    /// True if the global page id belongs to this partition.
    pub fn owns_page(&self, page: PageId) -> bool {
        page.0 >= self.first_page && page.0 < self.first_page + self.num_pages()
    }

    /// Samples a local object index according to the sub-partition model.
    pub fn sample_object(&self, rng: &mut SimRng) -> u64 {
        match (&self.sub_dist, self.sub_bounds.is_empty()) {
            (Some(dist), false) => {
                let sub = dist.sample(rng);
                let lo = if sub == 0 {
                    0
                } else {
                    self.sub_bounds[sub - 1]
                };
                let hi = self.sub_bounds[sub];
                if hi <= lo {
                    lo.min(self.spec.num_objects - 1)
                } else {
                    lo + rng.below(hi - lo)
                }
            }
            _ => rng.below(self.spec.num_objects),
        }
    }

    /// Next append position for sequential partitions; wraps around when the
    /// partition is exhausted (the paper notes the HISTORY size is immaterial).
    pub fn next_append(&mut self) -> u64 {
        let obj = self.append_cursor;
        self.append_cursor = (self.append_cursor + 1) % self.spec.num_objects.max(1);
        obj
    }

    /// Fraction of accesses expected to fall into the hottest `frac` of the
    /// partition (diagnostic used by tests).
    pub fn expected_access_share(&self, frac: f64) -> f64 {
        if self.sub_bounds.is_empty() {
            return frac;
        }
        let cut = (frac * self.spec.num_objects as f64) as u64;
        let dist = self.sub_dist.as_ref().expect("dist exists with bounds");
        let mut share = 0.0;
        let mut lo = 0u64;
        for (i, &hi) in self.sub_bounds.iter().enumerate() {
            let p = dist.probability(i);
            if cut >= hi {
                share += p;
            } else if cut > lo {
                share += p * (cut - lo) as f64 / (hi - lo) as f64;
            }
            lo = hi;
        }
        share
    }
}

/// The database: an ordered collection of partitions with globally unique page
/// and object numbering.
#[derive(Debug, Clone, Default)]
pub struct Database {
    partitions: Vec<Partition>,
    total_pages: u64,
    total_objects: u64,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from partition specifications.
    pub fn from_specs(specs: Vec<PartitionSpec>) -> Self {
        let mut db = Self::new();
        for spec in specs {
            db.add_partition(spec);
        }
        db
    }

    /// Adds a partition and returns its id.
    pub fn add_partition(&mut self, spec: PartitionSpec) -> PartitionId {
        assert!(spec.num_objects > 0, "partition must contain objects");
        assert!(spec.block_factor > 0, "blocking factor must be positive");
        let id = self.partitions.len();
        let partition = Partition::new(spec, id, self.total_pages, self.total_objects);
        self.total_pages += partition.num_pages();
        self.total_objects += partition.num_objects();
        self.partitions.push(partition);
        id
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of pages across all partitions.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Total number of objects across all partitions.
    pub fn total_objects(&self) -> u64 {
        self.total_objects
    }

    /// Accessor for a partition.
    pub fn partition(&self, id: PartitionId) -> &Partition {
        &self.partitions[id]
    }

    /// Mutable accessor (needed for sequential append cursors).
    pub fn partition_mut(&mut self, id: PartitionId) -> &mut Partition {
        &mut self.partitions[id]
    }

    /// Iterates over all partitions.
    pub fn partitions(&self) -> impl Iterator<Item = &Partition> {
        self.partitions.iter()
    }

    /// Finds the partition owning a global page id.
    pub fn partition_of_page(&self, page: PageId) -> Option<PartitionId> {
        self.partitions
            .iter()
            .find(|p| p.owns_page(page))
            .map(|p| p.id())
    }

    /// Looks up a partition id by name.
    pub fn partition_by_name(&self, name: &str) -> Option<PartitionId> {
        self.partitions
            .iter()
            .find(|p| p.name() == name)
            .map(|p| p.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_count_uses_blocking_factor() {
        let spec = PartitionSpec::uniform("ACCOUNT", 50_000_000, 10);
        assert_eq!(spec.num_pages(), 5_000_000);
        let spec = PartitionSpec::uniform("X", 101, 10);
        assert_eq!(spec.num_pages(), 11);
    }

    #[test]
    fn global_numbering_is_contiguous_and_disjoint() {
        let db = Database::from_specs(vec![
            PartitionSpec::uniform("A", 100, 10),
            PartitionSpec::uniform("B", 55, 10),
            PartitionSpec::uniform("C", 10, 1),
        ]);
        assert_eq!(db.num_partitions(), 3);
        assert_eq!(db.total_pages(), 10 + 6 + 10);
        assert_eq!(db.partition(0).first_page(), PageId(0));
        assert_eq!(db.partition(1).first_page(), PageId(10));
        assert_eq!(db.partition(2).first_page(), PageId(16));
        assert_eq!(db.partition_of_page(PageId(12)), Some(1));
        assert_eq!(db.partition_of_page(PageId(25)), Some(2));
        assert_eq!(db.partition_of_page(PageId(26)), None);
    }

    #[test]
    fn page_of_object_respects_block_factor() {
        let db = Database::from_specs(vec![PartitionSpec::uniform("A", 100, 10)]);
        let p = db.partition(0);
        assert_eq!(p.page_of_object(0), PageId(0));
        assert_eq!(p.page_of_object(9), PageId(0));
        assert_eq!(p.page_of_object(10), PageId(1));
        assert_eq!(p.page_of_object(99), PageId(9));
    }

    #[test]
    fn bc_rule_80_20_is_skewed() {
        let db = Database::from_specs(vec![PartitionSpec::bc_rule("H", 10_000, 10, 80.0, 20.0)]);
        let p = db.partition(0);
        // Analytical expectation: 80% of accesses to the first 20% of objects.
        assert!((p.expected_access_share(0.2) - 0.8).abs() < 1e-9);
        // Empirical check.
        let mut rng = SimRng::seed_from(123);
        let n = 100_000;
        let hot = (0..n).filter(|_| p.sample_object(&mut rng) < 2000).count() as f64 / n as f64;
        assert!((hot - 0.8).abs() < 0.01, "hot share {hot}");
    }

    #[test]
    fn two_level_90_10_rule_from_paper() {
        // "a two-level 90/10-rule ... three subpartitions with relative sizes
        // of 81, 9, and 10 % and access probabilities of 1, 9, and 90 %".
        // Note the paper lists sizes large-to-small with probabilities
        // small-to-large; the hottest 1%-of-objects sub-partition is the last.
        let spec = PartitionSpec::uniform("X", 100_000, 10).with_subpartitions(vec![
            Subpartition::new(81.0, 1.0),
            Subpartition::new(9.0, 9.0),
            Subpartition::new(10.0, 90.0),
        ]);
        let db = Database::from_specs(vec![spec]);
        let p = db.partition(0);
        let mut rng = SimRng::seed_from(5);
        let n = 200_000;
        let mut last_10pct = 0usize;
        for _ in 0..n {
            let o = p.sample_object(&mut rng);
            if o >= 90_000 {
                last_10pct += 1;
            }
        }
        let share = last_10pct as f64 / n as f64;
        assert!((share - 0.9).abs() < 0.01, "share {share}");
    }

    #[test]
    fn uniform_partition_samples_whole_range() {
        let db = Database::from_specs(vec![PartitionSpec::uniform("U", 1000, 10)]);
        let p = db.partition(0);
        let mut rng = SimRng::seed_from(9);
        let mut seen_high = false;
        let mut seen_low = false;
        for _ in 0..10_000 {
            let o = p.sample_object(&mut rng);
            assert!(o < 1000);
            if o < 100 {
                seen_low = true;
            }
            if o >= 900 {
                seen_high = true;
            }
        }
        assert!(seen_low && seen_high);
    }

    #[test]
    fn sequential_append_wraps() {
        let mut db = Database::from_specs(vec![PartitionSpec::uniform("H", 4, 2).sequential()]);
        let p = db.partition_mut(0);
        assert!(p.is_sequential());
        let seq: Vec<u64> = (0..6).map(|_| p.next_append()).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn partition_lookup_by_name() {
        let db = Database::from_specs(vec![
            PartitionSpec::uniform("A", 10, 1),
            PartitionSpec::uniform("B", 10, 1),
        ]);
        assert_eq!(db.partition_by_name("B"), Some(1));
        assert_eq!(db.partition_by_name("missing"), None);
    }

    #[test]
    #[should_panic]
    fn empty_partition_rejected() {
        let mut db = Database::new();
        db.add_partition(PartitionSpec::uniform("bad", 0, 1));
    }
}
