//! # dbmodel — TPSIM database and load model
//!
//! This crate implements section 3.1 of the paper: the database model
//! (partitions, sub-partitions following the generalized b/c rule, blocking
//! factors), the synthetic workload model (transaction types, relative
//! reference matrix, sequential/non-sequential and fixed/variable-size
//! transactions), the Debit-Credit workload generator of the TP benchmark
//! (Anon85), and the trace-driven workload generator (with a synthetic trace
//! generator standing in for the unavailable real-life trace).
//!
//! Workload generators produce [`TransactionTemplate`]s: the complete, ordered
//! list of object references (partition, page, object, read/write) that a
//! transaction will perform.  The transaction system in the `tpsim` crate
//! executes those templates against the simulated hardware.

pub mod database;
pub mod debit_credit;
pub mod hotspot;
pub mod reference;
pub mod sharding;
pub mod synthetic;
pub mod trace;
pub mod types;

pub use database::{Database, Partition, PartitionId, Subpartition};
pub use debit_credit::{DebitCreditConfig, DebitCreditGenerator};
pub use hotspot::{HotSpotParams, HotSpotSampler};
pub use reference::ReferenceMatrix;
pub use sharding::{PartitionMap, PartitionScheme};
pub use synthetic::{SyntheticWorkload, TransactionTypeSpec};
pub use trace::{SyntheticTraceSpec, Trace, TraceGenerator, TraceTransaction};
pub use types::{
    AccessMode, ObjectId, ObjectRef, PageId, TransactionTemplate, TxTypeId, WorkloadGenerator,
};
