//! Debit-Credit workload generator.
//!
//! Implements the special SOURCE module of §3.1 for the Debit-Credit (TP1 /
//! TPC-A style) benchmark [An85, Gr91]:
//!
//! * four partitions — ACCOUNT, BRANCH, TELLER and HISTORY;
//! * a single transaction type with four object accesses, all updates;
//! * the BRANCH record is selected at random, the TELLER record at random from
//!   the tellers of that branch, and K % of the ACCOUNT accesses (K = 85) go
//!   to an account of the selected branch;
//! * HISTORY is sequentially appended;
//! * optional clustering of BRANCH and TELLER records into the same page,
//!   which reduces the page accesses per transaction to three;
//! * the small TELLER and BRANCH records are accessed last to keep their lock
//!   holding times short (ordering: ACCOUNT, HISTORY, TELLER, BRANCH).

use simkernel::SimRng;

use crate::database::{Database, PartitionId, PartitionSpec};
use crate::hotspot::{HotSpotParams, HotSpotSampler};
use crate::types::{AccessMode, ObjectRef, TransactionTemplate, WorkloadGenerator};

/// Parameters of the Debit-Credit workload (defaults follow Table 4.1).
#[derive(Debug, Clone)]
pub struct DebitCreditConfig {
    /// Number of BRANCH records (500 in the paper's default setting).
    pub num_branches: u64,
    /// Number of TELLER records (10 per branch → 5,000).
    pub num_tellers: u64,
    /// Number of ACCOUNT records (50,000,000).
    pub num_accounts: u64,
    /// Blocking factor of the ACCOUNT partition (10 → 5,000,000 pages).
    pub account_block_factor: u64,
    /// Blocking factor of the TELLER partition when not clustered (10).
    pub teller_block_factor: u64,
    /// Blocking factor of the HISTORY partition (20).
    pub history_block_factor: u64,
    /// Number of HISTORY objects (size immaterial; the file wraps around).
    pub history_objects: u64,
    /// Percentage of ACCOUNT accesses that stay within the selected branch.
    pub k_same_branch_percent: f64,
    /// Cluster BRANCH and TELLER records into a common partition/page.
    pub cluster_branch_teller: bool,
}

impl Default for DebitCreditConfig {
    fn default() -> Self {
        Self {
            num_branches: 500,
            num_tellers: 5_000,
            num_accounts: 50_000_000,
            account_block_factor: 10,
            teller_block_factor: 10,
            history_block_factor: 20,
            history_objects: 1_000_000,
            k_same_branch_percent: 85.0,
            cluster_branch_teller: true,
        }
    }
}

impl DebitCreditConfig {
    /// A scaled-down configuration useful in tests and quick examples: the
    /// large partitions (ACCOUNT, HISTORY) shrink by `factor` while the
    /// BRANCH/TELLER partition keeps at least 200 branches.  Keeping many
    /// branches preserves the paper's property that Debit-Credit has
    /// negligible lock contention (with very few branches every transaction
    /// would serialize on the same BRANCH page).
    pub fn scaled_down(factor: u64) -> Self {
        let d = Self::default();
        let factor = factor.max(1);
        let num_branches = (d.num_branches / factor).clamp(200, d.num_branches);
        Self {
            num_branches,
            num_tellers: num_branches * 10,
            num_accounts: (d.num_accounts / factor).max(1000),
            history_objects: (d.history_objects / factor).max(1000),
            ..d
        }
    }

    /// Tellers per branch.
    pub fn tellers_per_branch(&self) -> u64 {
        (self.num_tellers / self.num_branches).max(1)
    }

    /// Accounts per branch.
    pub fn accounts_per_branch(&self) -> u64 {
        (self.num_accounts / self.num_branches).max(1)
    }
}

/// Identifiers of the Debit-Credit partitions inside the generated database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DebitCreditPartitions {
    /// BRANCH partition (also holds the TELLER records when clustered).
    pub branch: PartitionId,
    /// TELLER partition (equal to `branch` when clustered).
    pub teller: PartitionId,
    /// ACCOUNT partition.
    pub account: PartitionId,
    /// HISTORY partition.
    pub history: PartitionId,
}

/// The Debit-Credit workload generator.
#[derive(Debug, Clone)]
pub struct DebitCreditGenerator {
    config: DebitCreditConfig,
    database: Database,
    partitions: DebitCreditPartitions,
    /// When set, the ACCOUNT record is drawn from a Zipfian hot-spot curve
    /// over all accounts instead of the branch-local K % rule.
    account_hot_spot: Option<HotSpotSampler>,
}

impl DebitCreditGenerator {
    /// Builds the database for `config` and the generator over it.
    pub fn new(config: DebitCreditConfig) -> Self {
        let mut database = Database::new();
        let (branch, teller) = if config.cluster_branch_teller {
            // Clustered: one partition whose pages each hold a BRANCH record
            // and its TELLER records.  With 500 branches this yields the 500
            // BRANCH/TELLER pages of §4.1.  Objects are laid out per branch:
            // object (branch * (1 + tellers_per_branch)) is the branch record,
            // the following tellers_per_branch objects are its tellers.
            let per_branch = 1 + config.tellers_per_branch();
            let id = database.add_partition(PartitionSpec::uniform(
                "BRANCH/TELLER",
                config.num_branches * per_branch,
                per_branch,
            ));
            (id, id)
        } else {
            let b =
                database.add_partition(PartitionSpec::uniform("BRANCH", config.num_branches, 1));
            let t = database.add_partition(PartitionSpec::uniform(
                "TELLER",
                config.num_tellers,
                config.teller_block_factor,
            ));
            (b, t)
        };
        let account = database.add_partition(PartitionSpec::uniform(
            "ACCOUNT",
            config.num_accounts,
            config.account_block_factor,
        ));
        let history = database.add_partition(
            PartitionSpec::uniform(
                "HISTORY",
                config.history_objects,
                config.history_block_factor,
            )
            .sequential(),
        );
        Self {
            config,
            database,
            partitions: DebitCreditPartitions {
                branch,
                teller,
                account,
                history,
            },
            account_hot_spot: None,
        }
    }

    /// The generated database.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The partition ids of the four record types.
    pub fn partitions(&self) -> DebitCreditPartitions {
        self.partitions
    }

    /// The configuration in use.
    pub fn config(&self) -> &DebitCreditConfig {
        &self.config
    }

    fn branch_ref(&self, branch: u64) -> ObjectRef {
        let p = self.database.partition(self.partitions.branch);
        let local = if self.config.cluster_branch_teller {
            branch * (1 + self.config.tellers_per_branch())
        } else {
            branch
        };
        ObjectRef {
            partition: self.partitions.branch,
            page: p.page_of_object(local),
            object: p.object(local),
            mode: AccessMode::Write,
        }
    }

    fn teller_ref(&self, branch: u64, teller_in_branch: u64) -> ObjectRef {
        let p = self.database.partition(self.partitions.teller);
        let local = if self.config.cluster_branch_teller {
            branch * (1 + self.config.tellers_per_branch()) + 1 + teller_in_branch
        } else {
            branch * self.config.tellers_per_branch() + teller_in_branch
        };
        ObjectRef {
            partition: self.partitions.teller,
            page: p.page_of_object(local),
            object: p.object(local),
            mode: AccessMode::Write,
        }
    }

    fn account_ref(&self, account: u64) -> ObjectRef {
        let p = self.database.partition(self.partitions.account);
        ObjectRef {
            partition: self.partitions.account,
            page: p.page_of_object(account),
            object: p.object(account),
            mode: AccessMode::Write,
        }
    }
}

impl WorkloadGenerator for DebitCreditGenerator {
    fn next_transaction(&mut self, rng: &mut SimRng) -> Option<TransactionTemplate> {
        let cfg = &self.config;
        let branch = rng.below(cfg.num_branches);
        let teller_in_branch = rng.below(cfg.tellers_per_branch());

        // ACCOUNT selection.  Hot-spot mode replaces the paper's branch-local
        // K % rule with a Zipfian popularity curve over all accounts — the
        // access pattern of millions of users hitting a handful of hot rows.
        let accounts_per_branch = cfg.accounts_per_branch();
        let account = if let Some(hot) = &self.account_hot_spot {
            hot.sample(rng)
        } else if rng.chance(cfg.k_same_branch_percent / 100.0) {
            branch * accounts_per_branch + rng.below(accounts_per_branch)
        } else {
            // An account of another branch.
            let mut a = rng.below(cfg.num_accounts);
            if cfg.num_branches > 1 {
                while a / accounts_per_branch == branch {
                    a = rng.below(cfg.num_accounts);
                }
            }
            a
        };

        // HISTORY append.
        let history_local = self
            .database
            .partition_mut(self.partitions.history)
            .next_append();
        let hp = self.database.partition(self.partitions.history);
        let history_ref = ObjectRef {
            partition: self.partitions.history,
            page: hp.page_of_object(history_local),
            object: hp.object(history_local),
            mode: AccessMode::Write,
        };

        // Reference order: ACCOUNT first, BRANCH and TELLER last (shortest
        // lock holding times for the high-contention records), HISTORY in
        // between; all four record types in the same order for every
        // transaction so no deadlocks can occur among Debit-Credit
        // transactions (§3.1).
        let refs = vec![
            self.account_ref(account),
            history_ref,
            self.teller_ref(branch, teller_in_branch),
            self.branch_ref(branch),
        ];
        Some(TransactionTemplate { tx_type: 0, refs })
    }

    fn num_tx_types(&self) -> usize {
        1
    }

    fn name(&self) -> &str {
        "debit-credit"
    }

    fn total_pages(&self) -> u64 {
        self.database.total_pages()
    }

    fn apply_hot_spot(&mut self, params: HotSpotParams) {
        self.account_hot_spot = Some(HotSpotSampler::new(self.config.num_accounts, params));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_database_matches_paper_sizes() {
        let g = DebitCreditGenerator::new(DebitCreditConfig::default());
        let db = g.database();
        let parts = g.partitions();
        // Clustered BRANCH/TELLER: 500 pages (§4.1).
        assert_eq!(db.partition(parts.branch).num_pages(), 500);
        // ACCOUNT: 5 million pages.
        assert_eq!(db.partition(parts.account).num_pages(), 5_000_000);
        assert!(db.partition(parts.history).is_sequential());
    }

    #[test]
    fn every_transaction_has_four_updates_on_three_pages() {
        let mut g = DebitCreditGenerator::new(DebitCreditConfig::scaled_down(100));
        let mut rng = SimRng::seed_from(1);
        for _ in 0..200 {
            let t = g.next_transaction(&mut rng).unwrap();
            assert_eq!(t.len(), 4);
            assert!(t.refs.iter().all(|r| r.mode == AccessMode::Write));
            // Clustered BRANCH/TELLER share a page; HISTORY and ACCOUNT are
            // separate, so at most 3 distinct pages (could be 3 exactly).
            assert_eq!(t.distinct_pages(), 3);
        }
    }

    #[test]
    fn reference_order_is_account_history_teller_branch() {
        let mut g = DebitCreditGenerator::new(DebitCreditConfig::scaled_down(100));
        let parts = g.partitions();
        let mut rng = SimRng::seed_from(2);
        let t = g.next_transaction(&mut rng).unwrap();
        assert_eq!(t.refs[0].partition, parts.account);
        assert_eq!(t.refs[1].partition, parts.history);
        assert_eq!(t.refs[2].partition, parts.teller);
        assert_eq!(t.refs[3].partition, parts.branch);
    }

    #[test]
    fn teller_belongs_to_selected_branch_when_clustered() {
        let cfg = DebitCreditConfig::scaled_down(100);
        let mut g = DebitCreditGenerator::new(cfg);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let t = g.next_transaction(&mut rng).unwrap();
            // With clustering, teller and branch references land on the same page.
            assert_eq!(t.refs[2].page, t.refs[3].page);
        }
    }

    #[test]
    fn same_branch_account_fraction_close_to_k() {
        let cfg = DebitCreditConfig {
            num_branches: 100,
            num_tellers: 1_000,
            num_accounts: 1_000_000,
            ..DebitCreditConfig::default()
        };
        let accounts_per_branch = cfg.accounts_per_branch();
        let per_branch_objs = 1 + cfg.tellers_per_branch();
        let mut g = DebitCreditGenerator::new(cfg);
        let mut rng = SimRng::seed_from(4);
        let n = 20_000;
        let mut same = 0;
        for _ in 0..n {
            let t = g.next_transaction(&mut rng).unwrap();
            // Recover branch and account indices from object ids.
            let branch_obj =
                t.refs[3].object.0 - g.database().partition(g.partitions().branch).object(0).0;
            let branch = branch_obj / per_branch_objs;
            let account_obj =
                t.refs[0].object.0 - g.database().partition(g.partitions().account).object(0).0;
            if account_obj / accounts_per_branch == branch {
                same += 1;
            }
        }
        let frac = same as f64 / n as f64;
        assert!((frac - 0.85).abs() < 0.02, "same-branch fraction {frac}");
    }

    #[test]
    fn history_is_appended_sequentially() {
        let mut g = DebitCreditGenerator::new(DebitCreditConfig::scaled_down(100));
        let mut rng = SimRng::seed_from(5);
        let h0 = g.next_transaction(&mut rng).unwrap().refs[1].object.0;
        let h1 = g.next_transaction(&mut rng).unwrap().refs[1].object.0;
        let h2 = g.next_transaction(&mut rng).unwrap().refs[1].object.0;
        assert_eq!(h1, h0 + 1);
        assert_eq!(h2, h1 + 1);
    }

    #[test]
    fn unclustered_configuration_uses_separate_partitions() {
        let cfg = DebitCreditConfig {
            cluster_branch_teller: false,
            ..DebitCreditConfig::scaled_down(100)
        };
        let g = DebitCreditGenerator::new(cfg);
        let parts = g.partitions();
        assert_ne!(parts.branch, parts.teller);
        assert_eq!(g.database().num_partitions(), 4);
    }

    #[test]
    fn generator_metadata() {
        let g = DebitCreditGenerator::new(DebitCreditConfig::scaled_down(1000));
        assert_eq!(g.num_tx_types(), 1);
        assert_eq!(g.name(), "debit-credit");
    }

    #[test]
    fn hot_spot_mode_concentrates_account_accesses() {
        let cfg = DebitCreditConfig::scaled_down(1000);
        let num_accounts = cfg.num_accounts;
        let mut g = DebitCreditGenerator::new(cfg);
        let account_first = g.database().partition(g.partitions().account).object(0).0;
        g.apply_hot_spot(crate::hotspot::HotSpotParams::new(0.9, 0.1));
        let mut rng = SimRng::seed_from(6);
        let n = 5_000;
        let hot_cut = num_accounts / 10;
        let mut hot = 0usize;
        for _ in 0..n {
            let t = g.next_transaction(&mut rng).unwrap();
            let account = t.refs[0].object.0 - account_first;
            assert!(account < num_accounts);
            if account < hot_cut {
                hot += 1;
            }
        }
        let share = hot as f64 / n as f64;
        // 90% of accesses fall in the hottest 10% of accounts.
        assert!((share - 0.9).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn hot_spot_mode_keeps_transaction_shape() {
        let mut g = DebitCreditGenerator::new(DebitCreditConfig::scaled_down(1000));
        g.apply_hot_spot(crate::hotspot::HotSpotParams::new(0.5, 0.2));
        let parts = g.partitions();
        let mut rng = SimRng::seed_from(7);
        for _ in 0..100 {
            let t = g.next_transaction(&mut rng).unwrap();
            assert_eq!(t.len(), 4);
            assert_eq!(t.refs[0].partition, parts.account);
            assert_eq!(t.refs[1].partition, parts.history);
            assert_eq!(t.refs[2].partition, parts.teller);
            assert_eq!(t.refs[3].partition, parts.branch);
        }
    }
}
