//! Trace-driven workload generation.
//!
//! TPSIM can replay database traces: "For every transaction, the transaction
//! type and all database (page) references with their access mode (read or
//! write) are recorded in the trace.  Our workload generator simply extracts
//! the transactions from the trace and submits them to the processing node
//! according to a specified arrival rate." (§3.1)
//!
//! The real-life trace used in §4.6 (from a large IBM installation) is not
//! available.  As a substitution we provide a **synthetic trace generator**
//! that reproduces every statistic the paper reports about the trace:
//!
//! * more than 17,500 transactions of twelve transaction types,
//! * about one million page references,
//! * roughly 66,000 distinct pages in 13 files touched (out of a ≈4 GB database),
//! * about 20 % of the transactions perform updates but only ≈1.6 % of all
//!   references are writes,
//! * significant variation in transaction sizes, including one ad-hoc query
//!   with more than 11,000 references,
//! * strong locality of reference (a main-memory buffer of 2,000 pages yields
//!   a hit ratio above 80 %).
//!
//! Traces can also be serialized to / parsed from a simple line-oriented text
//! format so externally produced traces can be replayed.

use std::collections::HashSet;
use std::fmt::Write as _;

use simkernel::dist::Zipf;
use simkernel::SimRng;

use crate::database::{Database, PartitionSpec};
#[cfg(test)]
use crate::types::PageId;
use crate::types::{
    AccessMode, ObjectId, ObjectRef, TransactionTemplate, TxTypeId, WorkloadGenerator,
};

/// One transaction recorded in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTransaction {
    /// Transaction type recorded in the trace.
    pub tx_type: TxTypeId,
    /// Page references: (file index, page index within file, access mode).
    pub refs: Vec<(usize, u64, AccessMode)>,
}

impl TraceTransaction {
    /// True if the transaction contains at least one write reference.
    pub fn is_update(&self) -> bool {
        self.refs.iter().any(|(_, _, m)| m.is_write())
    }
}

/// A database trace: the referenced files and the recorded transactions.
#[derive(Debug, Clone)]
pub struct Trace {
    /// File names and sizes in pages, in file-index order.
    pub files: Vec<(String, u64)>,
    /// The recorded transactions in execution order.
    pub transactions: Vec<TraceTransaction>,
}

impl Trace {
    /// Total number of page references in the trace.
    pub fn total_references(&self) -> usize {
        self.transactions.iter().map(|t| t.refs.len()).sum()
    }

    /// Number of write references in the trace.
    pub fn write_references(&self) -> usize {
        self.transactions
            .iter()
            .flat_map(|t| t.refs.iter())
            .filter(|(_, _, m)| m.is_write())
            .count()
    }

    /// Number of update transactions.
    pub fn update_transactions(&self) -> usize {
        self.transactions.iter().filter(|t| t.is_update()).count()
    }

    /// Number of distinct (file, page) pairs referenced.
    pub fn distinct_pages(&self) -> usize {
        let mut set = HashSet::new();
        for t in &self.transactions {
            for (f, p, _) in &t.refs {
                set.insert((*f, *p));
            }
        }
        set.len()
    }

    /// Number of distinct transaction types appearing in the trace.
    pub fn distinct_tx_types(&self) -> usize {
        let mut set = HashSet::new();
        for t in &self.transactions {
            set.insert(t.tx_type);
        }
        set.len()
    }

    /// Size of the largest transaction (in references).
    pub fn max_transaction_size(&self) -> usize {
        self.transactions
            .iter()
            .map(|t| t.refs.len())
            .max()
            .unwrap_or(0)
    }

    /// Average number of references per transaction.
    pub fn avg_transaction_size(&self) -> f64 {
        if self.transactions.is_empty() {
            0.0
        } else {
            self.total_references() as f64 / self.transactions.len() as f64
        }
    }

    /// Builds the [`Database`] corresponding to the traced files (one
    /// partition per file, blocking factor 1, i.e. page-level objects).
    pub fn build_database(&self) -> Database {
        let mut db = Database::new();
        for (name, pages) in &self.files {
            db.add_partition(PartitionSpec::uniform(name.clone(), (*pages).max(1), 1));
        }
        db
    }

    /// Serializes the trace to the text format.
    ///
    /// ```text
    /// files 2
    /// file CUST 1000
    /// file ORDERS 5000
    /// tx 3
    /// r 0 17
    /// w 1 4711
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "files {}", self.files.len());
        for (name, pages) in &self.files {
            let _ = writeln!(out, "file {name} {pages}");
        }
        for t in &self.transactions {
            let _ = writeln!(out, "tx {}", t.tx_type);
            for (f, p, m) in &t.refs {
                let tag = if m.is_write() { 'w' } else { 'r' };
                let _ = writeln!(out, "{tag} {f} {p}");
            }
        }
        out
    }

    /// Parses a trace from the text format produced by [`Trace::to_text`].
    pub fn from_text(text: &str) -> Result<Self, TraceParseError> {
        let mut files = Vec::new();
        let mut transactions: Vec<TraceTransaction> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let head = parts.next().unwrap_or("");
            let err = |msg: &str| TraceParseError {
                line: lineno + 1,
                message: msg.to_string(),
            };
            match head {
                "files" => { /* declarative count; ignored */ }
                "file" => {
                    let name = parts.next().ok_or_else(|| err("missing file name"))?;
                    let pages: u64 = parts
                        .next()
                        .ok_or_else(|| err("missing page count"))?
                        .parse()
                        .map_err(|_| err("invalid page count"))?;
                    files.push((name.to_string(), pages));
                }
                "tx" => {
                    let tx_type: usize = parts
                        .next()
                        .ok_or_else(|| err("missing tx type"))?
                        .parse()
                        .map_err(|_| err("invalid tx type"))?;
                    transactions.push(TraceTransaction {
                        tx_type,
                        refs: Vec::new(),
                    });
                }
                "r" | "w" => {
                    let file: usize = parts
                        .next()
                        .ok_or_else(|| err("missing file index"))?
                        .parse()
                        .map_err(|_| err("invalid file index"))?;
                    let page: u64 = parts
                        .next()
                        .ok_or_else(|| err("missing page index"))?
                        .parse()
                        .map_err(|_| err("invalid page index"))?;
                    if file >= files.len() {
                        return Err(err("reference to undeclared file"));
                    }
                    let mode = if head == "w" {
                        AccessMode::Write
                    } else {
                        AccessMode::Read
                    };
                    transactions
                        .last_mut()
                        .ok_or_else(|| err("reference before any tx line"))?
                        .refs
                        .push((file, page, mode));
                }
                _ => return Err(err("unknown record")),
            }
        }
        Ok(Self {
            files,
            transactions,
        })
    }
}

/// Error produced when parsing a textual trace fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

/// Parameters of the synthetic trace generator.
///
/// Defaults reproduce the statistics of the real-life trace of §4.6 at full
/// scale; [`SyntheticTraceSpec::scaled_down`] gives smaller traces for tests.
#[derive(Debug, Clone)]
pub struct SyntheticTraceSpec {
    /// Number of transactions to generate (paper: >17,500).
    pub num_transactions: usize,
    /// Number of files (paper: 13).
    pub num_files: usize,
    /// Total number of *referenced* pages across all files (paper: ≈66,000).
    pub referenced_pages: u64,
    /// Total number of pages across all files (paper: ≈4 GB ≈ 1M 4-KB pages).
    pub total_pages: u64,
    /// Number of transaction types (paper: 12).
    pub num_tx_types: usize,
    /// Mean references per normal transaction (paper average ≈ 57).
    pub mean_tx_size: f64,
    /// Size of the single large ad-hoc query (paper: >11,000 references).
    pub adhoc_query_size: usize,
    /// Fraction of transactions that perform updates (paper: ≈20 %).
    pub update_tx_fraction: f64,
    /// Fraction of references that are writes (paper: ≈1.6 %).
    pub write_ref_fraction: f64,
    /// Zipf skew of page popularity inside each file's referenced set.
    pub locality_theta: f64,
}

impl Default for SyntheticTraceSpec {
    fn default() -> Self {
        Self {
            num_transactions: 17_500,
            num_files: 13,
            referenced_pages: 66_000,
            total_pages: 1_000_000,
            num_tx_types: 12,
            mean_tx_size: 56.0,
            adhoc_query_size: 11_200,
            update_tx_fraction: 0.20,
            write_ref_fraction: 0.016,
            locality_theta: 0.95,
        }
    }
}

impl SyntheticTraceSpec {
    /// A smaller trace with the same qualitative shape, for fast tests.
    pub fn scaled_down(factor: usize) -> Self {
        let d = Self::default();
        let factor = factor.max(1);
        Self {
            num_transactions: (d.num_transactions / factor).max(200),
            referenced_pages: (d.referenced_pages / factor as u64).max(1_000),
            total_pages: (d.total_pages / factor as u64).max(10_000),
            adhoc_query_size: (d.adhoc_query_size / factor).max(500),
            ..d
        }
    }

    /// Generates the trace deterministically from `rng`.
    pub fn generate(&self, rng: &mut SimRng) -> Trace {
        assert!(self.num_files >= 1 && self.num_tx_types >= 1);
        assert!(self.referenced_pages >= self.num_files as u64);

        // Split referenced pages and total pages over the files with mildly
        // uneven sizes (larger index → larger file), mimicking a mix of small
        // administrative files and large data files.
        let mut file_weights = Vec::with_capacity(self.num_files);
        for i in 0..self.num_files {
            file_weights.push(1.0 + i as f64);
        }
        let weight_sum: f64 = file_weights.iter().sum();
        let mut files = Vec::with_capacity(self.num_files);
        let mut referenced_per_file = Vec::with_capacity(self.num_files);
        for (i, w) in file_weights.iter().enumerate() {
            let total = ((self.total_pages as f64) * w / weight_sum).ceil() as u64;
            let referenced =
                (((self.referenced_pages as f64) * w / weight_sum).ceil() as u64).max(1);
            files.push((format!("FILE{i:02}"), total.max(referenced)));
            referenced_per_file.push(referenced.min(total.max(referenced)));
        }

        // Per-file popularity distribution over its referenced subset and a
        // random offset of that subset within the file.
        let mut zipfs = Vec::with_capacity(self.num_files);
        let mut subset_offsets = Vec::with_capacity(self.num_files);
        for (i, (_, total)) in files.iter().enumerate() {
            let referenced = referenced_per_file[i];
            zipfs.push(Zipf::new(referenced, self.locality_theta));
            let max_offset = total.saturating_sub(referenced);
            let offset = if max_offset == 0 {
                0
            } else {
                rng.below(max_offset + 1)
            };
            subset_offsets.push(offset);
        }

        // Transaction-type profiles: which files a type touches and its mean
        // size.  Type (num_tx_types - 1) is the ad-hoc query type.
        let mut type_files: Vec<Vec<usize>> = Vec::with_capacity(self.num_tx_types);
        let mut type_mean_size: Vec<f64> = Vec::with_capacity(self.num_tx_types);
        for t in 0..self.num_tx_types {
            let num = 1 + (t % 4);
            let mut fs = Vec::with_capacity(num);
            for k in 0..num {
                fs.push((t * 3 + k * 5) % self.num_files);
            }
            fs.sort_unstable();
            fs.dedup();
            type_files.push(fs);
            // Sizes vary significantly across types (x0.25 .. x2.5 of the mean).
            let scale = 0.25 + 2.25 * (t as f64 / (self.num_tx_types.max(2) - 1) as f64);
            type_mean_size.push((self.mean_tx_size * scale).max(2.0));
        }

        let adhoc_type = self.num_tx_types - 1;
        let mut transactions = Vec::with_capacity(self.num_transactions);
        for n in 0..self.num_transactions {
            let tx_type = if n == self.num_transactions / 2 {
                adhoc_type
            } else {
                rng.below(self.num_tx_types.max(2) as u64 - 1) as usize
            };
            let size = if n == self.num_transactions / 2 {
                self.adhoc_query_size
            } else {
                rng.exponential(type_mean_size[tx_type]).round().max(1.0) as usize
            };
            let is_update_tx =
                n != self.num_transactions / 2 && rng.chance(self.update_tx_fraction);
            // Per-reference write probability, scaled so the global write
            // fraction comes out near `write_ref_fraction` even though only
            // `update_tx_fraction` of the transactions may write at all.
            let write_prob = if is_update_tx {
                (self.write_ref_fraction / self.update_tx_fraction).min(1.0)
            } else {
                0.0
            };
            let fs = &type_files[tx_type];
            let mut refs = Vec::with_capacity(size);
            for _ in 0..size {
                let file = fs[rng.below(fs.len() as u64) as usize];
                let rank = zipfs[file].sample(rng);
                // Spread the popularity ranks over the referenced subset so the
                // hot pages of different files do not collide on low indices.
                let page = subset_offsets[file] + rank;
                let mode = if rng.chance(write_prob) {
                    AccessMode::Write
                } else {
                    AccessMode::Read
                };
                refs.push((file, page, mode));
            }
            // Guarantee the "update transaction" property when selected.
            if is_update_tx && !refs.iter().any(|(_, _, m)| m.is_write()) {
                let last = refs.len() - 1;
                refs[last].2 = AccessMode::Write;
            }
            transactions.push(TraceTransaction { tx_type, refs });
        }
        Trace {
            files,
            transactions,
        }
    }
}

/// Replays a [`Trace`] as a [`WorkloadGenerator`].
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    trace: Trace,
    database: Database,
    next: usize,
    cycle: bool,
}

impl TraceGenerator {
    /// Creates a replay generator.  With `cycle = true` the trace is replayed
    /// from the beginning once exhausted (useful for fixed-duration
    /// simulations); otherwise the generator terminates after the last
    /// recorded transaction.
    pub fn new(trace: Trace, cycle: bool) -> Self {
        let database = trace.build_database();
        Self {
            trace,
            database,
            next: 0,
            cycle,
        }
    }

    /// The database corresponding to the traced files.
    pub fn database(&self) -> &Database {
        &self.database
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn template_for(&self, idx: usize) -> TransactionTemplate {
        let t = &self.trace.transactions[idx];
        let refs = t
            .refs
            .iter()
            .map(|(file, page, mode)| {
                let p = self.database.partition(*file);
                // Trace references are page references; with blocking factor 1
                // the page index doubles as the object index.  Clamp to the
                // declared file size to stay robust against slightly
                // inconsistent traces.
                let local = (*page).min(p.num_objects() - 1);
                ObjectRef {
                    partition: *file,
                    page: p.page_of_object(local),
                    object: ObjectId(p.object(local).0),
                    mode: *mode,
                }
            })
            .collect();
        TransactionTemplate {
            tx_type: t.tx_type,
            refs,
        }
    }
}

impl WorkloadGenerator for TraceGenerator {
    fn next_transaction(&mut self, _rng: &mut SimRng) -> Option<TransactionTemplate> {
        if self.trace.transactions.is_empty() {
            return None;
        }
        if self.next >= self.trace.transactions.len() {
            if self.cycle {
                self.next = 0;
            } else {
                return None;
            }
        }
        let t = self.template_for(self.next);
        self.next += 1;
        Some(t)
    }

    fn num_tx_types(&self) -> usize {
        self.trace.distinct_tx_types().max(1)
    }

    fn name(&self) -> &str {
        "trace-replay"
    }

    fn total_pages(&self) -> u64 {
        self.database.total_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SyntheticTraceSpec {
        SyntheticTraceSpec {
            num_transactions: 1_000,
            referenced_pages: 6_000,
            total_pages: 60_000,
            adhoc_query_size: 800,
            mean_tx_size: 20.0,
            ..SyntheticTraceSpec::default()
        }
    }

    #[test]
    fn synthetic_trace_matches_requested_statistics() {
        let spec = small_spec();
        let mut rng = SimRng::seed_from(42);
        let trace = spec.generate(&mut rng);
        assert_eq!(trace.transactions.len(), 1_000);
        assert_eq!(trace.files.len(), 13);
        assert_eq!(trace.distinct_tx_types(), 12);
        assert!(trace.max_transaction_size() >= 800);
        // Write fraction near 1.6 %.
        let wf = trace.write_references() as f64 / trace.total_references() as f64;
        assert!(wf > 0.005 && wf < 0.04, "write fraction {wf}");
        // Update transaction fraction near 20 %.
        let uf = trace.update_transactions() as f64 / trace.transactions.len() as f64;
        assert!((uf - 0.20).abs() < 0.06, "update tx fraction {uf}");
        // Distinct pages bounded by the referenced-page budget (with slack for
        // rounding per file).
        assert!(trace.distinct_pages() as u64 <= spec.referenced_pages + 50);
        assert!(trace.distinct_pages() > 1_000);
    }

    #[test]
    fn synthetic_trace_has_locality() {
        let spec = small_spec();
        let mut rng = SimRng::seed_from(7);
        let trace = spec.generate(&mut rng);
        // Count accesses per page and check that the hottest 10 % of the
        // referenced pages receive well over half of all accesses.
        let mut counts: std::collections::HashMap<(usize, u64), u64> = Default::default();
        for t in &trace.transactions {
            for (f, p, _) in &t.refs {
                *counts.entry((*f, *p)).or_default() += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top = freqs.len() / 10;
        let hot: u64 = freqs[..top].iter().sum();
        let total: u64 = freqs.iter().sum();
        let share = hot as f64 / total as f64;
        assert!(share > 0.6, "hot-10% share {share}");
    }

    #[test]
    fn trace_text_roundtrip() {
        let spec = SyntheticTraceSpec {
            num_transactions: 50,
            referenced_pages: 500,
            total_pages: 2_000,
            adhoc_query_size: 100,
            mean_tx_size: 5.0,
            ..SyntheticTraceSpec::default()
        };
        let mut rng = SimRng::seed_from(3);
        let trace = spec.generate(&mut rng);
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).expect("roundtrip parse");
        assert_eq!(parsed.files, trace.files);
        assert_eq!(parsed.transactions, trace.transactions);
    }

    #[test]
    fn trace_parser_rejects_malformed_input() {
        assert!(Trace::from_text("bogus line").is_err());
        assert!(Trace::from_text("r 0 5").is_err()); // reference before file/tx
        let err = Trace::from_text("file A 10\nr 0 5").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        // Reference to a file that was never declared.
        assert!(Trace::from_text("file A 10\ntx 0\nr 3 1").is_err());
    }

    #[test]
    fn trace_parser_ignores_comments_and_blank_lines() {
        let text = "# a comment\n\nfiles 1\nfile A 10\ntx 2\nr 0 3\nw 0 4\n";
        let trace = Trace::from_text(text).unwrap();
        assert_eq!(trace.files.len(), 1);
        assert_eq!(trace.transactions.len(), 1);
        assert_eq!(trace.transactions[0].refs.len(), 2);
        assert!(trace.transactions[0].is_update());
    }

    #[test]
    fn generator_replays_in_order_and_terminates() {
        let trace = Trace {
            files: vec![("A".into(), 100)],
            transactions: vec![
                TraceTransaction {
                    tx_type: 1,
                    refs: vec![(0, 5, AccessMode::Read)],
                },
                TraceTransaction {
                    tx_type: 2,
                    refs: vec![(0, 7, AccessMode::Write)],
                },
            ],
        };
        let mut g = TraceGenerator::new(trace, false);
        let mut rng = SimRng::seed_from(1);
        let t1 = g.next_transaction(&mut rng).unwrap();
        assert_eq!(t1.tx_type, 1);
        assert_eq!(t1.refs[0].page, PageId(5));
        let t2 = g.next_transaction(&mut rng).unwrap();
        assert_eq!(t2.tx_type, 2);
        assert!(t2.is_update());
        assert!(g.next_transaction(&mut rng).is_none());
    }

    #[test]
    fn cycling_generator_wraps_around() {
        let trace = Trace {
            files: vec![("A".into(), 10)],
            transactions: vec![TraceTransaction {
                tx_type: 0,
                refs: vec![(0, 1, AccessMode::Read)],
            }],
        };
        let mut g = TraceGenerator::new(trace, true);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..5 {
            assert!(g.next_transaction(&mut rng).is_some());
        }
    }

    #[test]
    fn trace_database_maps_files_to_partitions() {
        let spec = SyntheticTraceSpec {
            num_transactions: 20,
            referenced_pages: 200,
            total_pages: 400,
            adhoc_query_size: 30,
            mean_tx_size: 4.0,
            ..SyntheticTraceSpec::default()
        };
        let mut rng = SimRng::seed_from(11);
        let trace = spec.generate(&mut rng);
        let g = TraceGenerator::new(trace, false);
        assert_eq!(g.database().num_partitions(), 13);
        assert_eq!(g.name(), "trace-replay");
        assert!(g.num_tx_types() >= 1);
    }

    #[test]
    fn scaled_down_spec_is_smaller() {
        let s = SyntheticTraceSpec::scaled_down(10);
        let d = SyntheticTraceSpec::default();
        assert!(s.num_transactions < d.num_transactions);
        assert!(s.referenced_pages < d.referenced_pages);
        assert_eq!(s.num_files, d.num_files);
    }
}
