//! The relative reference matrix.
//!
//! "This matrix defines for every transaction type T and database partition P
//! which fraction of T's accesses should go to P." (§3.1, Table 3.2)
//!
//! Rows are transaction types, columns are partitions; rows need not be
//! normalized.  The matrix is also the place where inter-transaction-type
//! locality is expressed: two transaction types referencing the same
//! partitions with similar weights share working sets.

use simkernel::dist::DiscreteDist;
use simkernel::SimRng;

use crate::database::PartitionId;
use crate::types::TxTypeId;

/// Relative reference matrix (transaction types × partitions).
#[derive(Debug, Clone)]
pub struct ReferenceMatrix {
    num_partitions: usize,
    rows: Vec<Vec<f64>>,
    dists: Vec<Option<DiscreteDist>>,
}

impl ReferenceMatrix {
    /// Creates a matrix of zeros for `num_tx_types` × `num_partitions`.
    pub fn new(num_tx_types: usize, num_partitions: usize) -> Self {
        Self {
            num_partitions,
            rows: vec![vec![0.0; num_partitions]; num_tx_types],
            dists: vec![None; num_tx_types],
        }
    }

    /// Builds a matrix from explicit rows.  Every row must have the same
    /// number of columns.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let num_partitions = rows.first().map(Vec::len).unwrap_or(0);
        assert!(
            rows.iter().all(|r| r.len() == num_partitions),
            "all reference-matrix rows must have the same number of partitions"
        );
        let mut m = Self {
            num_partitions,
            rows,
            dists: Vec::new(),
        };
        m.dists = m.rows.iter().map(|r| DiscreteDist::new(r)).collect();
        m
    }

    /// Sets one cell and refreshes the row's sampling distribution.
    pub fn set(&mut self, tx_type: TxTypeId, partition: PartitionId, weight: f64) {
        assert!(partition < self.num_partitions, "partition out of range");
        assert!(weight >= 0.0, "weights must be non-negative");
        self.rows[tx_type][partition] = weight;
        self.dists[tx_type] = DiscreteDist::new(&self.rows[tx_type]);
    }

    /// Number of transaction types (rows).
    pub fn num_tx_types(&self) -> usize {
        self.rows.len()
    }

    /// Number of partitions (columns).
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// Fraction of type `tx_type`'s accesses that go to `partition`
    /// (normalized over the row).
    pub fn fraction(&self, tx_type: TxTypeId, partition: PartitionId) -> f64 {
        let row = &self.rows[tx_type];
        let total: f64 = row.iter().sum();
        if total <= 0.0 {
            0.0
        } else {
            row[partition] / total
        }
    }

    /// Samples the partition for the next access of a type-`tx_type`
    /// transaction.  Panics if the row is all zeros (a transaction type that
    /// never accesses anything is a configuration error).
    pub fn sample_partition(&self, tx_type: TxTypeId, rng: &mut SimRng) -> PartitionId {
        self.dists[tx_type]
            .as_ref()
            .unwrap_or_else(|| panic!("reference matrix row {tx_type} has no positive weight"))
            .sample(rng)
    }

    /// True if the row has at least one positive weight.
    pub fn row_is_valid(&self, tx_type: TxTypeId) -> bool {
        self.dists[tx_type].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Matrix from Table 3.2 of the paper.
    fn paper_matrix() -> ReferenceMatrix {
        ReferenceMatrix::from_rows(vec![
            vec![1.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.4, 0.1, 0.5],
            vec![0.25, 0.25, 0.25, 0.25],
        ])
    }

    #[test]
    fn fractions_are_normalized_per_row() {
        let m = paper_matrix();
        assert_eq!(m.num_tx_types(), 3);
        assert_eq!(m.num_partitions(), 4);
        assert!((m.fraction(0, 0) - 1.0).abs() < 1e-12);
        assert!((m.fraction(1, 3) - 0.5).abs() < 1e-12);
        assert!((m.fraction(2, 2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_weights() {
        let m = paper_matrix();
        let mut rng = SimRng::seed_from(17);
        let n = 100_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[m.sample_partition(1, &mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!((counts[1] as f64 / n as f64 - 0.4).abs() < 0.01);
        assert!((counts[3] as f64 / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn tt1_only_accesses_partition_one() {
        let m = paper_matrix();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert_eq!(m.sample_partition(0, &mut rng), 0);
        }
    }

    #[test]
    fn set_updates_distribution() {
        let mut m = ReferenceMatrix::new(1, 3);
        assert!(!m.row_is_valid(0));
        m.set(0, 2, 5.0);
        assert!(m.row_is_valid(0));
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(m.sample_partition(0, &mut rng), 2);
        }
    }

    #[test]
    #[should_panic]
    fn sampling_invalid_row_panics() {
        let m = ReferenceMatrix::new(2, 2);
        let mut rng = SimRng::seed_from(1);
        let _ = m.sample_partition(0, &mut rng);
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        let _ = ReferenceMatrix::from_rows(vec![vec![1.0, 2.0], vec![1.0]]);
    }
}
