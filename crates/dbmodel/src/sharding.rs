//! Page-ownership map of the shared-nothing (partitioned) architecture.
//!
//! In a shared-nothing system the database is *physically* divided among the
//! computing modules: every page belongs to exactly one node, remote accesses
//! are function-shipped to the owner, and there is no coherence problem
//! because a page is only ever cached at its owner.  This module provides the
//! ownership lookup as a pure data structure: the engine asks
//! [`PartitionMap::owner_of`] once per object reference and ships the
//! operation when the answer differs from the transaction's home node.
//!
//! The map works on *virtual partitions*: `num_nodes × partitions_per_node`
//! buckets assigned to the nodes round robin.  Two declustering schemes are
//! supported:
//!
//! * **Hash** — a page's virtual partition is a splitmix64 hash of its global
//!   page id.  Load spreads statistically evenly regardless of access skew,
//!   at the price of destroying locality (consecutive pages land on different
//!   nodes).
//! * **Range** — the global page-id space is cut into
//!   `num_nodes × partitions_per_node` contiguous slices; consecutive pages
//!   share a slice (and therefore an owner), and the slices are striped over
//!   the nodes so a hot id prefix still touches every node.  Requires the
//!   total page count up front.
//!
//! With one node every page is trivially local and the map degenerates to a
//! constant: a single-node shared-nothing run behaves exactly like the
//! centralized system.

use simkernel::rng::mix64;

use crate::types::PageId;

/// How pages are declustered over the virtual partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Virtual partition = hash of the global page id (splitmix64).
    Hash,
    /// Virtual partition = contiguous slice of the global page-id space.
    Range,
}

/// The page → owning-node map of a shared-nothing configuration.
///
/// Construction is cheap (no per-page state is materialized); lookups are a
/// hash or a division.  The map is immutable for the lifetime of a run — the
/// engine models a statically partitioned database, not online repartitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    num_nodes: usize,
    virtual_partitions: usize,
    scheme: PartitionScheme,
    /// Pages per contiguous slice ([`PartitionScheme::Range`] only; 1 for
    /// hash maps, where it is unused).
    pages_per_slice: u64,
}

impl PartitionMap {
    /// A hash-declustered map: `num_nodes × partitions_per_node` virtual
    /// partitions filled by a splitmix64 hash of the page id.
    ///
    /// # Panics
    /// Panics if `num_nodes` or `partitions_per_node` is zero.
    pub fn hash(num_nodes: usize, partitions_per_node: usize) -> Self {
        assert!(num_nodes > 0, "a partition map needs at least one node");
        assert!(
            partitions_per_node > 0,
            "a partition map needs at least one partition per node"
        );
        Self {
            num_nodes,
            virtual_partitions: num_nodes * partitions_per_node,
            scheme: PartitionScheme::Hash,
            pages_per_slice: 1,
        }
    }

    /// A range-declustered map over a database of `total_pages` global pages:
    /// the id space is cut into `num_nodes × partitions_per_node` contiguous
    /// slices, striped over the nodes.
    ///
    /// # Panics
    /// Panics if `num_nodes`, `partitions_per_node` or `total_pages` is zero.
    pub fn range(num_nodes: usize, partitions_per_node: usize, total_pages: u64) -> Self {
        assert!(num_nodes > 0, "a partition map needs at least one node");
        assert!(
            partitions_per_node > 0,
            "a partition map needs at least one partition per node"
        );
        assert!(
            total_pages > 0,
            "range partitioning needs the total page count"
        );
        let virtual_partitions = num_nodes * partitions_per_node;
        Self {
            num_nodes,
            virtual_partitions,
            scheme: PartitionScheme::Range,
            pages_per_slice: total_pages.div_ceil(virtual_partitions as u64).max(1),
        }
    }

    /// Number of nodes the map distributes over.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of virtual partitions (`num_nodes × partitions_per_node`).
    pub fn virtual_partitions(&self) -> usize {
        self.virtual_partitions
    }

    /// The declustering scheme in use.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// The virtual partition holding `page`.
    #[inline]
    pub fn virtual_partition_of(&self, page: PageId) -> usize {
        match self.scheme {
            PartitionScheme::Hash => (mix64(page.0) % self.virtual_partitions as u64) as usize,
            PartitionScheme::Range => {
                ((page.0 / self.pages_per_slice) as usize).min(self.virtual_partitions - 1)
            }
        }
    }

    /// The node owning `page` (virtual partitions are assigned round robin).
    #[inline]
    pub fn owner_of(&self, page: PageId) -> usize {
        self.virtual_partition_of(page) % self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_page_has_exactly_one_owner_in_range() {
        for scheme in [PartitionMap::hash(4, 8), PartitionMap::range(4, 8, 10_000)] {
            for page in 0..10_000u64 {
                let owner = scheme.owner_of(PageId(page));
                assert!(owner < 4, "{scheme:?} page {page} owner {owner}");
                // The lookup is a pure function: asking twice gives the same
                // owner.
                assert_eq!(owner, scheme.owner_of(PageId(page)));
            }
        }
    }

    #[test]
    fn single_node_owns_everything() {
        let hash = PartitionMap::hash(1, 8);
        let range = PartitionMap::range(1, 8, 1_000);
        for page in [0u64, 1, 999, 123_456_789] {
            assert_eq!(hash.owner_of(PageId(page)), 0);
            assert_eq!(range.owner_of(PageId(page)), 0);
        }
    }

    #[test]
    fn hash_spreads_pages_roughly_evenly() {
        let map = PartitionMap::hash(8, 8);
        let mut counts = [0u64; 8];
        let n = 100_000u64;
        for page in 0..n {
            counts[map.owner_of(PageId(page))] += 1;
        }
        let expected = n as f64 / 8.0;
        for (node, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "node {node} holds {c} pages ({dev:.3} off)");
        }
    }

    #[test]
    fn range_keeps_consecutive_pages_together_and_stripes_slices() {
        let map = PartitionMap::range(4, 2, 800);
        // 8 slices of 100 pages; slice i belongs to node i % 4.
        assert_eq!(map.virtual_partitions(), 8);
        for page in 0..100u64 {
            assert_eq!(map.owner_of(PageId(page)), 0);
        }
        for page in 100..200u64 {
            assert_eq!(map.owner_of(PageId(page)), 1);
        }
        for page in 400..500u64 {
            assert_eq!(map.owner_of(PageId(page)), 0, "slices stripe over nodes");
        }
        // Ids beyond the declared total clamp to the last slice.
        assert_eq!(map.virtual_partition_of(PageId(10_000)), 7);
        assert_eq!(map.owner_of(PageId(10_000)), 3);
    }

    #[test]
    fn hash_and_range_disagree_but_both_cover_all_nodes() {
        let hash = PartitionMap::hash(4, 8);
        let range = PartitionMap::range(4, 8, 1_000);
        let hash_owners: std::collections::BTreeSet<usize> =
            (0..1_000u64).map(|p| hash.owner_of(PageId(p))).collect();
        let range_owners: std::collections::BTreeSet<usize> =
            (0..1_000u64).map(|p| range.owner_of(PageId(p))).collect();
        assert_eq!(hash_owners.len(), 4);
        assert_eq!(range_owners.len(), 4);
        assert_eq!(hash.scheme(), PartitionScheme::Hash);
        assert_eq!(range.scheme(), PartitionScheme::Range);
        assert_eq!(hash.num_nodes(), 4);
    }

    #[test]
    #[should_panic(expected = "total page count")]
    fn range_without_total_pages_is_rejected() {
        let _ = PartitionMap::range(2, 4, 0);
    }
}
