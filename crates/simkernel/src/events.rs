//! Future event list.
//!
//! A deterministic priority queue of `(time, payload)` pairs.  Ties are broken
//! by insertion order (FIFO among simultaneous events), which keeps simulation
//! runs reproducible for a fixed RNG seed regardless of floating-point
//! idiosyncrasies in the heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled for execution at [`ScheduledEvent::time`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<P> {
    /// Simulated time at which the event fires.
    pub time: SimTime,
    /// Monotonically increasing sequence number (insertion order).
    pub seq: u64,
    /// Caller-defined payload.
    pub payload: P,
}

/// Internal heap entry; ordered so that the *earliest* event is popped first
/// and ties resolve in insertion order.
struct HeapEntry<P> {
    time: SimTime,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<P> Eq for HeapEntry<P> {}

impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (time, seq) wins.
        match other.time.partial_cmp(&self.time) {
            Some(Ordering::Equal) | None => other.seq.cmp(&self.seq),
            Some(ord) => ord,
        }
    }
}

/// The future event list of the simulation.
pub struct EventQueue<P> {
    heap: BinaryHeap<HeapEntry<P>>,
    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty event queue with the clock at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
            scheduled_total: 0,
        }
    }

    /// Current simulated time (the time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the calling model; the event
    /// is clamped to `now` so the simulation still makes forward progress, and
    /// debug builds assert.
    pub fn schedule_at(&mut self, at: SimTime, payload: P) {
        debug_assert!(
            at + 1e-9 >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        let at = if at < self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(HeapEntry {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedules `payload` to fire `delay` milliseconds from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, payload: P) {
        debug_assert!(delay >= 0.0, "negative delay {delay}");
        let now = self.now;
        self.schedule_at(now + delay.max(0.0), payload);
    }

    /// Pops the next event and advances the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<P>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time + 1e-9 >= self.now, "time went backwards");
        self.now = entry.time.max(self.now);
        Some(ScheduledEvent {
            time: self.now,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(2.0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(4.0, ());
        q.schedule_in(2.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert!((q.now() - 2.0).abs() < 1e-12);
        q.pop();
        assert!((q.now() - 4.0).abs() < 1e-12);
        assert!(q.pop().is_none());
    }

    #[test]
    fn schedule_in_is_relative_to_current_time() {
        let mut q = EventQueue::new();
        q.schedule_in(10.0, 1);
        q.pop();
        q.schedule_in(5.0, 2);
        let e = q.pop().unwrap();
        assert!((e.time - 15.0).abs() < 1e-12);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule_at(7.0, ());
        q.schedule_at(3.0, ());
        assert_eq!(q.peek_time(), Some(3.0));
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q: EventQueue<()> = EventQueue::new();
        for _ in 0..5 {
            q.schedule_in(1.0, ());
        }
        assert_eq!(q.scheduled_total(), 5);
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
    }
}
