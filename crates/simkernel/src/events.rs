//! Future event list.
//!
//! A deterministic priority queue of `(time, payload)` pairs.  Ties are broken
//! by insertion order (FIFO among simultaneous events), which keeps simulation
//! runs reproducible for a fixed RNG seed regardless of floating-point
//! idiosyncrasies in the queue.
//!
//! # Implementation: an indexed calendar queue
//!
//! The queue is a *calendar queue* (Brown, CACM 1988) instead of a binary
//! heap: pending events are bucketed by time over a sliding window of
//! `bucket_count` buckets of `width` milliseconds each.  Only the bucket the
//! clock currently points at is kept sorted (events are popped from its
//! front); future buckets are plain unsorted `Vec`s with `O(1)` push, and
//! events beyond the window land in an unsorted overflow list.  When the
//! clock leaves a bucket, the next bucket is sorted once and *swapped* into
//! the current position — the drained bucket's allocation is handed back to
//! the calendar, so a run that schedules millions of events recycles a fixed
//! set of buffers instead of paying per-event heap sift costs.
//!
//! When the window is exhausted (or the queue outgrows it), the calendar
//! rebuilds: a new bucket width is derived from the observed inter-event
//! gaps, and all pending events are redistributed.  Every decision depends
//! only on the queue's content, never on wall-clock or addresses, so the pop
//! order is fully deterministic.
//!
//! # Ordering contract
//!
//! Events pop in ascending `(time, seq)` order, with times compared by
//! [`f64::total_cmp`].  Scheduled times must be finite (and, after the
//! clamp against the current clock, non-negative); debug builds assert this.
//! Under `total_cmp` a NaN would order *after* every finite time instead of
//! comparing `Equal` to everything (the silent-`Equal` hazard of
//! `partial_cmp`), so even an unasserted release build keeps a total order
//! and cannot lose or reorder finite events.

use std::cmp::Ordering;
use std::collections::VecDeque;

use crate::time::SimTime;

/// An event scheduled for execution at [`ScheduledEvent::time`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<P> {
    /// Simulated time at which the event fires.
    pub time: SimTime,
    /// Monotonically increasing sequence number (insertion order).
    pub seq: u64,
    /// Caller-defined payload.
    pub payload: P,
}

/// One pending event inside the calendar.
#[derive(Debug)]
struct Entry<P> {
    time: SimTime,
    seq: u64,
    payload: P,
}

impl<P> Entry<P> {
    /// The total order events pop in: ascending `(time, seq)` with times
    /// compared by [`f64::total_cmp`].
    #[inline]
    fn key_cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// Smallest and largest calendar sizes the rebuild heuristic may pick.
const MIN_BUCKETS: usize = 16;
const MAX_BUCKETS: usize = 1 << 16;

/// The future event list of the simulation.
pub struct EventQueue<P> {
    /// Start time of bucket 0 of the current window.
    base: SimTime,
    /// Width of one bucket in simulated milliseconds (always `> 0`).
    width: SimTime,
    /// Index of the bucket the clock currently points at.
    cursor: usize,
    /// The current bucket, sorted ascending by `(time, seq)`; events pop from
    /// the front.
    current: VecDeque<Entry<P>>,
    /// Future buckets of the window (unsorted).  `buckets[i]` covers times
    /// with `bucket_index == i`; indices `<= cursor` are empty (their events
    /// live in `current`).
    buckets: Vec<Vec<Entry<P>>>,
    /// Events beyond the window (unsorted), redistributed at the next rebuild.
    overflow: Vec<Entry<P>>,
    /// Total number of pending events.
    len: usize,
    /// Rebuild eagerly once the queue outgrows the calendar.
    resize_at: usize,

    next_seq: u64,
    now: SimTime,
    scheduled_total: u64,
    popped_total: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    /// Creates an empty event queue with the clock at time 0.
    pub fn new() -> Self {
        Self {
            base: 0.0,
            width: 1.0,
            cursor: 0,
            current: VecDeque::new(),
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            overflow: Vec::new(),
            len: 0,
            resize_at: MIN_BUCKETS * 8,
            next_seq: 0,
            now: 0.0,
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// Current simulated time (the time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (diagnostic).
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever popped (diagnostic; the event count of a
    /// finished run).
    #[inline]
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// The window bucket `time` maps to.  Monotone in `time` (IEEE division
    /// and floor preserve ordering), so even boundary rounding can never
    /// order two buckets against the times they hold.
    #[inline]
    fn bucket_index(&self, time: SimTime) -> usize {
        debug_assert!(self.width > 0.0);
        let idx = (time - self.base) / self.width;
        // Times at or before `base` (possible for the current bucket after
        // clamping) and any rounding artifact map to the cursor's bucket.
        if idx < 0.0 {
            0
        } else {
            idx as usize
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// `at` must be finite.  Scheduling in the past is a logic error in the
    /// calling model; the event is clamped to `now` so the simulation still
    /// makes forward progress, and debug builds assert.
    pub fn schedule_at(&mut self, at: SimTime, payload: P) {
        debug_assert!(at.is_finite(), "non-finite event time {at}");
        debug_assert!(
            at + 1e-9 >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        // `<=` (not `<`) also normalizes a stray `-0.0` to the clock's `+0.0`
        // so the `total_cmp` order cannot see a sign-of-zero difference.
        let at = if at <= self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_entry(at, seq, payload);
    }

    /// Schedules an event whose sequence number was assigned by an *external*
    /// authority — the sharded kernel's coordinator, which owns one global
    /// `(time, seq)` order across all shard queues (see [`crate::shard`]).
    ///
    /// The caller is responsible for the clamp against the global clock (this
    /// queue's local clock trails it) and for keeping seq numbers unique and
    /// increasing across calls; `at` must be finite and not behind this
    /// queue's local clock.  The queue's own seq counter is untouched, so a
    /// queue must not mix self-assigned and preassigned scheduling.
    pub fn schedule_preassigned(&mut self, at: SimTime, seq: u64, payload: P) {
        debug_assert!(at.is_finite(), "non-finite event time {at}");
        debug_assert!(
            at + 1e-9 >= self.now,
            "scheduling into the shard's past: at={at} now={}",
            self.now
        );
        self.insert_entry(at, seq, payload);
    }

    /// Places a fully-formed entry into the calendar, maintaining the
    /// counters and the eager-rebuild trigger.
    fn insert_entry(&mut self, at: SimTime, seq: u64, payload: P) {
        self.scheduled_total += 1;
        self.len += 1;
        let entry = Entry {
            time: at,
            seq,
            payload,
        };
        let idx = self.bucket_index(at);
        if idx <= self.cursor {
            // Lands in the bucket currently being drained: keep it sorted.
            // New events carry the largest seq, so among equal times the
            // insertion point is the end of the tie run — for the common
            // "schedule at now / a few steps ahead" patterns this degenerates
            // to an append.
            let pos = self
                .current
                .partition_point(|e| e.key_cmp(&entry) == Ordering::Less);
            self.current.insert(pos, entry);
        } else if idx < self.buckets.len() {
            self.buckets[idx].push(entry);
        } else {
            self.overflow.push(entry);
        }
        if self.len >= self.resize_at {
            self.rebuild();
        }
    }

    /// Schedules `payload` to fire `delay` milliseconds from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, payload: P) {
        debug_assert!(delay >= 0.0, "negative delay {delay}");
        let now = self.now;
        self.schedule_at(now + delay.max(0.0), payload);
    }

    /// Pops the next event and advances the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<P>> {
        if self.len == 0 {
            return None;
        }
        while self.current.is_empty() {
            self.advance_bucket();
        }
        let entry = self.current.pop_front().expect("non-empty current bucket");
        self.len -= 1;
        self.popped_total += 1;
        debug_assert!(entry.time + 1e-9 >= self.now, "time went backwards");
        self.now = entry.time.max(self.now);
        Some(ScheduledEvent {
            time: self.now,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Pops the next event only if its time is at or before `limit`
    /// (inclusive, compared via [`crate::time::at_or_before`] so a NaN limit
    /// behaves as "no bound" rather than stalling).  The sharded kernel's
    /// workers drain their shard up to the round horizon with this.
    ///
    /// Unlike [`EventQueue::peek_time`] this is amortized `O(1)`: it may
    /// advance the calendar cursor to the next non-empty bucket (monotone
    /// work that an eventual [`EventQueue::pop`] would perform anyway), after
    /// which the head is the front of the sorted current bucket.
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<ScheduledEvent<P>> {
        let head_time = self.peek_next()?.0;
        if !crate::time::at_or_before(head_time, limit) {
            return None;
        }
        self.pop()
    }

    /// The `(time, seq)` key of the next pending event, if any.  May advance
    /// the calendar cursor (see [`EventQueue::pop_at_or_before`]); amortized
    /// `O(1)` where [`EventQueue::peek_time`] scans future buckets.
    pub fn peek_next(&mut self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        while self.current.is_empty() {
            self.advance_bucket();
        }
        let front = self.current.front().expect("non-empty current bucket");
        Some((front.time, front.seq))
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if let Some(front) = self.current.front() {
            return Some(front.time);
        }
        for bucket in self.buckets.iter().skip(self.cursor + 1) {
            if let Some(min) = bucket.iter().min_by(|a, b| a.key_cmp(b)).map(|e| e.time) {
                return Some(min);
            }
        }
        self.overflow
            .iter()
            .min_by(|a, b| a.key_cmp(b))
            .map(|e| e.time)
    }

    /// Moves the cursor to the next non-empty bucket, sorting it and swapping
    /// it into `current`.  The drained current bucket's allocation is handed
    /// back to the calendar (the `O(1)` bucket-reuse path).  Rebuilds the
    /// calendar when the window is exhausted.  Must only be called while
    /// `len > 0` and `current` is empty.
    fn advance_bucket(&mut self) {
        debug_assert!(self.len > 0 && self.current.is_empty());
        let next = self
            .buckets
            .iter()
            .enumerate()
            .skip(self.cursor + 1)
            .find(|(_, b)| !b.is_empty())
            .map(|(i, _)| i);
        match next {
            Some(idx) => {
                // Recycle the drained current bucket's buffer: an empty
                // VecDeque converts to a Vec in O(1) and keeps its capacity.
                let spare = Vec::from(std::mem::take(&mut self.current));
                let mut bucket = std::mem::replace(&mut self.buckets[idx], spare);
                bucket.sort_unstable_by(Entry::key_cmp);
                self.current = VecDeque::from(bucket);
                self.cursor = idx;
            }
            None => {
                // Window exhausted but events remain: they are all in the
                // overflow list.  Re-plan the calendar around them.
                debug_assert!(!self.overflow.is_empty());
                self.rebuild();
                debug_assert!(
                    !self.current.is_empty() || self.buckets.iter().any(|b| !b.is_empty()),
                    "rebuild must place at least one event inside the window"
                );
                while self.current.is_empty() {
                    self.advance_bucket();
                }
            }
        }
    }

    /// Re-plans the calendar: picks a bucket width from the observed
    /// inter-event gaps, sizes the window to the pending event count and
    /// redistributes every pending event.  `O(len)` plus a bounded-size sort;
    /// called when the window is exhausted or the queue outgrew it.
    fn rebuild(&mut self) {
        let mut pending: Vec<Entry<P>> = Vec::with_capacity(self.len);
        pending.extend(std::mem::take(&mut self.current));
        for bucket in &mut self.buckets {
            pending.append(bucket);
        }
        pending.append(&mut self.overflow);
        debug_assert_eq!(pending.len(), self.len);

        // Sample up to 128 event times to estimate the typical gap between
        // consecutive events; a trimmed mean keeps far-future outliers (end
        // of run, long timeouts) from inflating the width.
        let n = pending.len();
        let step = (n / 128).max(1);
        let mut sample: Vec<SimTime> = pending.iter().step_by(step).map(|e| e.time).collect();
        sample.sort_unstable_by(SimTime::total_cmp);
        let gaps: Vec<SimTime> = sample.windows(2).map(|w| w[1] - w[0]).collect();
        let width = if gaps.is_empty() {
            1.0
        } else {
            let mut gaps = gaps;
            gaps.sort_unstable_by(SimTime::total_cmp);
            // Mean of the central half of the gap distribution.
            let lo = gaps.len() / 4;
            let hi = (3 * gaps.len() / 4).max(lo + 1).min(gaps.len());
            let trimmed: SimTime = gaps[lo..hi].iter().sum::<SimTime>() / (hi - lo) as SimTime;
            // Aim for a couple of events per bucket; `* step` rescales the
            // sampled gap back to the full population.
            (trimmed * step as SimTime * 2.0).clamp(1e-6, 1e6)
        };

        let bucket_count = (n * 2).next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        // Recycle existing bucket buffers, growing the calendar if needed.
        if self.buckets.len() < bucket_count {
            self.buckets.resize_with(bucket_count, Vec::new);
        } else {
            self.buckets.truncate(bucket_count);
        }
        self.width = width;
        // Anchor the window at the earliest pending event (>= `now`), so at
        // least one event is guaranteed to land inside it however far in the
        // future the backlog lives.
        self.base = pending
            .iter()
            .map(|e| e.time)
            .min_by(SimTime::total_cmp)
            .unwrap_or(self.now);
        self.cursor = 0;
        // Once the calendar is at its maximum size, growth can no longer
        // trigger eager rebuilds (each insert would otherwise pay O(len));
        // only window exhaustion re-plans from here on.
        self.resize_at = if bucket_count >= MAX_BUCKETS {
            usize::MAX
        } else {
            (bucket_count * 8).max(MIN_BUCKETS * 8)
        };
        for entry in pending {
            let idx = self.bucket_index(entry.time);
            if idx < self.buckets.len() {
                self.buckets[idx].push(entry);
            } else {
                self.overflow.push(entry);
            }
        }
        // Sort bucket 0 straight into the current position so the cursor
        // always points at a sorted bucket.
        let spare = Vec::from(std::mem::take(&mut self.current));
        let mut first = std::mem::replace(&mut self.buckets[0], spare);
        first.sort_unstable_by(Entry::key_cmp);
        self.current = VecDeque::from(first);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(2.0, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(4.0, ());
        q.schedule_in(2.0, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert!((q.now() - 2.0).abs() < 1e-12);
        q.pop();
        assert!((q.now() - 4.0).abs() < 1e-12);
        assert!(q.pop().is_none());
    }

    #[test]
    fn schedule_in_is_relative_to_current_time() {
        let mut q = EventQueue::new();
        q.schedule_in(10.0, 1);
        q.pop();
        q.schedule_in(5.0, 2);
        let e = q.pop().unwrap();
        assert!((e.time - 15.0).abs() < 1e-12);
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule_at(7.0, ());
        q.schedule_at(3.0, ());
        assert_eq!(q.peek_time(), Some(3.0));
    }

    #[test]
    fn peek_time_sees_past_the_current_bucket() {
        let mut q = EventQueue::new();
        // One event far beyond the initial window: it lives in the overflow
        // list until a rebuild, but peek must still find it.
        q.schedule_at(1_000_000.0, ());
        assert_eq!(q.peek_time(), Some(1_000_000.0));
        let e = q.pop().unwrap();
        assert_eq!(e.time, 1_000_000.0);
    }

    #[test]
    fn counts_scheduled_and_popped_events() {
        let mut q: EventQueue<()> = EventQueue::new();
        for _ in 0..5 {
            q.schedule_in(1.0, ());
        }
        assert_eq!(q.scheduled_total(), 5);
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        while q.pop().is_some() {}
        assert_eq!(q.popped_total(), 5);
        assert_eq!(q.scheduled_total(), 5);
        assert!(q.is_empty());
    }

    #[test]
    fn survives_rebuilds_under_growth_and_drain() {
        // Enough events to force several eager resizes and window-exhaustion
        // rebuilds; pop order must stay fully sorted throughout.
        let mut q = EventQueue::new();
        let mut t = 0.0;
        for i in 0..5_000u64 {
            // A deterministic scatter of near and far times.
            t += ((i * 2_654_435_761) % 97) as f64 * 0.013;
            q.schedule_at(t % 731.0, i);
        }
        let mut last = (f64::NEG_INFINITY, 0u64);
        let mut popped = 0;
        while let Some(e) = q.pop() {
            assert!(
                (last.0, last.1) < (e.time, e.seq),
                "pop order violated: {last:?} then ({}, {})",
                e.time,
                e.seq
            );
            last = (e.time, e.seq);
            popped += 1;
        }
        assert_eq!(popped, 5_000);
    }

    #[test]
    fn pop_at_or_before_respects_inclusive_limit() {
        let mut q = EventQueue::new();
        q.schedule_at(1.0, "a");
        q.schedule_at(2.0, "b");
        q.schedule_at(2.0, "b2");
        q.schedule_at(3.0, "c");
        assert_eq!(q.pop_at_or_before(2.0).unwrap().payload, "a");
        assert_eq!(q.pop_at_or_before(2.0).unwrap().payload, "b");
        assert_eq!(q.pop_at_or_before(2.0).unwrap().payload, "b2");
        assert!(q.pop_at_or_before(2.0).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_at_or_before(f64::INFINITY).unwrap().payload, "c");
        assert!(q.pop_at_or_before(f64::INFINITY).is_none());
    }

    #[test]
    fn pop_at_or_before_nan_limit_pops_everything() {
        // A poisoned horizon must widen, not stall (see `time::at_or_before`).
        let mut q = EventQueue::new();
        q.schedule_at(10.0, 1);
        q.schedule_at(20.0, 2);
        assert_eq!(q.pop_at_or_before(f64::NAN).unwrap().payload, 1);
        assert_eq!(q.pop_at_or_before(f64::NAN).unwrap().payload, 2);
    }

    #[test]
    fn pop_at_or_before_finds_events_beyond_the_window() {
        // The head lives in the overflow list until a rebuild; the bounded
        // pop must still reach it.
        let mut q = EventQueue::new();
        q.schedule_at(1_000_000.0, ());
        assert!(q.pop_at_or_before(999_999.0).is_none());
        assert!(q.pop_at_or_before(1_000_000.0).is_some());
    }

    #[test]
    fn peek_next_reports_head_key() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_next(), None);
        q.schedule_at(7.0, ());
        q.schedule_at(3.0, ());
        let (t, seq) = q.peek_next().unwrap();
        assert_eq!(t, 3.0);
        assert_eq!(seq, 1);
        q.pop();
        assert_eq!(q.peek_next().unwrap().0, 7.0);
    }

    #[test]
    fn preassigned_seq_orders_ties_by_external_seq() {
        let mut q = EventQueue::new();
        q.schedule_preassigned(2.0, 17, "later");
        q.schedule_preassigned(2.0, 40, "latest");
        q.schedule_preassigned(2.0, 55, "tail");
        q.schedule_preassigned(1.0, 90, "first");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["first", "later", "latest", "tail"]);
        assert_eq!(q.popped_total(), 4);
        assert_eq!(q.scheduled_total(), 4);
    }

    #[test]
    fn preassigned_matches_self_assigned_pop_order() {
        // Feeding the same (time, seq) pairs a self-assigning queue would
        // produce must give the identical pop sequence.
        let times = [5.0, 1.0, 5.0, 3.0, 1.0, 2.0, 5.0, 0.5];
        let mut auto_q = EventQueue::new();
        let mut pre_q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            auto_q.schedule_at(t, i);
            pre_q.schedule_preassigned(t, i as u64, i);
        }
        loop {
            match (auto_q.pop(), pre_q.pop()) {
                (None, None) => break,
                (a, b) => {
                    let (a, b) = (a.unwrap(), b.unwrap());
                    assert_eq!((a.time, a.seq, a.payload), (b.time, b.seq, b.payload));
                }
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        // Hold-model churn: pop one, schedule one a short step ahead — the
        // standard access pattern of the simulation engine.
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.schedule_at(i as f64 * 0.1, i);
        }
        let mut last_time = f64::NEG_INFINITY;
        for i in 0..10_000u64 {
            let e = q.pop().unwrap();
            assert!(e.time >= last_time);
            last_time = e.time;
            q.schedule_in((e.seq % 13) as f64 * 0.37, 64 + i);
        }
    }
}
