//! # simkernel — discrete-event simulation kernel
//!
//! TPSIM (the transaction-processing simulator described in Rahm's
//! *Performance Evaluation of Extended Storage Architectures for Transaction
//! Processing*, TR 216/91) was originally written in the DeNet simulation
//! language.  DeNet is not available, so this crate provides the equivalent
//! substrate from scratch:
//!
//! * a [`time`] representation (simulated milliseconds),
//! * a deterministic [`events::EventQueue`] (future event list),
//! * FCFS multi-server [`resource::Resource`] stations with utilization and
//!   queue-length statistics,
//! * random [`dist`] sampling (exponential, uniform, discrete, zipf) on top of
//!   a seedable PRNG, and
//! * [`stats`] accumulators (tally and time-weighted) with warm-up support.
//!
//! The kernel is intentionally agnostic of what is being simulated: tokens are
//! opaque `u64` values minted by the caller, and the caller owns the
//! interpretation of every scheduled event.

pub mod dist;
pub mod events;
pub mod resource;
pub mod rng;
pub mod shard;
pub mod sketch;
pub mod stats;
pub mod time;

pub use dist::{Draw, Exponential, PiecewiseRate, UniformRange};
pub use events::{EventQueue, ScheduledEvent};
pub use resource::{Resource, ResourceStats};
pub use rng::SimRng;
pub use shard::{ShardWorker, ShardedEventQueue, ShutdownGuard};
pub use sketch::QuantileSketch;
pub use stats::{Counter, Histogram, Tally, TimeWeighted};
pub use time::SimTime;
