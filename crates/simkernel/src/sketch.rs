//! Deterministic, mergeable, constant-memory quantile sketch.
//!
//! Streaming tail-latency collection (p99/p999 over hundreds of thousands of
//! completions) cannot afford a per-sample vector.  This module provides a
//! KLL/MRL-style compactor sketch with three properties the rest of the
//! simulator depends on:
//!
//! * **Deterministic.**  Classic KLL flips a coin per compaction; here the
//!   kept parity alternates per level instead, so the same insertion sequence
//!   always yields the same sketch (and the same report bytes).  No RNG, no
//!   wall clock, no hash-map iteration.
//! * **Self-certified error.**  Every compaction of level `l` can shift any
//!   rank by at most `2^l` (the weight of the discarded items), so the sketch
//!   maintains a running upper bound on its own absolute rank error.  Tests
//!   assert the observed error against this bound — the certificate ships
//!   with the answer.
//! * **Mergeable.**  `merge` concatenates levels and re-compacts; the error
//!   bounds add.  Per-node sketches are merged into the cluster-wide report
//!   and sharded runs stay exact about what they know.
//!
//! Memory is `O(k · log(n/k))` for `n` insertions — effectively constant for
//! any run this simulator performs (default `k = 4096` keeps a one-million
//! sample stream under ~9 levels).

/// Default per-level capacity.  At simulator scales (10⁴–10⁶ completions per
/// run) this keeps the certified rank error well below one part in a
/// thousand, so p999 is trustworthy.
pub const DEFAULT_SKETCH_CAPACITY: usize = 4096;

/// A deterministic mergeable quantile sketch over `f64` samples.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    /// Per-level capacity; a level compacts when it reaches this size.
    k: usize,
    /// `levels[l]` holds items of weight `2^l`, unsorted between compactions.
    levels: Vec<Vec<f64>>,
    /// Which half a compaction of level `l` keeps next; alternates per level.
    keep_odd: Vec<bool>,
    /// Total number of inserted samples (merge adds the other side's count).
    count: u64,
    /// Exact minimum and maximum (tracked outside the compactors).
    min: f64,
    max: f64,
    /// Certified upper bound on the absolute rank error of any quantile
    /// query: the sum of `2^l` over all compactions performed at level `l`.
    rank_error_bound: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_SKETCH_CAPACITY)
    }
}

impl QuantileSketch {
    /// Creates a sketch with per-level capacity `k` (clamped to at least 4
    /// and rounded down to an even number so compactions pair items cleanly).
    pub fn new(k: usize) -> Self {
        let k = (k.max(4)) & !1;
        Self {
            k,
            levels: vec![Vec::new()],
            keep_odd: vec![false],
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rank_error_bound: 0,
        }
    }

    /// Number of samples inserted (including merged-in samples).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum, or `None` for an empty sketch.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum, or `None` for an empty sketch.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Certified upper bound on the absolute rank error of any `quantile`
    /// answer.  `0` means the sketch is still exact (no compaction happened).
    pub fn rank_error_bound(&self) -> u64 {
        self.rank_error_bound
    }

    /// Inserts one sample.
    pub fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "sketch samples must not be NaN");
        self.count += 1;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.levels[0].push(value);
        if self.levels[0].len() >= self.k {
            self.compact(0);
        }
    }

    /// Merges another sketch into this one.  Counts, extremes and error
    /// bounds add; the result answers quantiles over the union stream.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.rank_error_bound += other.rank_error_bound;
        for (l, items) in other.levels.iter().enumerate() {
            while self.levels.len() <= l {
                self.levels.push(Vec::new());
                self.keep_odd.push(false);
            }
            self.levels[l].extend_from_slice(items);
        }
        let mut l = 0;
        while l < self.levels.len() {
            if self.levels[l].len() >= self.k {
                self.compact(l);
            }
            l += 1;
        }
    }

    /// Forgets all samples (used at warm-up end) but keeps the capacity.
    pub fn reset(&mut self) {
        self.levels.clear();
        self.levels.push(Vec::new());
        self.keep_odd.clear();
        self.keep_odd.push(false);
        self.count = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
        self.rank_error_bound = 0;
    }

    /// Value at quantile `q` in `[0, 1]`: the stored value whose cumulative
    /// weight first reaches rank `ceil(q · count)`.  Returns `None` for an
    /// empty sketch.  `q <= 0` yields the exact minimum, `q >= 1` the exact
    /// maximum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let mut items: Vec<(f64, u64)> = Vec::new();
        for (l, level) in self.levels.iter().enumerate() {
            let weight = 1u64 << l;
            items.extend(level.iter().map(|&v| (v, weight)));
        }
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (v, w) in items {
            cum += w;
            if cum >= target {
                return Some(v);
            }
        }
        Some(self.max)
    }

    /// Compacts level `l`: sorts it, promotes every other item (weight
    /// doubling) to level `l + 1`, and discards the rest.  Which half
    /// survives alternates deterministically per level.  Cascades upward if
    /// the next level fills.
    fn compact(&mut self, l: usize) {
        self.levels[l].sort_by(|a, b| a.total_cmp(b));
        let n = self.levels[l].len();
        let paired = n & !1;
        if paired == 0 {
            return;
        }
        let keep_odd = self.keep_odd[l];
        self.keep_odd[l] = !keep_odd;
        let offset = usize::from(keep_odd);
        let promoted: Vec<f64> = (0..paired / 2)
            .map(|i| self.levels[l][2 * i + offset])
            .collect();
        // An odd trailing item stays at this level with its weight intact.
        let leftover = (n > paired).then(|| self.levels[l][n - 1]);
        self.levels[l].clear();
        self.levels[l].extend(leftover);
        if self.levels.len() == l + 1 {
            self.levels.push(Vec::new());
            self.keep_odd.push(false);
        }
        self.levels[l + 1].extend_from_slice(&promoted);
        self.rank_error_bound += 1u64 << l;
        if self.levels[l + 1].len() >= self.k {
            self.compact(l + 1);
        }
    }

    /// Total stored items across all levels (diagnostic; bounded by
    /// `k · levels`).
    pub fn stored_items(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// Exact oracle: absolute rank error of answering `got` for quantile `q`
    /// over the (sorted) sample vector.
    fn rank_error(sorted: &[f64], q: f64, got: f64) -> u64 {
        let n = sorted.len() as u64;
        let target = ((q * n as f64).ceil() as u64).clamp(1, n);
        let below = sorted.iter().filter(|&&v| v < got).count() as u64;
        let at_or_below = sorted.iter().filter(|&&v| v <= got).count() as u64;
        // `got` occupies ranks (below, at_or_below]; error is the distance
        // from the target rank to that interval.
        if target <= below {
            below + 1 - target
        } else {
            target.saturating_sub(at_or_below)
        }
    }

    fn check_against_oracle(samples: &[f64], k: usize) {
        let mut sketch = QuantileSketch::new(k);
        for &v in samples {
            sketch.insert(v);
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(sketch.count(), samples.len() as u64);
        assert_eq!(sketch.min(), sorted.first().copied());
        assert_eq!(sketch.max(), sorted.last().copied());
        let bound = sketch.rank_error_bound();
        // The certificate must stay useful: well under half the stream.
        assert!(
            bound < samples.len() as u64 / 2,
            "bound {bound} too loose for n={}",
            samples.len()
        );
        for q in [0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999] {
            let got = sketch.quantile(q).unwrap();
            let err = rank_error(&sorted, q, got);
            assert!(
                err <= bound,
                "q={q}: rank error {err} exceeds certified bound {bound} (n={})",
                samples.len()
            );
        }
    }

    #[test]
    fn empty_sketch_answers_none() {
        let s = QuantileSketch::new(64);
        assert_eq!(s.count(), 0);
        assert!(s.quantile(0.5).is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert_eq!(s.rank_error_bound(), 0);
    }

    #[test]
    fn small_stream_is_exact() {
        let mut s = QuantileSketch::new(64);
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] {
            s.insert(v);
        }
        // No compaction happened: every quantile is exact.
        assert_eq!(s.rank_error_bound(), 0);
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(0.2), Some(1.0));
        assert_eq!(s.quantile(0.5), Some(5.0));
        assert_eq!(s.quantile(0.8), Some(7.0));
        assert_eq!(s.quantile(1.0), Some(9.0));
    }

    #[test]
    fn uniform_stream_respects_certified_bound() {
        let mut rng = SimRng::seed_from(11);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.unit() * 500.0).collect();
        check_against_oracle(&samples, 64);
        check_against_oracle(&samples, 256);
    }

    #[test]
    fn exponential_tail_respects_certified_bound() {
        let mut rng = SimRng::seed_from(12);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.exponential(40.0)).collect();
        check_against_oracle(&samples, 32);
        check_against_oracle(&samples, 512);
    }

    #[test]
    fn tie_heavy_stream_respects_certified_bound() {
        // Latencies quantized to a handful of values — massive ties.
        let mut rng = SimRng::seed_from(13);
        let samples: Vec<f64> = (0..15_000).map(|_| (rng.below(7) as f64) * 12.5).collect();
        check_against_oracle(&samples, 64);
    }

    #[test]
    fn sorted_and_reverse_sorted_streams_respect_bound() {
        let ascending: Vec<f64> = (0..12_000).map(|i| i as f64).collect();
        check_against_oracle(&ascending, 64);
        let descending: Vec<f64> = (0..12_000).map(|i| (12_000 - i) as f64).collect();
        check_against_oracle(&descending, 64);
    }

    #[test]
    fn adversarial_spike_stream_respects_bound() {
        // Bimodal with a rare far tail: the shape of an overloaded system.
        let mut rng = SimRng::seed_from(14);
        let samples: Vec<f64> = (0..18_000)
            .map(|_| {
                if rng.chance(0.001) {
                    10_000.0 + rng.unit()
                } else if rng.chance(0.3) {
                    100.0 + rng.unit() * 5.0
                } else {
                    10.0 + rng.unit() * 2.0
                }
            })
            .collect();
        check_against_oracle(&samples, 32);
    }

    #[test]
    fn determinism_same_stream_same_sketch() {
        let mut rng = SimRng::seed_from(15);
        let samples: Vec<f64> = (0..9_000).map(|_| rng.exponential(3.0)).collect();
        let mut a = QuantileSketch::new(16);
        let mut b = QuantileSketch::new(16);
        for &v in &samples {
            a.insert(v);
            b.insert(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), b.quantile(q));
        }
        assert_eq!(a.rank_error_bound(), b.rank_error_bound());
        assert_eq!(a.stored_items(), b.stored_items());
    }

    #[test]
    fn merge_of_shards_matches_concatenation_bound() {
        let mut rng = SimRng::seed_from(16);
        let samples: Vec<f64> = (0..24_000).map(|_| rng.exponential(25.0)).collect();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));

        // Sketch of the concatenated stream.
        let mut whole = QuantileSketch::new(64);
        for &v in &samples {
            whole.insert(v);
        }
        // Merge of four shard sketches over the same data.
        let mut merged = QuantileSketch::new(64);
        for shard in samples.chunks(samples.len() / 4) {
            let mut s = QuantileSketch::new(64);
            for &v in shard {
                s.insert(v);
            }
            merged.merge(&s);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        let bound = merged.rank_error_bound().max(whole.rank_error_bound());
        assert!(bound < samples.len() as u64 / 2);
        for q in [0.01, 0.5, 0.9, 0.99, 0.999] {
            let em = rank_error(&sorted, q, merged.quantile(q).unwrap());
            let ew = rank_error(&sorted, q, whole.quantile(q).unwrap());
            assert!(em <= merged.rank_error_bound(), "merged q={q} err {em}");
            assert!(ew <= whole.rank_error_bound(), "whole q={q} err {ew}");
            // Merge and concatenation agree within the joint certificate.
            let rank_m = sorted.partition_point(|&v| v < merged.quantile(q).unwrap());
            let rank_w = sorted.partition_point(|&v| v < whole.quantile(q).unwrap());
            assert!(
                rank_m.abs_diff(rank_w) as u64
                    <= merged.rank_error_bound() + whole.rank_error_bound(),
                "q={q}: merged rank {rank_m} vs whole rank {rank_w}"
            );
        }
    }

    #[test]
    fn merge_into_empty_and_with_empty() {
        let mut rng = SimRng::seed_from(17);
        let mut a = QuantileSketch::new(32);
        for _ in 0..1000 {
            a.insert(rng.unit());
        }
        let empty = QuantileSketch::new(32);
        let before = a.quantile(0.5);
        a.merge(&empty);
        assert_eq!(a.quantile(0.5), before);
        let mut b = QuantileSketch::new(32);
        b.merge(&a);
        assert_eq!(b.count(), a.count());
        assert_eq!(b.quantile(0.99), a.quantile(0.99));
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = QuantileSketch::new(8);
        for i in 0..1000 {
            s.insert(i as f64);
        }
        assert!(s.rank_error_bound() > 0);
        s.reset();
        assert_eq!(s.count(), 0);
        assert_eq!(s.stored_items(), 0);
        assert_eq!(s.rank_error_bound(), 0);
        assert!(s.quantile(0.5).is_none());
        s.insert(7.0);
        assert_eq!(s.quantile(0.5), Some(7.0));
    }

    #[test]
    fn default_capacity_is_near_exact_at_run_scale() {
        // A typical fig10.x point completes a few tens of thousands of
        // transactions; the default capacity must keep p999 trustworthy.
        let mut rng = SimRng::seed_from(18);
        let n = 50_000u64;
        let mut s = QuantileSketch::default();
        for _ in 0..n {
            s.insert(rng.exponential(80.0));
        }
        // Certified error stays under 0.1% of the stream: p999 is meaningful.
        assert!(
            s.rank_error_bound() < n / 1000,
            "bound {} too large for n={n}",
            s.rank_error_bound()
        );
    }
}
