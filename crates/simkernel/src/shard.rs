//! Sharded future event list with conservative-lookahead synchronization.
//!
//! The sequential [`EventQueue`] is one calendar holding
//! every pending event.  This module splits the pending set over `S` *shards*
//! — the TPSIM engine uses one shard per simulated node — and keeps the shard
//! calendars on `W` worker threads, while a single *coordinator* (the
//! simulation loop's thread) retains the global `(time, seq)` order, the
//! global clock and the global sequence counter.
//!
//! # Round protocol
//!
//! Work proceeds in *rounds*.  At the start of a round the coordinator
//! computes a conservative horizon
//!
//! ```text
//! H = min(shard head times, staged insert times) + lookahead
//! ```
//!
//! using the NaN-hardened helpers in [`crate::time`] (a poisoned horizon
//! widens to `+inf` instead of stalling a shard).  Each worker then — in
//! parallel — applies the inserts staged for its shards and drains every
//! event with `time <= H` from its shard calendars into a batch that is
//! sorted by `(time, seq)`.  The coordinator merges the `W` sorted batches
//! on the fly as the simulation pops.
//!
//! Events scheduled *during* a round (by handlers of popped events) are
//! routed by the coordinator itself: an event at or before the round horizon
//! goes to a coordinator-local **spill heap** that participates in the merge
//! (it cannot wait for the next round — it may precede events already popped
//! into batches); an event past the horizon is **staged** for its shard and
//! handed to the owning worker at the next round boundary.
//!
//! # Why any horizon is safe
//!
//! Correctness does not depend on the lookahead value:
//!
//! * per-shard batches preserve the shard's pop order, and the coordinator's
//!   merge restores the global `(time, seq)` order across batches;
//! * every event *not* in a batch (staged, or still in a shard calendar) has
//!   `time > H`, while every batch or spill event has `time <= H`, so the
//!   merge never returns an event while a smaller-keyed one is hidden;
//! * spilled events carry sequence numbers larger than every batched event
//!   (they were scheduled later), so even exact time ties merge in the
//!   global insertion order.
//!
//! The lookahead therefore only tunes batch size (synchronization frequency)
//! — which is why a parallel run is bit-for-bit identical to the sequential
//! engine for *every* thread count and lookahead.  Liveness holds because the
//! horizon is at least `lookahead` past the globally earliest pending event,
//! so every round drains at least that event.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use crate::events::{EventQueue, ScheduledEvent};
use crate::time::{at_or_before, horizon, safe_min_all, SimTime};

/// Full event key: global order is ascending `(time, seq)` with times
/// compared by [`f64::total_cmp`].
type Key = (SimTime, u64);

#[inline]
fn key_lt(a: Key, b: Key) -> bool {
    a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)).is_lt()
}

/// An insert staged for a worker: `(local shard index, time, seq, payload)`.
struct StagedInsert<P> {
    local_shard: u32,
    time: SimTime,
    seq: u64,
    payload: P,
}

/// Coordinator-side spill entry, ordered as a min-heap on `(time, seq)`.
struct SpillEntry<P> {
    time: SimTime,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for SpillEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time.to_bits() == other.time.to_bits() && self.seq == other.seq
    }
}
impl<P> Eq for SpillEntry<P> {}
impl<P> PartialOrd for SpillEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for SpillEntry<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `BinaryHeap` is a max-heap; invert so the smallest key wins.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Shared mailbox between the coordinator and one worker.
struct WorkerShared<P> {
    cell: Mutex<WorkerCell<P>>,
    cv: Condvar,
}

struct WorkerCell<P> {
    /// Set by the coordinator to start a round; cleared by the worker when
    /// its batch is ready.
    working: bool,
    /// Terminates the worker loop; never cleared once set.
    shutdown: bool,
    /// Round horizon (inclusive) the worker drains up to.
    horizon: SimTime,
    /// Inserts staged since the last round, owned by this worker's shards.
    inbox: Vec<StagedInsert<P>>,
    /// The drained batch, sorted ascending by `(time, seq)`.
    outbox: Vec<ScheduledEvent<P>>,
    /// Key of the earliest event remaining in this worker's shards.
    head: Option<Key>,
}

impl<P> WorkerShared<P> {
    fn new() -> Self {
        Self {
            cell: Mutex::new(WorkerCell {
                working: false,
                shutdown: false,
                horizon: f64::NEG_INFINITY,
                inbox: Vec::new(),
                outbox: Vec::new(),
                head: None,
            }),
            cv: Condvar::new(),
        }
    }
}

/// The worker half of a sharded queue: owns the shard calendars assigned to
/// it and serves rounds until shut down.  Spawn [`ShardWorker::run`] on a
/// thread (the engine uses `std::thread::scope`).
pub struct ShardWorker<P> {
    shared: Arc<WorkerShared<P>>,
    shards: Vec<EventQueue<P>>,
}

impl<P: Send> ShardWorker<P> {
    /// Serves rounds until the coordinator (or its shutdown guard) signals
    /// shutdown.
    pub fn run(mut self) {
        loop {
            let (inbox, limit) = {
                let mut cell = self.shared.cell.lock().expect("worker mailbox");
                loop {
                    if cell.shutdown {
                        return;
                    }
                    if cell.working {
                        break;
                    }
                    cell = self.shared.cv.wait(cell).expect("worker mailbox");
                }
                (std::mem::take(&mut cell.inbox), cell.horizon)
            };
            // The expensive part runs unlocked: the shard calendars live on
            // this thread, not in the mailbox.
            for ins in inbox {
                self.shards[ins.local_shard as usize].schedule_preassigned(
                    ins.time,
                    ins.seq,
                    ins.payload,
                );
            }
            let (outbox, head) = self.drain_up_to(limit);
            let mut cell = self.shared.cell.lock().expect("worker mailbox");
            cell.outbox = outbox;
            cell.head = head;
            cell.working = false;
            self.shared.cv.notify_all();
        }
    }

    /// Merges this worker's shards up to `limit` (inclusive) into one batch
    /// sorted by `(time, seq)`, and reports the earliest remaining key.
    fn drain_up_to(&mut self, limit: SimTime) -> (Vec<ScheduledEvent<P>>, Option<Key>) {
        let mut out = Vec::new();
        loop {
            let mut best: Option<(usize, Key)> = None;
            for (i, shard) in self.shards.iter_mut().enumerate() {
                if let Some(key) = shard.peek_next() {
                    if best.is_none_or(|(_, b)| key_lt(key, b)) {
                        best = Some((i, key));
                    }
                }
            }
            match best {
                Some((i, key)) if at_or_before(key.0, limit) => {
                    out.push(self.shards[i].pop().expect("peeked event"));
                }
                other => return (out, other.map(|(_, key)| key)),
            }
        }
    }
}

/// Signals worker shutdown when dropped.  The engine holds one inside its
/// `thread::scope` so the workers exit — and the scope can join — even if
/// the simulation loop unwinds.
pub struct ShutdownGuard<P> {
    workers: Vec<Arc<WorkerShared<P>>>,
}

impl<P> Drop for ShutdownGuard<P> {
    fn drop(&mut self) {
        for shared in &self.workers {
            let mut cell = shared.cell.lock().expect("worker mailbox");
            cell.shutdown = true;
            shared.cv.notify_all();
        }
    }
}

/// The coordinator half of a sharded future event list.
///
/// Presents the same clock / schedule / pop surface as the sequential
/// [`EventQueue`] — with an explicit shard id per schedule
/// — and produces the exact same pop sequence for the same inputs, for every
/// worker count and lookahead (see the module docs for the argument).
pub struct ShardedEventQueue<P> {
    workers: Vec<Arc<WorkerShared<P>>>,
    num_shards: usize,
    lookahead: SimTime,

    now: SimTime,
    next_seq: u64,
    /// Total pending events anywhere: staged + shard calendars + batches +
    /// spill.
    len: usize,
    scheduled_total: u64,
    popped_total: u64,

    /// Per-worker staged inserts since the last round boundary.
    staging: Vec<Vec<StagedInsert<P>>>,
    /// Earliest staged time (`+inf` when nothing is staged).
    staged_min: SimTime,
    /// Per-worker event counts inside their shard calendars, so idle workers
    /// are skipped without touching their mailbox.
    worker_pending: Vec<usize>,
    /// Per-worker earliest remaining key, as reported at the last round.
    heads: Vec<Option<Key>>,

    /// The current round's batches, drained from the front.
    batches: Vec<VecDeque<ScheduledEvent<P>>>,
    /// Events scheduled during the round at or before its horizon.
    spill: BinaryHeap<SpillEntry<P>>,
    /// Horizon of the round currently being drained.
    round_horizon: SimTime,
    /// True from the first round until the queue drains empty.
    in_round: bool,
    /// Scratch: which workers participate in the current round.
    round_mask: Vec<bool>,

    /// Diagnostics: synchronization rounds run.
    rounds_total: u64,
}

impl<P: Send> ShardedEventQueue<P> {
    /// Creates a sharded queue with `num_shards` shard calendars distributed
    /// round-robin over `num_workers` workers, and a conservative `lookahead`
    /// (milliseconds of simulated time added to the earliest pending event to
    /// form each round's horizon).
    ///
    /// Returns the coordinator and the worker halves; spawn each
    /// [`ShardWorker::run`] on its own thread before the first pop.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`, `num_workers == 0`, `num_workers >
    /// num_shards`, or `lookahead` is negative or NaN.
    pub fn new(
        num_shards: usize,
        num_workers: usize,
        lookahead: SimTime,
    ) -> (Self, Vec<ShardWorker<P>>) {
        assert!(num_shards > 0, "need at least one shard");
        assert!(
            num_workers > 0 && num_workers <= num_shards,
            "worker count must be in 1..=num_shards (got {num_workers} for {num_shards} shards)"
        );
        assert!(
            lookahead >= 0.0 && !lookahead.is_nan(),
            "lookahead must be non-negative (got {lookahead})"
        );
        let shared: Vec<Arc<WorkerShared<P>>> = (0..num_workers)
            .map(|_| Arc::new(WorkerShared::new()))
            .collect();
        let runners = shared
            .iter()
            .enumerate()
            .map(|(w, s)| ShardWorker {
                shared: Arc::clone(s),
                // Worker `w` owns shards `w, w + W, w + 2W, ...`; shard `s`
                // maps to worker `s % W` at local index `s / W`.
                shards: (w..num_shards)
                    .step_by(num_workers)
                    .map(|_| EventQueue::new())
                    .collect(),
            })
            .collect();
        let coordinator = Self {
            workers: shared,
            num_shards,
            lookahead,
            now: 0.0,
            next_seq: 0,
            len: 0,
            scheduled_total: 0,
            popped_total: 0,
            staging: (0..num_workers).map(|_| Vec::new()).collect(),
            staged_min: f64::INFINITY,
            worker_pending: vec![0; num_workers],
            heads: vec![None; num_workers],
            batches: (0..num_workers).map(|_| VecDeque::new()).collect(),
            spill: BinaryHeap::new(),
            round_horizon: f64::NEG_INFINITY,
            in_round: false,
            round_mask: vec![false; num_workers],
            rounds_total: 0,
        };
        (coordinator, runners)
    }

    /// A guard whose drop signals every worker to exit.
    pub fn shutdown_guard(&self) -> ShutdownGuard<P> {
        ShutdownGuard {
            workers: self.workers.iter().map(Arc::clone).collect(),
        }
    }

    /// Current simulated time (the time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events across all shards, batches and staging.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending anywhere.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total number of events ever popped.
    #[inline]
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of workers.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Synchronization rounds run so far (diagnostic).
    #[inline]
    pub fn rounds_total(&self) -> u64 {
        self.rounds_total
    }

    /// Schedules `payload` on `shard` at absolute time `at`, with the exact
    /// clamp semantics of [`EventQueue::schedule_at`] against the *global*
    /// clock (shard-local clocks trail it).
    pub fn schedule_at(&mut self, shard: usize, at: SimTime, payload: P) {
        debug_assert!(at.is_finite(), "non-finite event time {at}");
        debug_assert!(
            at + 1e-9 >= self.now,
            "scheduling into the past: at={at} now={}",
            self.now
        );
        debug_assert!(shard < self.num_shards, "shard {shard} out of range");
        // `<=` (not `<`) also normalizes a stray `-0.0` to the clock's
        // `+0.0`, exactly like the sequential queue.
        let at = if at <= self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.len += 1;
        if self.in_round && at_or_before(at, self.round_horizon) {
            // May precede events already drained into this round's batches:
            // merge it on the fly instead of waiting for the next round.
            self.spill.push(SpillEntry {
                time: at,
                seq,
                payload,
            });
        } else {
            let num_workers = self.workers.len();
            self.staging[shard % num_workers].push(StagedInsert {
                local_shard: (shard / num_workers) as u32,
                time: at,
                seq,
                payload,
            });
            self.staged_min = crate::time::safe_min(self.staged_min, at);
        }
    }

    /// Schedules `payload` on `shard` after `delay` milliseconds, relative to
    /// the global clock (matching [`EventQueue::schedule_in`]).
    #[inline]
    pub fn schedule_in(&mut self, shard: usize, delay: SimTime, payload: P) {
        debug_assert!(delay >= 0.0, "negative delay {delay}");
        let now = self.now;
        self.schedule_at(shard, now + delay.max(0.0), payload);
    }

    /// Pops the globally next event — ascending `(time, seq)` over *all*
    /// shards — and advances the global clock, running synchronization
    /// rounds as needed.
    pub fn pop(&mut self) -> Option<ScheduledEvent<P>> {
        loop {
            // Earliest batch head across workers.
            let mut best: Option<(usize, Key)> = None;
            for (w, batch) in self.batches.iter().enumerate() {
                if let Some(front) = batch.front() {
                    let key = (front.time, front.seq);
                    if best.is_none_or(|(_, b)| key_lt(key, b)) {
                        best = Some((w, key));
                    }
                }
            }
            // Every spill entry lies at or before the round horizon, so the
            // spill head always competes with the batch heads.
            if let Some(spill_head) = self.spill.peek() {
                let key = (spill_head.time, spill_head.seq);
                if best.is_none_or(|(_, b)| key_lt(key, b)) {
                    let e = self.spill.pop().expect("peeked spill entry");
                    return Some(self.emit(e.time, e.seq, e.payload));
                }
            }
            if let Some((w, _)) = best {
                let e = self.batches[w].pop_front().expect("peeked batch front");
                return Some(self.emit(e.time, e.seq, e.payload));
            }
            debug_assert!(self.spill.is_empty(), "spill drains within its round");
            if self.len == 0 {
                self.in_round = false;
                self.round_horizon = f64::NEG_INFINITY;
                return None;
            }
            self.run_round();
        }
    }

    /// Advances the clock and counters for one popped event.
    #[inline]
    fn emit(&mut self, time: SimTime, seq: u64, payload: P) -> ScheduledEvent<P> {
        debug_assert!(self.len > 0, "emit with no scheduled events");
        self.len -= 1;
        self.popped_total += 1;
        debug_assert!(time + 1e-9 >= self.now, "time went backwards");
        self.now = time.max(self.now);
        ScheduledEvent {
            time: self.now,
            seq,
            payload,
        }
    }

    /// One synchronization round: computes the horizon, hands the staged
    /// inserts to the workers, and collects the drained batches and new shard
    /// heads.  Workers with no pending events and no staged inserts are
    /// skipped entirely.
    fn run_round(&mut self) {
        debug_assert!(self.len > 0);
        let base = safe_min_all(
            self.heads
                .iter()
                .filter_map(|h| h.map(|(t, _)| t))
                .chain(std::iter::once(self.staged_min)),
        )
        .expect("pending events imply a finite horizon base");
        let h = horizon(base, self.lookahead);
        self.rounds_total += 1;

        // Kick every participating worker, then collect — the waits overlap.
        for (w, shared) in self.workers.iter().enumerate() {
            if self.worker_pending[w] == 0 && self.staging[w].is_empty() {
                self.round_mask[w] = false;
                continue;
            }
            self.round_mask[w] = true;
            self.worker_pending[w] += self.staging[w].len();
            let mut cell = shared.cell.lock().expect("worker mailbox");
            debug_assert!(!cell.working, "round overlap");
            cell.inbox = std::mem::take(&mut self.staging[w]);
            cell.horizon = h;
            cell.working = true;
            shared.cv.notify_all();
        }
        self.staged_min = f64::INFINITY;
        for (w, shared) in self.workers.iter().enumerate() {
            if !self.round_mask[w] {
                continue;
            }
            let mut cell = shared.cell.lock().expect("worker mailbox");
            while cell.working {
                cell = shared.cv.wait(cell).expect("worker mailbox");
            }
            debug_assert!(self.batches[w].is_empty());
            self.batches[w] = VecDeque::from(std::mem::take(&mut cell.outbox));
            self.heads[w] = cell.head;
            debug_assert!(
                self.worker_pending[w] >= self.batches[w].len(),
                "worker returned more events than were pending"
            );
            self.worker_pending[w] -= self.batches[w].len();
        }
        self.round_horizon = h;
        self.in_round = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the coordinator with its workers on scoped threads.
    fn with_queue<R: Send>(
        num_shards: usize,
        num_workers: usize,
        lookahead: SimTime,
        f: impl FnOnce(&mut ShardedEventQueue<u64>) -> R + Send,
    ) -> R {
        let (mut q, runners) = ShardedEventQueue::new(num_shards, num_workers, lookahead);
        std::thread::scope(|s| {
            for r in runners {
                s.spawn(move || r.run());
            }
            let _guard = q.shutdown_guard();
            f(&mut q)
        })
    }

    #[test]
    fn pops_in_global_time_order_across_shards() {
        with_queue(4, 2, 1.0, |q| {
            q.schedule_at(3, 5.0, 0);
            q.schedule_at(0, 1.0, 1);
            q.schedule_at(2, 3.0, 2);
            q.schedule_at(1, 2.0, 3);
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, vec![1, 3, 2, 0]);
            assert_eq!(q.popped_total(), 4);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn ties_across_shards_resolve_in_schedule_order() {
        with_queue(8, 4, 0.5, |q| {
            for i in 0..32 {
                q.schedule_at(i % 8, 2.0, i as u64);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, (0..32).collect::<Vec<_>>());
        });
    }

    #[test]
    fn handler_scheduled_events_inside_the_horizon_still_merge() {
        // A very large lookahead forces everything scheduled mid-drain into
        // the spill path; order must survive.
        with_queue(2, 2, 1e9, |q| {
            q.schedule_at(0, 1.0, 1);
            q.schedule_at(1, 10.0, 2);
            let first = q.pop().unwrap();
            assert_eq!(first.payload, 1);
            // Scheduled during the round, before the other batch event.
            q.schedule_at(1, 2.0, 3);
            q.schedule_at(0, 1.5, 4);
            let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, vec![4, 3, 2]);
        });
    }

    #[test]
    fn clock_and_clamp_match_sequential_semantics() {
        with_queue(2, 1, 1.0, |q| {
            q.schedule_in(0, 4.0, 0);
            q.schedule_in(1, 2.0, 1);
            assert_eq!(q.now(), 0.0);
            assert_eq!(q.pop().unwrap().payload, 1);
            assert!((q.now() - 2.0).abs() < 1e-12);
            // schedule_in is relative to the *global* clock.
            q.schedule_in(0, 0.0, 2);
            let e = q.pop().unwrap();
            assert_eq!(e.payload, 2);
            assert!((e.time - 2.0).abs() < 1e-12);
            assert_eq!(q.pop().unwrap().payload, 0);
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn zero_lookahead_still_makes_progress() {
        with_queue(3, 3, 0.0, |q| {
            let mut t = 0.0;
            for i in 0..100u64 {
                t += 0.37;
                q.schedule_at((i % 3) as usize, t, i);
            }
            let mut popped = 0u64;
            while let Some(e) = q.pop() {
                assert_eq!(e.payload, popped);
                popped += 1;
            }
            assert_eq!(popped, 100);
        });
    }

    #[test]
    fn refills_after_draining_empty() {
        with_queue(2, 2, 1.0, |q| {
            q.schedule_at(0, 1.0, 1);
            assert_eq!(q.pop().unwrap().payload, 1);
            assert!(q.pop().is_none());
            q.schedule_at(1, 2.0, 2);
            q.schedule_at(0, 1.5, 3);
            assert_eq!(q.pop().unwrap().payload, 3);
            assert_eq!(q.pop().unwrap().payload, 2);
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn hold_model_matches_sequential_queue_bit_for_bit() {
        // The engine's steady-state pattern: pop one, schedule a successor a
        // short (sometimes zero) step ahead.  The sharded queue must produce
        // the sequential queue's exact (time, seq, payload) stream.
        for &(shards, workers, lookahead) in &[
            (1usize, 1usize, 0.5),
            (4, 2, 0.5),
            (8, 4, 0.0),
            (8, 8, 50.0),
        ] {
            let mut seq_q: EventQueue<u64> = EventQueue::new();
            let mut rng_seq = crate::SimRng::seed_from(0xBEEF);
            let mut rng_par = crate::SimRng::seed_from(0xBEEF);
            with_queue(shards, workers, lookahead, |par_q| {
                for i in 0..64u64 {
                    let t = (i as f64) * 0.21;
                    seq_q.schedule_at(t, i);
                    par_q.schedule_at((i % shards as u64) as usize, t, i);
                }
                for i in 0..20_000u64 {
                    let a = seq_q.pop().expect("sequential event");
                    let b = par_q.pop().expect("parallel event");
                    assert_eq!(
                        (a.time.to_bits(), a.seq, a.payload),
                        (b.time.to_bits(), b.seq, b.payload),
                        "diverged at pop {i} (shards={shards} workers={workers} \
                         lookahead={lookahead})"
                    );
                    let d1 = rng_seq.exponential(1.3);
                    let d2 = rng_par.exponential(1.3);
                    assert_eq!(d1.to_bits(), d2.to_bits());
                    let delay = if a.payload.is_multiple_of(7) { 0.0 } else { d1 };
                    let next = 64 + i;
                    seq_q.schedule_in(delay, next);
                    par_q.schedule_in((next % shards as u64) as usize, delay, next);
                }
            });
        }
    }
}
