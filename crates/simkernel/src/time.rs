//! Simulated time.
//!
//! All TPSIM quantities are expressed in **milliseconds** of simulated time,
//! stored as `f64`.  The paper's parameter tables use a mixture of units
//! (microseconds for NVEM, milliseconds for controllers and disks, MIPS for
//! CPU speeds); the helpers here perform those conversions in one place so the
//! rest of the code never multiplies by stray constants.

/// Simulated time / durations, in milliseconds.
pub type SimTime = f64;

/// One microsecond expressed in [`SimTime`] units.
pub const MICROSECOND: SimTime = 0.001;

/// One millisecond expressed in [`SimTime`] units.
pub const MILLISECOND: SimTime = 1.0;

/// One second expressed in [`SimTime`] units.
pub const SECOND: SimTime = 1000.0;

/// Converts a duration given in microseconds into [`SimTime`].
#[inline]
pub fn from_micros(us: f64) -> SimTime {
    us * MICROSECOND
}

/// Converts a duration given in seconds into [`SimTime`].
#[inline]
pub fn from_secs(s: f64) -> SimTime {
    s * SECOND
}

/// Converts a [`SimTime`] duration into seconds.
#[inline]
pub fn to_secs(t: SimTime) -> f64 {
    t / SECOND
}

/// Time (ms) to execute `instructions` on a CPU rated at `mips` million
/// instructions per second.
///
/// The paper charges e.g. 40,000 instructions per object reference on a
/// 50-MIPS engine, i.e. 0.8 ms.
#[inline]
pub fn instr_time(instructions: f64, mips: f64) -> SimTime {
    debug_assert!(mips > 0.0, "MIPS rate must be positive");
    // instructions / (mips * 1e6) seconds == instructions / (mips * 1e3) ms
    instructions / (mips * 1000.0)
}

/// Mean inter-arrival time (ms) for a Poisson arrival process with
/// `per_second` arrivals per second.
#[inline]
pub fn interarrival_ms(per_second: f64) -> SimTime {
    debug_assert!(per_second > 0.0, "arrival rate must be positive");
    SECOND / per_second
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_time_matches_paper_pathlength() {
        // 250,000 instructions at 50 MIPS = 5 ms per transaction (section 4.1).
        let t = instr_time(250_000.0, 50.0);
        assert!((t - 5.0).abs() < 1e-9);
    }

    #[test]
    fn object_reference_cost() {
        // 40,000 instructions at 50 MIPS = 0.8 ms.
        assert!((instr_time(40_000.0, 50.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn micros_conversion() {
        // The NVEM access time of 50 microseconds is 0.05 ms.
        assert!((from_micros(50.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn interarrival_for_500_tps() {
        assert!((interarrival_ms(500.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_roundtrip() {
        let t = from_secs(2.5);
        assert!((t - 2500.0).abs() < 1e-12);
        assert!((to_secs(t) - 2.5).abs() < 1e-12);
    }
}
