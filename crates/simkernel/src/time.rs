//! Simulated time.
//!
//! All TPSIM quantities are expressed in **milliseconds** of simulated time,
//! stored as `f64`.  The paper's parameter tables use a mixture of units
//! (microseconds for NVEM, milliseconds for controllers and disks, MIPS for
//! CPU speeds); the helpers here perform those conversions in one place so the
//! rest of the code never multiplies by stray constants.

/// Simulated time / durations, in milliseconds.
pub type SimTime = f64;

/// One microsecond expressed in [`SimTime`] units.
pub const MICROSECOND: SimTime = 0.001;

/// One millisecond expressed in [`SimTime`] units.
pub const MILLISECOND: SimTime = 1.0;

/// One second expressed in [`SimTime`] units.
pub const SECOND: SimTime = 1000.0;

/// Converts a duration given in microseconds into [`SimTime`].
#[inline]
pub fn from_micros(us: f64) -> SimTime {
    us * MICROSECOND
}

/// Converts a duration given in seconds into [`SimTime`].
#[inline]
pub fn from_secs(s: f64) -> SimTime {
    s * SECOND
}

/// Converts a [`SimTime`] duration into seconds.
#[inline]
pub fn to_secs(t: SimTime) -> f64 {
    t / SECOND
}

/// Time (ms) to execute `instructions` on a CPU rated at `mips` million
/// instructions per second.
///
/// The paper charges e.g. 40,000 instructions per object reference on a
/// 50-MIPS engine, i.e. 0.8 ms.
#[inline]
pub fn instr_time(instructions: f64, mips: f64) -> SimTime {
    debug_assert!(mips > 0.0, "MIPS rate must be positive");
    // instructions / (mips * 1e6) seconds == instructions / (mips * 1e3) ms
    instructions / (mips * 1000.0)
}

/// Mean inter-arrival time (ms) for a Poisson arrival process with
/// `per_second` arrivals per second.
#[inline]
pub fn interarrival_ms(per_second: f64) -> SimTime {
    debug_assert!(per_second > 0.0, "arrival rate must be positive");
    SECOND / per_second
}

// ---------------------------------------------------------------------------
// NaN-safe horizon arithmetic for the sharded kernel.
//
// The conservative-lookahead protocol computes a *horizon* `min(shard
// clocks) + lookahead` every synchronization round and lets shards advance
// up to it.  `debug_assert!(is_finite)` in the event queue is the only NaN
// guard in the kernel, so in a release build a NaN that slipped into the
// arithmetic would poison every plain `f64::min` / `<` comparison
// (`NaN < h` is `false`) and silently stall the shards forever.  The helpers
// below give the horizon math a total order instead: a NaN operand is
// treated as "no bound" (+inf), which at worst makes a round less
// conservative about batching but can never stop the simulation from making
// progress.  Debug builds still assert so the source of a NaN is found.

/// Minimum of two times under [`f64::total_cmp`], ignoring NaN operands: a
/// NaN behaves as "no constraint" (+inf) rather than poisoning the result.
#[inline]
pub fn safe_min(a: SimTime, b: SimTime) -> SimTime {
    debug_assert!(!a.is_nan() || !b.is_nan(), "both horizon operands are NaN");
    if a.is_nan() {
        return b;
    }
    if b.is_nan() || a.total_cmp(&b).is_le() {
        a
    } else {
        b
    }
}

/// Folds [`safe_min`] over an iterator of candidate bounds.  Returns `None`
/// only when every candidate is NaN (or the iterator is empty).
#[inline]
pub fn safe_min_all<I: IntoIterator<Item = SimTime>>(times: I) -> Option<SimTime> {
    times
        .into_iter()
        .filter(|t| !t.is_nan())
        .reduce(|a, b| if a.total_cmp(&b).is_le() { a } else { b })
}

/// The conservative horizon `base + lookahead`, hardened against NaN: a NaN
/// result (or operand) yields `+inf`, i.e. "everything is safe to process",
/// which preserves liveness.  `-inf` inputs are likewise promoted so the
/// horizon can never move *behind* every event.
#[inline]
pub fn horizon(base: SimTime, lookahead: SimTime) -> SimTime {
    debug_assert!(!base.is_nan(), "NaN horizon base");
    debug_assert!(!lookahead.is_nan(), "NaN lookahead");
    let h = base + lookahead;
    if h.is_nan() {
        f64::INFINITY
    } else {
        h
    }
}

/// True if an event at time `t` lies at or before horizon `h` (inclusive),
/// under [`f64::total_cmp`].  A NaN horizon admits every finite time — a
/// poisoned horizon widens the safe window instead of stalling it.  A NaN
/// event time is *never* admitted (it would corrupt the merge order); debug
/// builds assert.
#[inline]
pub fn at_or_before(t: SimTime, h: SimTime) -> bool {
    debug_assert!(!t.is_nan(), "NaN event time");
    if t.is_nan() {
        return false;
    }
    h.is_nan() || t.total_cmp(&h).is_le()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruction_time_matches_paper_pathlength() {
        // 250,000 instructions at 50 MIPS = 5 ms per transaction (section 4.1).
        let t = instr_time(250_000.0, 50.0);
        assert!((t - 5.0).abs() < 1e-9);
    }

    #[test]
    fn object_reference_cost() {
        // 40,000 instructions at 50 MIPS = 0.8 ms.
        assert!((instr_time(40_000.0, 50.0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn micros_conversion() {
        // The NVEM access time of 50 microseconds is 0.05 ms.
        assert!((from_micros(50.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn interarrival_for_500_tps() {
        assert!((interarrival_ms(500.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_roundtrip() {
        let t = from_secs(2.5);
        assert!((t - 2500.0).abs() < 1e-12);
        assert!((to_secs(t) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn safe_min_picks_smaller_finite() {
        assert_eq!(safe_min(1.0, 2.0), 1.0);
        assert_eq!(safe_min(2.0, 1.0), 1.0);
        assert_eq!(safe_min(-0.0, 0.0), -0.0_f64);
        assert_eq!(safe_min(f64::INFINITY, 3.0), 3.0);
    }

    #[test]
    fn safe_min_ignores_nan() {
        assert_eq!(safe_min(f64::NAN, 4.0), 4.0);
        assert_eq!(safe_min(4.0, f64::NAN), 4.0);
    }

    #[test]
    fn safe_min_all_skips_nan_candidates() {
        assert_eq!(safe_min_all([f64::NAN, 7.0, 3.0, f64::NAN]), Some(3.0));
        assert_eq!(safe_min_all([f64::NAN, f64::NAN]), None);
        assert_eq!(safe_min_all(std::iter::empty()), None);
    }

    #[test]
    fn horizon_is_plain_addition_for_finite_inputs() {
        assert!((horizon(10.0, 0.5) - 10.5).abs() < 1e-12);
        assert_eq!(horizon(f64::INFINITY, 1.0), f64::INFINITY);
    }

    #[test]
    fn horizon_nan_becomes_unbounded() {
        // inf + (-inf) is the one finite-operand way to manufacture a NaN sum.
        assert_eq!(horizon(f64::INFINITY, f64::NEG_INFINITY), f64::INFINITY);
    }

    #[test]
    fn at_or_before_is_inclusive_and_total() {
        assert!(at_or_before(5.0, 5.0));
        assert!(at_or_before(4.999, 5.0));
        assert!(!at_or_before(5.001, 5.0));
        // -0.0 <= +0.0 under total_cmp: a clamped time still passes a zero
        // horizon.
        assert!(at_or_before(-0.0, 0.0));
        assert!(at_or_before(123.0, f64::INFINITY));
    }

    #[test]
    fn nan_horizon_never_stalls() {
        // The release-build hazard the helpers exist for: a NaN horizon must
        // admit every pending event instead of comparing false forever.
        assert!(at_or_before(0.0, f64::NAN));
        assert!(at_or_before(1e12, f64::NAN));
    }
}
