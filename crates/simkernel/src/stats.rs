//! Statistics accumulators.
//!
//! TPSIM reports response times (tally statistics over observations), device
//! utilizations and queue lengths (time-weighted statistics), hit ratios and
//! event counts (counters), and response-time distributions (histograms).
//! All accumulators support being reset at the end of a warm-up period.

use crate::time::SimTime;

/// Tally statistic: mean / min / max / variance over discrete observations.
#[derive(Debug, Clone, Default)]
pub struct Tally {
    count: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.sum_sq += value * value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or `None` if no observations were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population variance, or `None` with fewer than two observations.
    pub fn variance(&self) -> Option<f64> {
        if self.count < 2 {
            return None;
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        Some((self.sum_sq / n - mean * mean).max(0.0))
    }

    /// Standard deviation, or `None` with fewer than two observations.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Clears all observations.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

/// Time-weighted statistic for piecewise-constant quantities (queue lengths,
/// number of busy servers, multiprogramming level, ...).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: Option<SimTime>,
    last_value: f64,
    weighted_sum: f64,
    total_time: SimTime,
    max: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            last_time: None,
            last_value: 0.0,
            weighted_sum: 0.0,
            total_time: 0.0,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records that the observed quantity takes value `value` from time `now`
    /// onward.  The previous value is weighted by the elapsed interval.
    pub fn record(&mut self, now: SimTime, value: f64) {
        if let Some(prev) = self.last_time {
            let dt = (now - prev).max(0.0);
            self.weighted_sum += self.last_value * dt;
            self.total_time += dt;
        }
        self.last_time = Some(now);
        self.last_value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Time-weighted mean over the observed interval.
    pub fn mean(&self) -> Option<f64> {
        (self.total_time > 0.0).then(|| self.weighted_sum / self.total_time)
    }

    /// Maximum observed value, or `None` if nothing was recorded.
    pub fn max(&self) -> Option<f64> {
        (self.max > f64::NEG_INFINITY).then_some(self.max)
    }

    /// Value most recently recorded.
    pub fn current(&self) -> f64 {
        self.last_value
    }
}

/// A named monotone counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// This counter as a fraction of `total` (0 if `total` is 0).
    pub fn ratio_of(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// Fixed-bucket histogram for response-time distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: f64,
    buckets: Vec<u64>,
    overflow: u64,
    tally: Tally,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each;
    /// values beyond the last bucket are counted in an overflow bin.
    pub fn new(bucket_width: f64, buckets: usize) -> Self {
        assert!(bucket_width > 0.0 && buckets > 0);
        Self {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            tally: Tally::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.tally.record(value);
        let idx = (value / self.bucket_width).floor();
        if idx < 0.0 {
            self.buckets[0] += 1;
        } else if (idx as usize) < self.buckets.len() {
            self.buckets[idx as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Underlying tally (mean/min/max of the recorded values).
    pub fn tally(&self) -> &Tally {
        &self.tally
    }

    /// Approximate quantile `q` in `[0,1]` from the bucket boundaries.
    /// Returns `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.tally.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 1.0) * self.bucket_width);
            }
        }
        // Fell into the overflow bucket.
        self.tally.max()
    }

    /// Number of values that exceeded the bucketed range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Clears the histogram.
    pub fn reset(&mut self) {
        for b in &mut self.buckets {
            *b = 0;
        }
        self.overflow = 0;
        self.tally.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_basic_moments() {
        let mut t = Tally::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            t.record(v);
        }
        assert_eq!(t.count(), 4);
        assert_eq!(t.mean(), Some(2.5));
        assert_eq!(t.min(), Some(1.0));
        assert_eq!(t.max(), Some(4.0));
        assert!((t.variance().unwrap() - 1.25).abs() < 1e-12);
        assert!((t.std_dev().unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn tally_empty_is_none() {
        let t = Tally::new();
        assert_eq!(t.mean(), None);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.variance(), None);
    }

    #[test]
    fn tally_reset() {
        let mut t = Tally::new();
        t.record(5.0);
        t.reset();
        assert_eq!(t.count(), 0);
        assert_eq!(t.mean(), None);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 2.0); // value 2 for 0..10
        tw.record(10.0, 4.0); // value 4 for 10..20
        tw.record(20.0, 0.0);
        assert!((tw.mean().unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(tw.max(), Some(4.0));
        assert_eq!(tw.current(), 0.0);
    }

    #[test]
    fn time_weighted_single_sample_has_no_mean() {
        let mut tw = TimeWeighted::new();
        tw.record(5.0, 1.0);
        assert_eq!(tw.mean(), None);
    }

    #[test]
    fn counter_ratio() {
        let mut c = Counter::new();
        c.add(30);
        c.incr();
        assert_eq!(c.get(), 31);
        assert!((c.ratio_of(62) - 0.5).abs() < 1e-12);
        assert_eq!(c.ratio_of(0), 0.0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1.0, 100);
        for i in 1..=100 {
            h.record(i as f64 - 0.5);
        }
        assert_eq!(h.tally().count(), 100);
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p95 = h.quantile(0.95).unwrap();
        assert!((p95 - 95.0).abs() <= 1.0, "p95 {p95}");
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn histogram_overflow_and_reset() {
        let mut h = Histogram::new(1.0, 10);
        h.record(100.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(0.5), Some(100.0));
        h.reset();
        assert_eq!(h.tally().count(), 0);
        assert_eq!(h.quantile(0.5), None);
    }
}
