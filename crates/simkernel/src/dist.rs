//! Reusable probability distributions.
//!
//! TPSIM's workload model needs a handful of distributions: exponential
//! service times and inter-arrival times, uniform selection within a
//! sub-partition, and general discrete distributions (the relative reference
//! matrix and the b/c-rule sub-partition weights).  Everything samples from a
//! [`SimRng`] so runs remain deterministic.

use crate::rng::SimRng;

/// A distribution that can produce an `f64` sample from the simulation RNG.
pub trait Draw {
    /// Draws one sample.
    fn draw(&self, rng: &mut SimRng) -> f64;

    /// The distribution's mean, if defined.
    fn mean(&self) -> f64;
}

/// Exponential distribution with a given mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with `mean > 0`.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
        Self { mean }
    }
}

impl Draw for Exponential {
    #[inline]
    fn draw(&self, rng: &mut SimRng) -> f64 {
        rng.exponential(self.mean)
    }

    #[inline]
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Either a fixed constant or an exponential around a mean.
///
/// Transaction sizes and CPU bursts in the paper can be "fixed or variable; in
/// the latter case the actual number ... is determined according to an
/// exponential distribution over the specified mean" (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FixedOrExp {
    /// Always returns the same value.
    Fixed(f64),
    /// Exponentially distributed around the mean.
    Exp(f64),
}

impl Draw for FixedOrExp {
    #[inline]
    fn draw(&self, rng: &mut SimRng) -> f64 {
        match *self {
            FixedOrExp::Fixed(v) => v,
            FixedOrExp::Exp(mean) => rng.exponential(mean),
        }
    }

    #[inline]
    fn mean(&self) -> f64 {
        match *self {
            FixedOrExp::Fixed(v) | FixedOrExp::Exp(v) => v,
        }
    }
}

/// Continuous uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformRange {
    lo: f64,
    hi: f64,
}

impl UniformRange {
    /// Creates a uniform distribution over `[lo, hi)` with `hi >= lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(hi >= lo, "invalid uniform range [{lo}, {hi})");
        Self { lo, hi }
    }
}

impl Draw for UniformRange {
    #[inline]
    fn draw(&self, rng: &mut SimRng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    #[inline]
    fn mean(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

/// A discrete distribution over `0..n` built from arbitrary non-negative
/// weights, sampled by binary search over the cumulative weights.
///
/// Used for the relative reference matrix rows and for sub-partition
/// selection, where the same distribution is sampled millions of times.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    cumulative: Vec<f64>,
    total: f64,
}

impl DiscreteDist {
    /// Builds the distribution.  Returns `None` if every weight is zero or the
    /// slice is empty.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
            total += w;
            cumulative.push(total);
        }
        if total <= 0.0 {
            return None;
        }
        Some(Self { cumulative, total })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no categories (never constructed; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a category index.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let x = rng.unit() * self.total;
        // Binary search for the first cumulative weight > x.  total_cmp is
        // identical to partial_cmp on the finite weights stored here, but
        // cannot silently collapse the ordering if a NaN ever slips in.
        match self.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of category `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }
}

/// Zipf-like distribution over `0..n` with skew parameter `theta` in `[0, 1)`.
///
/// Used only by the synthetic trace generator (the paper's own synthetic model
/// uses sub-partitions / the b-c rule instead).  `theta = 0` is uniform;
/// values around 0.8–0.99 give the heavy skew typical of OLTP traces.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `0..n` (n >= 1) with skew `theta` in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one element");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zeta_n = Self::zeta(n, theta);
        let zeta_theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_theta / zeta_n);
        Self {
            n,
            theta,
            alpha,
            zeta_n,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation is fine for the sizes used in the trace generator
        // (tens of thousands of elements, computed once).
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Samples a value in `0..n` (0 is the most popular element).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.unit();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u) - self.eta + 1.0).max(1e-12);
        let k = (self.n as f64 * v.powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Always false (a Zipf distribution has at least one element).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Unused accessor kept for diagnostics.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

/// A cyclic piecewise-constant arrival-rate function.
///
/// Segments are `(duration_ms, rate_per_second)` pairs; the pattern repeats
/// forever.  This is the substrate for time-varying (non-homogeneous) Poisson
/// arrivals: the engine draws a unit exponential `e` and asks for the earliest
/// time `T` with `∫ rate(s)/1000 ds = e` past the current clock — the standard
/// inversion method, exact for piecewise-constant rates.
#[derive(Debug, Clone)]
pub struct PiecewiseRate {
    /// `(duration_ms, rate_per_second)` per segment.
    segments: Vec<(f64, f64)>,
    /// Sum of segment durations (one cycle, ms).
    cycle_ms: f64,
    /// Expected events per cycle (`Σ duration/1000 · rate`).
    events_per_cycle: f64,
}

impl PiecewiseRate {
    /// Builds a cyclic rate function.  Every duration must be positive and
    /// finite, every rate non-negative and finite, and at least one segment
    /// must have a positive rate (otherwise no arrival ever happens and the
    /// inversion would not terminate).
    pub fn new(segments: Vec<(f64, f64)>) -> Self {
        assert!(!segments.is_empty(), "rate function needs segments");
        for &(dur, rate) in &segments {
            assert!(
                dur.is_finite() && dur > 0.0,
                "segment durations must be positive and finite"
            );
            assert!(
                rate.is_finite() && rate >= 0.0,
                "segment rates must be non-negative and finite"
            );
        }
        let cycle_ms: f64 = segments.iter().map(|s| s.0).sum();
        let events_per_cycle: f64 = segments.iter().map(|s| s.0 / 1000.0 * s.1).sum();
        assert!(
            events_per_cycle > 0.0,
            "at least one segment must have a positive rate"
        );
        Self {
            segments,
            cycle_ms,
            events_per_cycle,
        }
    }

    /// Length of one cycle in milliseconds.
    pub fn cycle_ms(&self) -> f64 {
        self.cycle_ms
    }

    /// Instantaneous rate (events per second) at time `t_ms`.
    pub fn rate_at(&self, t_ms: f64) -> f64 {
        let mut phase = (t_ms % self.cycle_ms + self.cycle_ms) % self.cycle_ms;
        for &(dur, rate) in &self.segments {
            if phase < dur {
                return rate;
            }
            phase -= dur;
        }
        // Only reachable through float round-off at the cycle boundary.
        self.segments[self.segments.len() - 1].1
    }

    /// Expected number of events in `[0, t_ms]`.
    pub fn cumulative(&self, t_ms: f64) -> f64 {
        debug_assert!(t_ms >= 0.0);
        let cycles = (t_ms / self.cycle_ms).floor();
        let mut phase = t_ms - cycles * self.cycle_ms;
        let mut acc = cycles * self.events_per_cycle;
        for &(dur, rate) in &self.segments {
            if phase <= 0.0 {
                break;
            }
            acc += phase.min(dur) / 1000.0 * rate;
            phase -= dur;
        }
        acc
    }

    /// Expected number of events in `[t0_ms, t1_ms]`.
    pub fn expected_events(&self, t0_ms: f64, t1_ms: f64) -> f64 {
        (self.cumulative(t1_ms) - self.cumulative(t0_ms)).max(0.0)
    }

    /// Earliest time `T` with `cumulative(T) >= target` — the inverse of the
    /// cumulative expected-event function.  Zero-rate segments are skipped
    /// (their integral is flat, so no arrival can land inside them).
    fn invert(&self, target: f64) -> f64 {
        let cycles = (target / self.events_per_cycle).floor();
        let mut rem = target - cycles * self.events_per_cycle;
        let mut t = cycles * self.cycle_ms;
        for &(dur, rate) in &self.segments {
            let cap = dur / 1000.0 * rate;
            if rate > 0.0 && rem <= cap {
                return t + rem / (rate / 1000.0);
            }
            rem -= cap;
            t += dur;
        }
        // Float round-off pushed `rem` past the cycle; land on the boundary
        // (the next call continues from there).
        t
    }

    /// Absolute time of the next arrival after `t_ms`, given a fresh unit
    /// exponential draw `e > 0` (non-homogeneous Poisson by inversion).
    pub fn next_arrival_after(&self, t_ms: f64, e: f64) -> f64 {
        debug_assert!(e > 0.0);
        self.invert(self.cumulative(t_ms) + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_draw_mean() {
        let d = Exponential::new(2.0);
        let mut rng = SimRng::seed_from(1);
        let n = 100_000;
        let avg: f64 = (0..n).map(|_| d.draw(&mut rng)).sum::<f64>() / n as f64;
        assert!((avg - 2.0).abs() < 0.05, "avg {avg}");
        assert_eq!(d.mean(), 2.0);
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_nonpositive_mean() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn fixed_or_exp_fixed_is_constant() {
        let d = FixedOrExp::Fixed(4.0);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(d.draw(&mut rng), 4.0);
        }
        assert_eq!(d.mean(), 4.0);
    }

    #[test]
    fn uniform_range_bounds_and_mean() {
        let d = UniformRange::new(1.0, 3.0);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let x = d.draw(&mut rng);
            assert!((1.0..3.0).contains(&x));
        }
        assert_eq!(d.mean(), 2.0);
    }

    #[test]
    fn discrete_dist_matches_weights() {
        let d = DiscreteDist::new(&[1.0, 3.0, 6.0]).unwrap();
        assert_eq!(d.len(), 3);
        assert!((d.probability(0) - 0.1).abs() < 1e-12);
        assert!((d.probability(2) - 0.6).abs() < 1e-12);
        let mut rng = SimRng::seed_from(77);
        let mut counts = [0usize; 3];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        let f2 = counts[2] as f64 / 100_000.0;
        assert!((f2 - 0.6).abs() < 0.01, "f2 {f2}");
    }

    #[test]
    fn discrete_dist_rejects_degenerate_input() {
        assert!(DiscreteDist::new(&[]).is_none());
        assert!(DiscreteDist::new(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn zipf_is_skewed_toward_small_indices() {
        let z = Zipf::new(10_000, 0.9);
        let mut rng = SimRng::seed_from(3);
        let n = 100_000;
        let in_first_percent = (0..n).filter(|_| z.sample(&mut rng) < 100).count();
        // With theta=0.9 far more than 1% of accesses hit the first 1% of items.
        assert!(
            in_first_percent as f64 / n as f64 > 0.3,
            "only {in_first_percent} hits in hottest 1%"
        );
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let z = Zipf::new(1000, 0.0);
        let mut rng = SimRng::seed_from(3);
        let n = 100_000;
        let in_first_half = (0..n).filter(|_| z.sample(&mut rng) < 500).count();
        let frac = in_first_half as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn zipf_stays_in_range() {
        let z = Zipf::new(50, 0.5);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 50);
        }
        assert_eq!(z.len(), 50);
        assert!(!z.is_empty());
    }

    #[test]
    fn piecewise_rate_lookup_and_integral() {
        // 1 s at 100/s, 1 s at 0/s, 2 s at 50/s, cyclic.
        let p = PiecewiseRate::new(vec![(1000.0, 100.0), (1000.0, 0.0), (2000.0, 50.0)]);
        assert_eq!(p.cycle_ms(), 4000.0);
        assert_eq!(p.rate_at(500.0), 100.0);
        assert_eq!(p.rate_at(1500.0), 0.0);
        assert_eq!(p.rate_at(3999.0), 50.0);
        assert_eq!(p.rate_at(4500.0), 100.0); // wraps
        assert!((p.cumulative(1000.0) - 100.0).abs() < 1e-9);
        assert!((p.cumulative(2000.0) - 100.0).abs() < 1e-9);
        assert!((p.cumulative(4000.0) - 200.0).abs() < 1e-9);
        assert!((p.expected_events(500.0, 4500.0) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_inversion_round_trips() {
        let p = PiecewiseRate::new(vec![(300.0, 20.0), (700.0, 180.0), (500.0, 5.0)]);
        for t in [0.0, 10.0, 299.0, 300.0, 999.0, 1400.0, 7321.5] {
            for e in [0.001, 0.5, 3.0, 40.0] {
                let next = p.next_arrival_after(t, e);
                assert!(next > t, "arrival must advance: t={t} e={e} next={next}");
                let integral = p.expected_events(t, next);
                assert!(
                    (integral - e).abs() < 1e-6,
                    "t={t} e={e}: integral {integral}"
                );
            }
        }
    }

    #[test]
    fn piecewise_arrivals_skip_zero_rate_segments() {
        let p = PiecewiseRate::new(vec![(100.0, 10.0), (900.0, 0.0)]);
        // An arrival requested from inside the dead zone lands in the next
        // live segment.
        let next = p.next_arrival_after(150.0, 0.25);
        assert!(
            (1000.0..1100.0).contains(&next),
            "next arrival {next} should fall in the second cycle's live window"
        );
    }

    #[test]
    fn piecewise_empirical_rate_tracks_schedule() {
        // Burst: 10× rate for the first 10% of each 1 s cycle.
        let p = PiecewiseRate::new(vec![(100.0, 1000.0), (900.0, 100.0)]);
        let mut rng = SimRng::seed_from(21);
        let mut t = 0.0;
        let mut in_burst = 0u64;
        let mut total = 0u64;
        while t < 200_000.0 {
            t = p.next_arrival_after(t, rng.exponential(1.0));
            total += 1;
            if t % 1000.0 < 100.0 {
                in_burst += 1;
            }
        }
        // Expected share: 100 per cycle in the burst, 90 outside → 100/190.
        let share = in_burst as f64 / total as f64;
        assert!((share - 100.0 / 190.0).abs() < 0.02, "burst share {share}");
        // Expected total: 190 per second over 200 s.
        assert!((total as f64 - 38_000.0).abs() < 1500.0, "total {total}");
    }

    #[test]
    #[should_panic]
    fn piecewise_rejects_zero_duration_segment() {
        let _ = PiecewiseRate::new(vec![(0.0, 100.0), (1000.0, 50.0)]);
    }

    #[test]
    #[should_panic]
    fn piecewise_rejects_all_zero_rates() {
        let _ = PiecewiseRate::new(vec![(1000.0, 0.0)]);
    }
}
