//! Deterministic random number generation.
//!
//! Every stochastic element of the model (arrival process, service times,
//! record selection, ...) draws from a [`SimRng`] seeded from the experiment
//! configuration, so a simulation run is exactly reproducible.

/// The simulation PRNG.
///
/// A self-contained xoshiro256++ generator (the workspace builds without any
/// external crates, so no `rand` dependency).  Separate streams (workload
/// generation vs. service times) can be derived with [`SimRng::derive`] so
/// that changing one part of a model does not perturb another part's random
/// sequence.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four 64-bit state words are filled with consecutive splitmix64
    /// outputs, the standard seeding recipe for the xoshiro family.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_word = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            mix64_seeded(sm)
        };
        let state = [next_word(), next_word(), next_word(), next_word()];
        Self { state }
    }

    /// The next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent stream identified by `stream`.
    ///
    /// The derivation uses a splitmix-style mix of the parent seed material so
    /// that streams with different identifiers are decorrelated.
    pub fn derive(&mut self, stream: u64) -> Self {
        let base = self.next_u64();
        Self::seed_from(mix64(base ^ mix64(stream)))
    }

    /// Uniform f64 in `[0, 1)`, never exactly 1.0 and never exactly 0.0
    /// (convenient for `ln`).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the usual u64 → f64 conversion.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u <= 0.0 {
            f64::MIN_POSITIVE
        } else {
            u
        }
    }

    /// Uniform f64 in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics when `n == 0` (an empty range), in every build profile.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range in SimRng::below");
        // Lemire's multiply-shift map of a 64-bit draw onto [0, n).  The
        // modulo bias is at most n / 2^64, far below anything the simulation
        // statistics could resolve, and the mapping stays deterministic.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics when `hi < lo` (an empty range), in every build profile.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi >= lo, "empty range in SimRng::range_u64");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponentially distributed value with the given `mean` (mean > 0).
    ///
    /// Used for service times ("exponentially distributed over a mean
    /// specified as a parameter", §3.2) and Poisson inter-arrival times.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        -mean * self.unit().ln()
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// Weights need not be normalized.  Returns 0 if all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return 0;
        }
        let mut x = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w <= 0.0 {
                continue;
            }
            if x < *w {
                return i;
            }
            x -= *w;
        }
        weights.len() - 1
    }
}

/// Final mixing function of splitmix64.
///
/// Public so seed-derivation code elsewhere (e.g. per-point sweep seeds)
/// shares this one canonical mixer.
pub fn mix64(z: u64) -> u64 {
    mix64_seeded(z.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// Splitmix64 output function (applied to an already-advanced state word).
fn mix64_seeded(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64)
            .filter(|_| a.below(1 << 30) == b.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(7);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.1, "observed {observed}");
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!(u > 0.0 && u < 1.0 + 1e-12);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from(9);
        let weights = [0.0, 0.8, 0.2];
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac1 = counts[1] as f64 / 50_000.0;
        assert!((frac1 - 0.8).abs() < 0.02, "frac1 {frac1}");
    }

    #[test]
    fn weighted_index_all_zero_returns_zero() {
        let mut rng = SimRng::seed_from(9);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), 0);
    }

    #[test]
    fn derived_streams_are_decorrelated() {
        let mut parent = SimRng::seed_from(1234);
        let mut s1 = parent.derive(1);
        let mut s2 = parent.derive(2);
        let same = (0..64)
            .filter(|_| s1.below(1 << 30) == s2.below(1 << 30))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn range_helpers_stay_in_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
            let i = rng.range_u64(10, 20);
            assert!((10..=20).contains(&i));
        }
    }
}
