//! FCFS multi-server resources (stations).
//!
//! CPUs, NVEM servers, disk controllers and disk servers are all modelled as a
//! pool of identical servers with a single FIFO queue.  The resource tracks
//! time-weighted utilization and queue length so device bottlenecks (the
//! central mechanism behind most results of the paper) can be reported.
//!
//! The resource is *token based*: callers hand an opaque `u64` token to
//! [`Resource::acquire`]; when capacity is available the call returns
//! `Granted`, otherwise the token is queued and will be returned by a later
//! [`Resource::release`] call, at which point the caller schedules the token's
//! continuation.

use std::collections::VecDeque;

use crate::stats::TimeWeighted;
use crate::time::SimTime;

/// Result of an [`Resource::acquire`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// A server was free; the caller proceeds immediately.
    Granted,
    /// All servers busy; the token was appended to the FIFO queue.
    Queued,
}

/// Aggregate statistics of a resource over the measured interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceStats {
    /// Average fraction of servers busy (0..=1).
    pub utilization: f64,
    /// Time-average number of queued (not yet served) tokens.
    pub avg_queue_len: f64,
    /// Total number of grants (service starts).
    pub grants: u64,
    /// Average wait in the queue per grant, in ms.
    pub avg_wait: SimTime,
}

/// A pool of `capacity` identical servers with a FIFO queue.
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    capacity: usize,
    busy: usize,
    queue: VecDeque<(u64, SimTime)>,
    busy_stat: TimeWeighted,
    queue_stat: TimeWeighted,
    grants: u64,
    total_wait: SimTime,
}

impl Resource {
    /// Creates a resource with `capacity >= 1` servers.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity >= 1, "resource capacity must be >= 1");
        Self {
            name: name.into(),
            capacity,
            busy: 0,
            queue: VecDeque::new(),
            busy_stat: TimeWeighted::new(),
            queue_stat: TimeWeighted::new(),
            grants: 0,
            total_wait: 0.0,
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently busy servers.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Number of queued tokens.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests one server for `token` at time `now`.
    pub fn acquire(&mut self, now: SimTime, token: u64) -> Acquire {
        let outcome = if self.busy < self.capacity {
            self.busy += 1;
            self.grants += 1;
            Acquire::Granted
        } else {
            self.queue.push_back((token, now));
            Acquire::Queued
        };
        // Record the *new* occupancy: the time-weighted statistics weight the
        // previously recorded level up to `now` and this level from `now` on.
        self.sample(now);
        outcome
    }

    /// Releases one server at time `now`.
    ///
    /// If a token was waiting it is granted the freed server and returned; the
    /// caller must schedule its continuation (typically at `now`).
    pub fn release(&mut self, now: SimTime) -> Option<u64> {
        assert!(self.busy > 0, "release on idle resource {}", self.name);
        let granted = if let Some((token, enqueued_at)) = self.queue.pop_front() {
            // Hand the server directly to the next waiter: busy count unchanged.
            self.grants += 1;
            self.total_wait += now - enqueued_at;
            Some(token)
        } else {
            self.busy -= 1;
            None
        };
        self.sample(now);
        granted
    }

    /// Removes a queued token (used when a waiting transaction is aborted).
    /// Returns true if the token was found and removed.
    pub fn cancel_waiter(&mut self, now: SimTime, token: u64) -> bool {
        let removed = if let Some(pos) = self.queue.iter().position(|(t, _)| *t == token) {
            self.queue.remove(pos);
            true
        } else {
            false
        };
        self.sample(now);
        removed
    }

    /// Records the current busy/queue levels into the time-weighted statistics.
    fn sample(&mut self, now: SimTime) {
        self.busy_stat.record(now, self.busy as f64);
        self.queue_stat.record(now, self.queue.len() as f64);
    }

    /// Resets the statistics (e.g. at the end of the warm-up period) without
    /// disturbing the dynamic state.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.busy_stat = TimeWeighted::new();
        self.queue_stat = TimeWeighted::new();
        self.busy_stat.record(now, self.busy as f64);
        self.queue_stat.record(now, self.queue.len() as f64);
        self.grants = 0;
        self.total_wait = 0.0;
    }

    /// Finalizes and returns the statistics at time `now`.
    pub fn stats(&mut self, now: SimTime) -> ResourceStats {
        self.sample(now);
        let avg_busy = self.busy_stat.mean().unwrap_or(0.0);
        ResourceStats {
            utilization: avg_busy / self.capacity as f64,
            avg_queue_len: self.queue_stat.mean().unwrap_or(0.0),
            grants: self.grants,
            avg_wait: if self.grants > 0 {
                self.total_wait / self.grants as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_up_to_capacity_then_queues() {
        let mut r = Resource::new("cpu", 2);
        assert_eq!(r.acquire(0.0, 1), Acquire::Granted);
        assert_eq!(r.acquire(0.0, 2), Acquire::Granted);
        assert_eq!(r.acquire(0.0, 3), Acquire::Queued);
        assert_eq!(r.busy(), 2);
        assert_eq!(r.queue_len(), 1);
    }

    #[test]
    fn release_hands_server_to_waiter_fifo() {
        let mut r = Resource::new("disk", 1);
        assert_eq!(r.acquire(0.0, 10), Acquire::Granted);
        assert_eq!(r.acquire(1.0, 11), Acquire::Queued);
        assert_eq!(r.acquire(2.0, 12), Acquire::Queued);
        assert_eq!(r.release(5.0), Some(11));
        assert_eq!(r.release(9.0), Some(12));
        assert_eq!(r.release(12.0), None);
        assert_eq!(r.busy(), 0);
    }

    #[test]
    #[should_panic]
    fn release_on_idle_resource_panics() {
        let mut r = Resource::new("x", 1);
        let _ = r.release(0.0);
    }

    #[test]
    fn utilization_is_time_weighted() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(0.0, 1);
        assert_eq!(r.release(5.0), None); // busy 0..5
                                          // idle 5..10
        let s = r.stats(10.0);
        assert!((s.utilization - 0.5).abs() < 1e-9, "util {}", s.utilization);
        assert_eq!(s.grants, 1);
    }

    #[test]
    fn average_wait_is_tracked() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(0.0, 1);
        r.acquire(0.0, 2); // waits 0..4
        assert_eq!(r.release(4.0), Some(2));
        assert_eq!(r.release(6.0), None);
        let s = r.stats(6.0);
        assert_eq!(s.grants, 2);
        assert!((s.avg_wait - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cancel_waiter_removes_from_queue() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(0.0, 1);
        r.acquire(0.0, 2);
        r.acquire(0.0, 3);
        assert!(r.cancel_waiter(1.0, 2));
        assert!(!r.cancel_waiter(1.0, 99));
        assert_eq!(r.release(2.0), Some(3));
    }

    #[test]
    fn reset_stats_clears_counts_but_keeps_state() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(0.0, 1);
        r.reset_stats(10.0);
        // still busy after reset
        assert_eq!(r.busy(), 1);
        let s = r.stats(20.0);
        assert!((s.utilization - 1.0).abs() < 1e-9);
        assert_eq!(s.grants, 0);
    }

    #[test]
    fn queue_length_statistic() {
        let mut r = Resource::new("cpu", 1);
        r.acquire(0.0, 1);
        r.acquire(0.0, 2); // queue=1 from t=0
        let _ = r.release(10.0); // token 2 served, queue=0 afterwards
        let _ = r.release(20.0);
        let s = r.stats(20.0);
        assert!((s.avg_queue_len - 0.5).abs() < 1e-9, "{}", s.avg_queue_len);
    }
}
