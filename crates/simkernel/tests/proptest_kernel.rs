//! Property-based tests for the simulation kernel invariants.

use proptest::prelude::*;
use simkernel::{EventQueue, Resource, SimRng, Tally, TimeWeighted};

proptest! {
    /// Events always come out of the queue in non-decreasing time order, and
    /// every scheduled event is eventually delivered exactly once.
    #[test]
    fn event_queue_is_ordered_and_complete(times in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(*t, i);
        }
        let mut last = f64::NEG_INFINITY;
        let mut seen = vec![false; times.len()];
        while let Some(e) = q.pop() {
            prop_assert!(e.time >= last);
            last = e.time;
            prop_assert!(!seen[e.payload]);
            seen[e.payload] = true;
            // Each delivered event fires at the time it was scheduled for.
            prop_assert!((e.time - times[e.payload]).abs() < 1e-9);
        }
        prop_assert!(seen.iter().all(|s| *s));
    }

    /// A resource never has more busy servers than capacity, never loses a
    /// token, and serves waiters in FIFO order.
    #[test]
    fn resource_conserves_tokens(capacity in 1usize..6, ops in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut r = Resource::new("r", capacity);
        let mut now = 0.0;
        let mut next_token = 0u64;
        let mut in_service: u64 = 0;
        let mut expected_queue: std::collections::VecDeque<u64> = Default::default();
        for acquire in ops {
            now += 1.0;
            if acquire {
                let tok = next_token;
                next_token += 1;
                match r.acquire(now, tok) {
                    simkernel::resource::Acquire::Granted => { in_service += 1; }
                    simkernel::resource::Acquire::Queued => expected_queue.push_back(tok),
                }
            } else if in_service > 0 {
                match r.release(now) {
                    Some(tok) => {
                        // FIFO: must be the oldest waiter.
                        let expect = expected_queue.pop_front();
                        prop_assert_eq!(Some(tok), expect);
                        // busy count unchanged: one leaves, one enters service.
                    }
                    None => { in_service -= 1; }
                }
            }
            prop_assert!(r.busy() <= capacity);
            prop_assert_eq!(r.busy() as u64, in_service);
            prop_assert_eq!(r.queue_len(), expected_queue.len());
        }
    }

    /// Tally mean always lies between min and max.
    #[test]
    fn tally_mean_bounded(values in proptest::collection::vec(-1e9f64..1e9, 1..500)) {
        let mut t = Tally::new();
        for v in &values {
            t.record(*v);
        }
        let mean = t.mean().unwrap();
        prop_assert!(mean >= t.min().unwrap() - 1e-6);
        prop_assert!(mean <= t.max().unwrap() + 1e-6);
        prop_assert_eq!(t.count(), values.len() as u64);
    }

    /// Time-weighted mean of a piecewise-constant signal is bounded by the
    /// extremes of the recorded values.
    #[test]
    fn time_weighted_mean_bounded(values in proptest::collection::vec(0.0f64..1e3, 2..200)) {
        let mut tw = TimeWeighted::new();
        for (i, v) in values.iter().enumerate() {
            tw.record(i as f64, *v);
        }
        let mean = tw.mean().unwrap();
        let lo = values[..values.len() - 1].iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values[..values.len() - 1].iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    /// Exponential samples are non-negative and the empirical mean is within a
    /// loose tolerance of the requested mean.
    #[test]
    fn exponential_sampling_sane(seed in any::<u64>(), mean in 0.1f64..100.0) {
        let mut rng = SimRng::seed_from(seed);
        let n = 4000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.exponential(mean);
            prop_assert!(x >= 0.0);
            sum += x;
        }
        let observed = sum / n as f64;
        prop_assert!(observed > mean * 0.8 && observed < mean * 1.25,
            "observed {} vs mean {}", observed, mean);
    }
}
