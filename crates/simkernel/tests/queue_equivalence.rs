//! Equivalence suite for the calendar event queue.
//!
//! The seed engine used a plain `BinaryHeap` future event list; PR 4 replaced
//! it with an indexed calendar queue.  This file keeps the old binary-heap
//! implementation alive as an *oracle* (with the `(time, seq)` contract
//! stated via [`f64::total_cmp`], fixing the seed's silent
//! `partial_cmp → Equal` NaN hazard) and drives both queues through
//! randomized schedules — including heavy same-time ties and interleaved
//! schedule/pop churn — asserting the pop sequences are identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use simkernel::time::SimTime;
use simkernel::{EventQueue, SimRng};

// ---------------------------------------------------------------------------
// The oracle: the seed's binary-heap future event list
// ---------------------------------------------------------------------------

struct HeapEntry<P> {
    time: SimTime,
    seq: u64,
    payload: P,
}

impl<P> PartialEq for HeapEntry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}
impl<P> Eq for HeapEntry<P> {}

impl<P> PartialOrd for HeapEntry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<P> Ord for HeapEntry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (time, seq) wins.
        // `total_cmp` (not the seed's `partial_cmp` with a silent `Equal` on
        // `None`) so the order is total even for adversarial inputs.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The seed implementation of the future event list, kept verbatim (modulo
/// the `total_cmp` contract) as the reference the calendar queue must match.
struct BinaryHeapQueue<P> {
    heap: BinaryHeap<HeapEntry<P>>,
    next_seq: u64,
    now: SimTime,
}

impl<P> BinaryHeapQueue<P> {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    fn schedule_at(&mut self, at: SimTime, payload: P) {
        let at = if at <= self.now { self.now } else { at };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry {
            time: at,
            seq,
            payload,
        });
    }

    fn schedule_in(&mut self, delay: SimTime, payload: P) {
        let now = self.now;
        self.schedule_at(now + delay.max(0.0), payload);
    }

    fn pop(&mut self) -> Option<(SimTime, u64, P)> {
        let entry = self.heap.pop()?;
        self.now = entry.time.max(self.now);
        Some((self.now, entry.seq, entry.payload))
    }
}

// ---------------------------------------------------------------------------
// Randomized equivalence drivers
// ---------------------------------------------------------------------------

/// Draws a delay from a deterministic mixture that covers the patterns the
/// engine produces: zero delays (ties at `now`), sub-bucket steps, multi-
/// bucket I/O-scale delays and occasional far-future timeouts.
fn draw_delay(rng: &mut SimRng) -> SimTime {
    match rng.below(10) {
        0 | 1 => 0.0,
        2..=5 => rng.exponential(0.4),
        6..=8 => rng.exponential(12.0),
        _ => 200.0 + rng.exponential(2_000.0),
    }
}

/// Runs `ops` interleaved schedule/pop operations against both queues and
/// asserts every pop returns the same `(time, seq, payload)` triple.
fn assert_equivalent_run(seed: u64, ops: usize, tie_heavy: bool) {
    let mut rng_plan = SimRng::seed_from(seed);
    let mut rng_cal = SimRng::seed_from(seed ^ 0xD1F); // same stream per queue
    let mut rng_heap = SimRng::seed_from(seed ^ 0xD1F);
    let mut calendar: EventQueue<u64> = EventQueue::new();
    let mut oracle: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    let mut payload = 0u64;
    for step in 0..ops {
        // Bias toward scheduling early so the backlog grows, then drains.
        let schedule =
            calendar.is_empty() || rng_plan.below(5) < if step < ops / 2 { 3 } else { 1 };
        if schedule {
            let burst = if tie_heavy { rng_plan.below(20) + 1 } else { 1 };
            // A tie burst schedules several events for the *same* instant;
            // FIFO among them is exactly the contract under test.
            let delay = draw_delay(&mut rng_cal);
            let delay_h = draw_delay(&mut rng_heap);
            assert_eq!(delay.to_bits(), delay_h.to_bits());
            for _ in 0..burst {
                calendar.schedule_in(delay, payload);
                oracle.schedule_in(delay, payload);
                payload += 1;
            }
        } else {
            let got = calendar.pop().map(|e| (e.time, e.seq, e.payload));
            let want = oracle.pop();
            assert_eq!(
                got.map(|(t, s, p)| (t.to_bits(), s, p)),
                want.map(|(t, s, p)| (t.to_bits(), s, p)),
                "pop #{step} diverged from the binary-heap oracle (seed {seed})"
            );
        }
    }
    // Drain both completely: the tails must match too.
    loop {
        let got = calendar.pop().map(|e| (e.time.to_bits(), e.seq, e.payload));
        let want = oracle.pop().map(|(t, s, p)| (t.to_bits(), s, p));
        assert_eq!(got, want, "drain diverged (seed {seed})");
        if got.is_none() {
            break;
        }
    }
}

#[test]
fn calendar_queue_matches_binary_heap_oracle_on_random_schedules() {
    for seed in 0..12 {
        assert_equivalent_run(0xA11CE + seed, 4_000, false);
    }
}

#[test]
fn calendar_queue_matches_oracle_under_heavy_ties() {
    for seed in 0..8 {
        assert_equivalent_run(0x7E55 + seed, 2_000, true);
    }
}

// ---------------------------------------------------------------------------
// Sharded queue vs the same oracle
// ---------------------------------------------------------------------------

use simkernel::ShardedEventQueue;

/// Drives the sharded coordinator (workers on scoped threads) and the
/// binary-heap oracle through the same randomized schedule — including tie
/// bursts — asserting identical `(time, seq, payload)` pop streams.  Shard
/// assignment round-robins over the payload counter; correctness must not
/// depend on it.
fn assert_sharded_equivalent_run(
    seed: u64,
    ops: usize,
    shards: usize,
    workers: usize,
    lookahead: SimTime,
) {
    let (mut sharded, runners) = ShardedEventQueue::new(shards, workers, lookahead);
    std::thread::scope(|s| {
        for r in runners {
            s.spawn(move || r.run());
        }
        let _guard = sharded.shutdown_guard();

        let mut rng_plan = SimRng::seed_from(seed);
        let mut rng_shard = SimRng::seed_from(seed ^ 0xD1F);
        let mut rng_heap = SimRng::seed_from(seed ^ 0xD1F);
        let mut oracle: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
        let mut payload = 0u64;
        for step in 0..ops {
            let schedule =
                sharded.is_empty() || rng_plan.below(5) < if step < ops / 2 { 3 } else { 1 };
            if schedule {
                // Tie bursts: several events for the same instant, FIFO among
                // them even when they land on different shards.
                let burst = rng_plan.below(20) + 1;
                let delay = draw_delay(&mut rng_shard);
                let delay_h = draw_delay(&mut rng_heap);
                assert_eq!(delay.to_bits(), delay_h.to_bits());
                for _ in 0..burst {
                    sharded.schedule_in((payload % shards as u64) as usize, delay, payload);
                    oracle.schedule_in(delay, payload);
                    payload += 1;
                }
            } else {
                let got = sharded.pop().map(|e| (e.time.to_bits(), e.seq, e.payload));
                let want = oracle.pop().map(|(t, s, p)| (t.to_bits(), s, p));
                assert_eq!(
                    got, want,
                    "pop #{step} diverged from the oracle \
                     (seed {seed}, {shards} shards, {workers} workers, lookahead {lookahead})"
                );
            }
        }
        loop {
            let got = sharded.pop().map(|e| (e.time.to_bits(), e.seq, e.payload));
            let want = oracle.pop().map(|(t, s, p)| (t.to_bits(), s, p));
            assert_eq!(got, want, "drain diverged (seed {seed})");
            if got.is_none() {
                break;
            }
        }
    });
}

#[test]
fn sharded_queue_matches_oracle_under_heavy_ties() {
    for seed in 0..6 {
        assert_sharded_equivalent_run(0x5AAD + seed, 2_000, 4, 2, 0.8);
    }
}

#[test]
fn sharded_queue_matches_oracle_across_worker_counts() {
    for &(shards, workers) in &[(1usize, 1usize), (3, 2), (8, 4), (8, 8)] {
        assert_sharded_equivalent_run(0xC0DE, 1_500, shards, workers, 2.0);
    }
}

#[test]
fn sharded_queue_matches_oracle_at_lookahead_extremes() {
    // Zero lookahead (one-event rounds) and a huge lookahead (everything
    // spills) are the two degenerate corners of the horizon protocol.
    assert_sharded_equivalent_run(0xFEED, 1_500, 4, 4, 0.0);
    assert_sharded_equivalent_run(0xFEED, 1_500, 4, 4, 1e12);
}

#[test]
fn calendar_queue_matches_oracle_on_pure_hold_model() {
    // The classic hold model: a fixed population, each pop schedules one
    // replacement — the steady-state access pattern of the engine.
    let mut calendar: EventQueue<u64> = EventQueue::new();
    let mut oracle: BinaryHeapQueue<u64> = BinaryHeapQueue::new();
    let mut rng = SimRng::seed_from(9);
    for i in 0..256 {
        let t = rng.exponential(5.0);
        calendar.schedule_at(t, i);
        oracle.schedule_at(t, i);
    }
    for i in 0..20_000u64 {
        let got = calendar.pop().map(|e| (e.time, e.seq, e.payload)).unwrap();
        let want = oracle.pop().unwrap();
        assert_eq!(got.0.to_bits(), want.0.to_bits());
        assert_eq!((got.1, got.2), (want.1, want.2));
        let delay = rng.exponential(5.0);
        calendar.schedule_in(delay, 256 + i);
        oracle.schedule_in(delay, 256 + i);
    }
}
