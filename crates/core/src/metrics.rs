//! Simulation output: response times, throughput, device utilizations, buffer
//! hit ratios and lock statistics.  TPSIM "computes detailed statistics on the
//! composition of response time and device utilization, waiting times, queue
//! lengths, lock behavior, hit ratios, etc. in order to explain the results"
//! (§4); this module is the equivalent report.

use bufmgr::BufferStats;
use lockmgr::{GlobalLockStats, LockManagerStats};
use simkernel::sketch::QuantileSketch;
use simkernel::time::SimTime;
use storage::DiskUnitStats;

/// Summary of the transaction response-time distribution (ms).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseTimeStats {
    /// Number of transactions measured.
    pub count: u64,
    /// Mean response time.
    pub mean: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum observed response time.
    pub min: f64,
    /// Maximum observed response time.
    pub max: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
}

impl ResponseTimeStats {
    /// Placeholder used when no transaction completed in the measurement
    /// interval (e.g. a completely saturated configuration).
    pub fn empty() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            p95: 0.0,
        }
    }
}

/// Per-device I/O scheduler counters, present exactly when the run enabled
/// a scheduling policy ([`storage::IoSchedulerParams::enabled`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoSchedulerReport {
    /// Mean pending-queue depth seen by arriving read requests.
    pub mean_queue_depth: f64,
    /// Reads that joined an existing pending or in-flight request for the
    /// same page.
    pub coalesced: u64,
    /// Extra pages carried by merged adjacent-page accesses (a batch of k
    /// pages counts k - 1).
    pub merged_adjacent: u64,
    /// Speculative reads the scheduler accepted.
    pub prefetch_issued: u64,
    /// Prefetched buffer frames whose first reference was a hit (summed
    /// over the nodes' pools, attributed to this device via the partition
    /// locations).
    pub prefetch_hits: u64,
    /// Speculative reads that bought nothing (page already resident,
    /// admission rejected, or the frame dropped unreferenced).
    pub prefetch_wasted: u64,
}

/// Per-storage-device report.
///
/// `Debug` is implemented by hand (field-for-field like the derive) so the
/// `scheduler` section only renders when a scheduling policy ran: goldens
/// captured before the scheduler existed stay byte-identical.
#[derive(Clone, PartialEq)]
pub struct DeviceReport {
    /// Device name (e.g. "db-disks", "log-disk", "nvem-log").
    pub name: String,
    /// Average utilization of the device's disk servers (0 for devices that
    /// never touch a disk).
    pub disk_utilization: f64,
    /// Average utilization of the device's controllers / servers.
    pub controller_utilization: f64,
    /// Average queueing delay at the disk servers per request (ms).
    pub avg_disk_wait: SimTime,
    /// Cache / absorption counters.
    pub stats: DiskUnitStats,
    /// Request-scheduler counters; `Some` exactly when the run enabled a
    /// scheduling policy (and omitted from the `Debug` rendering otherwise).
    pub scheduler: Option<IoSchedulerReport>,
}

impl std::fmt::Debug for DeviceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("DeviceReport");
        s.field("name", &self.name)
            .field("disk_utilization", &self.disk_utilization)
            .field("controller_utilization", &self.controller_utilization)
            .field("avg_disk_wait", &self.avg_disk_wait)
            .field("stats", &self.stats);
        if self.scheduler.is_some() {
            s.field("scheduler", &self.scheduler);
        }
        s.finish()
    }
}

/// Per-node (computing module) report of a data-sharing run.
///
/// A single-node run has exactly one entry whose values coincide with the
/// aggregate fields of [`SimulationReport`]; a multi-node run has one entry
/// per computing module, and the aggregate fields sum (counters) or average
/// (utilizations, response times) over them.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Node id (0-based; node 0 hosts the global lock service).
    pub node: usize,
    /// Transactions completed on this node during the measurement interval.
    pub completed: u64,
    /// Deadlock aborts of transactions running on this node.
    pub aborts: u64,
    /// Throughput achieved by this node (TPS).
    pub throughput_tps: f64,
    /// Mean response time of this node's transactions (ms).
    pub mean_response_ms: f64,
    /// Average utilization of this node's CPU servers (0..=1).
    pub cpu_utilization: f64,
    /// Time-average number of transactions active on this node.
    pub avg_active_transactions: f64,
    /// Time-average number of transactions waiting in this node's input queue.
    pub avg_input_queue: f64,
    /// Lock requests this node sent to the remote global lock service (0 on
    /// the service's home node).
    pub remote_lock_requests: u64,
    /// Redo records this node's committed update transactions appended to
    /// the log during the measurement interval (0 while the recovery
    /// subsystem is inactive).
    pub redo_records: u64,
    /// This node's buffer-manager statistics (including invalidations
    /// received from other nodes' commits).
    pub buffer: BufferStats,
}

/// Steady-state recovery/checkpointing statistics, present whenever the
/// recovery subsystem was active (checkpointing enabled and/or a crash was
/// simulated).
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Fuzzy checkpoints completed during the measurement interval.
    pub checkpoints_taken: u64,
    /// Simulated time spent writing checkpoint records (ms): the measured
    /// latency of the checkpoint log writes, including their queueing at the
    /// log device.
    pub checkpoint_overhead_ms: SimTime,
    /// Redo records appended (committed page updates) during the measurement
    /// interval.
    pub redo_log_records: u64,
    /// Redo records dropped by checkpoint truncation during the measurement
    /// interval.
    pub log_records_truncated: u64,
    /// Redo records per 4 KB log page (from `cm.log_record_bytes`).
    pub records_per_log_page: u64,
    /// The crash-and-restart phase, if a crash was simulated.
    pub restart: Option<RestartReport>,
}

/// Result of a simulated crash and the subsequent redo pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartReport {
    /// Simulated time of the crash (ms since the start of the run).
    pub crash_time_ms: SimTime,
    /// Total simulated restart time (ms): log reads + redo applies + data
    /// page reads.  Lock re-acquisition is counted in `locks_reacquired`
    /// but — consistent with the steady-state model, where lock handling
    /// has no explicit CPU cost of its own — adds no time.
    pub restart_ms: SimTime,
    /// Redo records scanned (everything after the last checkpoint's redo
    /// boundary).
    pub redo_records: u64,
    /// Log pages read back during the redo scan (including the checkpoint
    /// record).
    pub log_pages_read: u64,
    /// Database pages re-read from their home location to apply lost
    /// committed updates.
    pub data_pages_read: u64,
    /// Pages with committed-but-unpropagated updates at the crash (union of
    /// the per-node dirty-page tables).
    pub dirty_pages_at_crash: u64,
    /// Locks still held by in-flight transactions when the system crashed
    /// (all dropped).
    pub locks_released_at_crash: u64,
    /// Locks the restart pass re-acquired (and released) to protect redone
    /// pages.
    pub locks_reacquired: u64,
}

/// Function-shipping statistics of a shared-nothing run, present whenever
/// [`crate::config::Architecture::SharedNothing`] is configured (and absent —
/// not even rendered — otherwise, so data-sharing reports are byte-identical
/// to reports from before the shared-nothing mode existed).
///
/// An *object reference* is local when the referenced page's partition is
/// owned by the transaction's home node and remote (a function-shipped call)
/// otherwise; `remote_access_fraction` is the headline knob of the
/// architecture comparison: it grows with the node count (≈ `(n-1)/n` under
/// hash declustering with round-robin transaction routing), and with it the
/// message and remote-CPU overhead of the shared-nothing architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct ShippingReport {
    /// Object references executed on the transaction's home node.
    pub local_refs: u64,
    /// Object references function-shipped to a remote owner node.
    pub remote_calls: u64,
    /// Messages exchanged (call + reply per shipped reference; 2 prepare +
    /// 1 commit message per remote commit participant).
    pub messages: u64,
    /// Total simulated message delay charged (ms).
    pub total_message_delay_ms: f64,
    /// CPU time (ms) shipped to owner nodes for remote request handling
    /// (the `remote_cpu_instr` surcharge, excluding the reference work
    /// itself).
    pub remote_cpu_ms: f64,
    /// Commits that ran a two-phase exchange (at least one written page was
    /// owned by a remote node).
    pub commit_exchanges: u64,
    /// Remote commit participants summed over all two-phase exchanges.
    pub commit_participants: u64,
    /// Function-shipped calls issued per home node.
    pub per_node_remote_calls: Vec<u64>,
}

impl ShippingReport {
    /// An all-zero report for `num_nodes` nodes (the engine's accumulator).
    pub fn empty(num_nodes: usize) -> Self {
        Self {
            local_refs: 0,
            remote_calls: 0,
            messages: 0,
            total_message_delay_ms: 0.0,
            remote_cpu_ms: 0.0,
            commit_exchanges: 0,
            commit_participants: 0,
            per_node_remote_calls: vec![0; num_nodes],
        }
    }

    /// Fraction of object references that were function-shipped (0 when no
    /// reference completed).
    pub fn remote_access_fraction(&self) -> f64 {
        let total = self.local_refs + self.remote_calls;
        if total == 0 {
            0.0
        } else {
            self.remote_calls as f64 / total as f64
        }
    }
}

/// Coherence-protocol statistics of a multi-node data-sharing run under a
/// non-default [`crate::config::CoherenceParams`] combination (on-request
/// validation and/or direct page transfer).  Absent — not even rendered —
/// for the default broadcast-invalidation / disk-reread combination, so all
/// reports captured before the protocol options existed stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceReport {
    /// Buffered copies found stale by a reference-time version check and
    /// discarded (on-request validation; each also counts as a buffer
    /// invalidation in [`bufmgr::BufferStats`]).
    pub stale_validations: u64,
    /// Total simulated delay of the validation round trips charged for
    /// stale hits (ms).
    pub validation_delay_ms: f64,
    /// Buffer misses satisfied by a direct cache-to-cache transfer from
    /// another node instead of a disk re-read.
    pub direct_transfers: u64,
    /// Total simulated delay of the transfer message round trips (ms; the
    /// memory-copy CPU bursts are charged to the CPUs, not counted here).
    pub transfer_delay_ms: f64,
    /// Misses the direct-transfer path could not serve (no other node held
    /// a current copy) and that fell back to a disk re-read.
    pub transfer_fallback_reads: u64,
}

impl CoherenceReport {
    /// An all-zero accumulator.
    pub fn empty() -> Self {
        Self {
            stale_validations: 0,
            validation_delay_ms: 0.0,
            direct_transfers: 0,
            transfer_delay_ms: 0.0,
            transfer_fallback_reads: 0,
        }
    }
}

/// Wall-clock throughput of the simulation kernel over one run, as measured
/// by [`Simulation::run_profiled`].  Not part of [`SimulationReport`] (the
/// report describes the *simulated* system and stays byte-identical across
/// kernel optimizations); profiles feed the `BENCH_kernel.json` perf
/// trajectory instead.
///
/// [`Simulation::run_profiled`]: crate::Simulation::run_profiled
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Events popped from the future event list.
    pub events: u64,
    /// Wall-clock duration of the run (ms).
    pub wall_ms: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Synchronization rounds of the sharded kernel (0 on the sequential
    /// kernel).
    pub sync_rounds: u64,
    /// Committed update transactions that ran the commit-time coherence
    /// fan-out (version bumps or holder invalidations; 0 on single-node and
    /// shared-nothing runs, which have no fan-out).
    pub fanout_commits: u64,
    /// Wall-clock nanoseconds spent in the commit-time coherence fan-out,
    /// summed over all commits.
    pub fanout_ns: u64,
}

impl KernelProfile {
    /// Builds a profile from an event count and a measured wall-clock time.
    pub fn new(events: u64, wall_ms: f64) -> Self {
        Self {
            events,
            wall_ms,
            events_per_sec: events as f64 / (wall_ms / 1e3).max(1e-9),
            sync_rounds: 0,
            fanout_commits: 0,
            fanout_ns: 0,
        }
    }

    /// Attaches the sharded kernel's synchronization-round count.
    pub fn with_sync_rounds(mut self, rounds: u64) -> Self {
        self.sync_rounds = rounds;
        self
    }

    /// Attaches the commit-time coherence fan-out timing.
    pub fn with_commit_fanout(mut self, commits: u64, ns: u64) -> Self {
        self.fanout_commits = commits;
        self.fanout_ns = ns;
        self
    }

    /// Average wall-clock microseconds per commit fan-out operation (0 when
    /// no commit ran a fan-out).
    pub fn fanout_us_per_commit(&self) -> f64 {
        if self.fanout_commits == 0 {
            0.0
        } else {
            self.fanout_ns as f64 / 1e3 / self.fanout_commits as f64
        }
    }
}

/// Tail-latency summary extracted from the cluster-wide response-time
/// quantile sketch (ms).  Present exactly for shaped workloads (non-constant
/// arrival schedule and/or hot-spot skew), where the tail — not the mean — is
/// the quantity of interest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailLatencyReport {
    /// Transactions folded into the sketch.
    pub count: u64,
    /// Median response time.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Maximum observed response time (exact).
    pub max: f64,
    /// Self-certified rank-error bound of the sketch: every reported
    /// percentile is within this many ranks of the exact order statistic.
    pub rank_error_bound: u64,
}

impl TailLatencyReport {
    /// Reads the tail percentiles out of a (possibly merged) sketch.
    pub fn from_sketch(sketch: &QuantileSketch) -> Self {
        TailLatencyReport {
            count: sketch.count(),
            p50: sketch.quantile(0.5).unwrap_or(0.0),
            p95: sketch.quantile(0.95).unwrap_or(0.0),
            p99: sketch.quantile(0.99).unwrap_or(0.0),
            p999: sketch.quantile(0.999).unwrap_or(0.0),
            max: sketch.max().unwrap_or(0.0),
            rank_error_bound: sketch.rank_error_bound(),
        }
    }
}

/// Per-transaction-type response-time summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxTypeReport {
    /// Transaction type id.
    pub tx_type: usize,
    /// Transactions of this type measured.
    pub count: u64,
    /// Mean response time (ms).
    pub mean_response: f64,
}

/// The complete result of one simulation run.
///
/// `Debug` is implemented by hand (field-for-field like the derive) so the
/// `shipping` section only renders for shared-nothing runs: the `{:#?}`
/// goldens of data-sharing reports captured before the shared-nothing mode
/// stay byte-identical.
#[derive(Clone, PartialEq)]
pub struct SimulationReport {
    /// Configured arrival rate (TPS).
    pub arrival_rate_tps: f64,
    /// Transactions completed during the measurement interval.
    pub completed: u64,
    /// Transactions aborted (and restarted) due to deadlocks during the
    /// measurement interval.
    pub aborts: u64,
    /// Group-commit batches flushed during the measurement interval (0 when
    /// group commit is disabled).
    pub log_group_writes: u64,
    /// Length of the measurement interval (ms).
    pub measured_time_ms: SimTime,
    /// Achieved throughput (transactions per second).
    pub throughput_tps: f64,
    /// Response-time summary over all transaction types.
    pub response_time: ResponseTimeStats,
    /// Response-time summary per transaction type.
    pub per_type: Vec<TxTypeReport>,
    /// Average CPU utilization (0..=1).
    pub cpu_utilization: f64,
    /// Average utilization of the NVEM servers (0..=1); 0 when NVEM is unused.
    pub nvem_utilization: f64,
    /// Time-average number of active (admitted) transactions.
    pub avg_active_transactions: f64,
    /// Time-average number of transactions waiting in the input queue (MPL
    /// exceeded).
    pub avg_input_queue: f64,
    /// Buffer-manager statistics aggregated over all nodes (hit ratios,
    /// evictions, migrations, invalidations).
    pub buffer: BufferStats,
    /// Statistics of the (global) lock table (conflicts, deadlocks).
    pub locks: LockManagerStats,
    /// Global-lock-service statistics (local/remote request split, messages).
    pub global_locks: GlobalLockStats,
    /// Recovery/checkpointing statistics; `None` when the recovery subsystem
    /// was inactive (checkpointing disabled and no crash simulated).
    pub recovery: Option<RecoveryReport>,
    /// Coherence-protocol statistics; `Some` exactly when a non-default
    /// protocol/transfer combination ran (and omitted from the `Debug`
    /// rendering otherwise, keeping older goldens byte-identical).
    pub coherence: Option<CoherenceReport>,
    /// Function-shipping statistics; `Some` exactly for shared-nothing runs
    /// (and omitted from the `Debug` rendering otherwise).
    pub shipping: Option<ShippingReport>,
    /// Tail-latency percentiles from the merged per-node quantile sketches;
    /// `Some` exactly when the workload was shaped (non-constant schedule or
    /// hot-spot skew) and omitted from the `Debug` rendering otherwise.
    pub tail: Option<TailLatencyReport>,
    /// Per-storage-device reports (one per configured [`storage::DeviceSpec`]).
    pub devices: Vec<DeviceReport>,
    /// Per-node breakdown (one entry per computing module; a single-node run
    /// has one entry mirroring the aggregate fields).
    pub nodes: Vec<NodeReport>,
}

impl std::fmt::Debug for SimulationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("SimulationReport");
        s.field("arrival_rate_tps", &self.arrival_rate_tps)
            .field("completed", &self.completed)
            .field("aborts", &self.aborts)
            .field("log_group_writes", &self.log_group_writes)
            .field("measured_time_ms", &self.measured_time_ms)
            .field("throughput_tps", &self.throughput_tps)
            .field("response_time", &self.response_time)
            .field("per_type", &self.per_type)
            .field("cpu_utilization", &self.cpu_utilization)
            .field("nvem_utilization", &self.nvem_utilization)
            .field("avg_active_transactions", &self.avg_active_transactions)
            .field("avg_input_queue", &self.avg_input_queue)
            .field("buffer", &self.buffer)
            .field("locks", &self.locks)
            .field("global_locks", &self.global_locks)
            .field("recovery", &self.recovery);
        // Pre-shared-nothing reports had no such field; rendering it only
        // when present keeps the committed data-sharing goldens byte-exact.
        // The coherence section follows the same rule for pre-protocol-option
        // reports (default broadcast/disk-reread runs never carry one).
        if self.coherence.is_some() {
            s.field("coherence", &self.coherence);
        }
        if self.shipping.is_some() {
            s.field("shipping", &self.shipping);
        }
        if self.tail.is_some() {
            s.field("tail", &self.tail);
        }
        s.field("devices", &self.devices)
            .field("nodes", &self.nodes)
            .finish()
    }
}

impl SimulationReport {
    /// Global main-memory hit ratio (convenience accessor).
    pub fn mm_hit_ratio(&self) -> f64 {
        self.buffer.mm_hit_ratio()
    }

    /// Global second-level (NVEM) hit ratio.
    pub fn nvem_hit_ratio(&self) -> f64 {
        self.buffer.nvem_hit_ratio()
    }

    /// Read hit ratio of storage device `unit`.
    pub fn disk_cache_hit_ratio(&self, unit: usize) -> f64 {
        self.devices
            .get(unit)
            .map(|u| u.stats.read_hit_ratio())
            .unwrap_or(0.0)
    }

    /// Total lock requests sent to the global lock service from remote nodes
    /// (0 in a single-node run).
    pub fn remote_lock_requests(&self) -> u64 {
        self.global_locks.remote_requests
    }

    /// Total buffered copies invalidated by other nodes' commits (0 in a
    /// single-node run).
    pub fn invalidations(&self) -> u64 {
        self.buffer.invalidations
    }

    /// Fraction of object references function-shipped to a remote owner
    /// (0 for data-sharing runs, which never ship).
    pub fn remote_access_fraction(&self) -> f64 {
        self.shipping
            .as_ref()
            .map(|s| s.remote_access_fraction())
            .unwrap_or(0.0)
    }

    /// Simulated restart time after a crash (0 when no crash was simulated).
    pub fn restart_ms(&self) -> f64 {
        self.recovery
            .as_ref()
            .and_then(|r| r.restart.as_ref())
            .map(|r| r.restart_ms)
            .unwrap_or(0.0)
    }

    /// Lock conflict probability per lock request.
    pub fn lock_conflict_ratio(&self) -> f64 {
        if self.locks.requests == 0 {
            0.0
        } else {
            self.locks.conflicts as f64 / self.locks.requests as f64
        }
    }

    /// A single-line summary useful for sweep tables.
    pub fn summary_line(&self) -> String {
        format!(
            "rate {:>6.1} TPS | thru {:>6.1} TPS | resp {:>8.2} ms | cpu {:>5.1}% | mm-hit {:>5.1}% | nvem-hit {:>4.1}% | conflicts {:>5.2}% | aborts {}",
            self.arrival_rate_tps,
            self.throughput_tps,
            self.response_time.mean,
            self.cpu_utilization * 100.0,
            self.mm_hit_ratio() * 100.0,
            self.nvem_hit_ratio() * 100.0,
            self.lock_conflict_ratio() * 100.0,
            self.aborts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_report() -> SimulationReport {
        SimulationReport {
            arrival_rate_tps: 100.0,
            completed: 500,
            aborts: 2,
            log_group_writes: 0,
            measured_time_ms: 5000.0,
            throughput_tps: 100.0,
            response_time: ResponseTimeStats {
                count: 500,
                mean: 25.0,
                std_dev: 5.0,
                min: 10.0,
                max: 80.0,
                p95: 40.0,
            },
            per_type: vec![TxTypeReport {
                tx_type: 0,
                count: 500,
                mean_response: 25.0,
            }],
            cpu_utilization: 0.6,
            nvem_utilization: 0.01,
            avg_active_transactions: 3.0,
            avg_input_queue: 0.0,
            buffer: {
                let mut b = BufferStats::new(1);
                b.per_partition[0].references = 100;
                b.per_partition[0].mm_hits = 70;
                b.per_partition[0].nvem_hits = 10;
                b
            },
            locks: LockManagerStats {
                requests: 200,
                immediate_grants: 190,
                conflicts: 10,
                deadlocks: 2,
                releases: 198,
            },
            global_locks: GlobalLockStats::default(),
            recovery: None,
            coherence: None,
            shipping: None,
            tail: None,
            nodes: Vec::new(),
            devices: vec![DeviceReport {
                name: "db".into(),
                disk_utilization: 0.4,
                controller_utilization: 0.1,
                avg_disk_wait: 1.0,
                stats: DiskUnitStats {
                    reads: 100,
                    read_hits: 25,
                    ..Default::default()
                },
                scheduler: None,
            }],
        }
    }

    #[test]
    fn convenience_accessors() {
        let r = dummy_report();
        assert!((r.mm_hit_ratio() - 0.7).abs() < 1e-12);
        assert!((r.nvem_hit_ratio() - 0.1).abs() < 1e-12);
        assert!((r.disk_cache_hit_ratio(0) - 0.25).abs() < 1e-12);
        assert_eq!(r.disk_cache_hit_ratio(5), 0.0);
        assert!((r.lock_conflict_ratio() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn summary_line_mentions_key_numbers() {
        let line = dummy_report().summary_line();
        assert!(line.contains("100.0 TPS"));
        assert!(line.contains("25.00 ms"));
        assert!(line.contains("70.0%"));
    }

    #[test]
    fn shipping_section_renders_only_when_present() {
        let mut r = dummy_report();
        assert_eq!(r.remote_access_fraction(), 0.0);
        let without = format!("{r:#?}");
        assert!(!without.contains("shipping"));
        let mut shipping = ShippingReport::empty(2);
        shipping.local_refs = 30;
        shipping.remote_calls = 10;
        r.shipping = Some(shipping);
        let with = format!("{r:#?}");
        assert!(with.contains("shipping"));
        assert!((r.remote_access_fraction() - 0.25).abs() < 1e-12);
        // The two renderings differ only by the shipping section: stripping
        // it restores the data-sharing form field for field.
        assert!(with.len() > without.len());
    }

    #[test]
    fn tail_section_renders_only_when_present() {
        let mut r = dummy_report();
        let without = format!("{r:#?}");
        assert!(!without.contains("tail"));
        let mut sketch = QuantileSketch::new(64);
        for i in 0..1000 {
            sketch.insert(i as f64);
        }
        r.tail = Some(TailLatencyReport::from_sketch(&sketch));
        let with = format!("{r:#?}");
        assert!(with.contains("tail"));
        assert!(with.contains("p999"));
        assert!(with.contains("rank_error_bound"));
        assert!(with.len() > without.len());
        let tail = r.tail.unwrap();
        assert_eq!(tail.count, 1000);
        assert_eq!(tail.max, 999.0);
        assert!(tail.p50 <= tail.p95 && tail.p95 <= tail.p99);
        assert!(tail.p99 <= tail.p999 && tail.p999 <= tail.max);
    }

    #[test]
    fn coherence_section_renders_only_when_present() {
        let mut r = dummy_report();
        let without = format!("{r:#?}");
        assert!(!without.contains("coherence"));
        let mut coherence = CoherenceReport::empty();
        coherence.stale_validations = 7;
        coherence.direct_transfers = 3;
        r.coherence = Some(coherence);
        let with = format!("{r:#?}");
        assert!(with.contains("coherence"));
        assert!(with.contains("stale_validations: 7"));
        assert!(with.len() > without.len());
    }

    #[test]
    fn scheduler_section_renders_only_when_present() {
        let mut r = dummy_report();
        let without = format!("{r:#?}");
        assert!(!without.contains("scheduler"));
        r.devices[0].scheduler = Some(IoSchedulerReport {
            mean_queue_depth: 1.5,
            coalesced: 4,
            merged_adjacent: 2,
            prefetch_issued: 8,
            prefetch_hits: 5,
            prefetch_wasted: 3,
        });
        let with = format!("{r:#?}");
        assert!(with.contains("scheduler"));
        assert!(with.contains("coalesced: 4"));
        assert!(with.contains("prefetch_hits: 5"));
        assert!(with.len() > without.len());
    }

    #[test]
    fn kernel_profile_tracks_commit_fanout() {
        let p = KernelProfile::new(1_000, 2.0);
        assert_eq!(p.fanout_commits, 0);
        assert_eq!(p.fanout_us_per_commit(), 0.0);
        let p = p.with_commit_fanout(500, 1_000_000);
        assert_eq!(p.fanout_commits, 500);
        assert_eq!(p.fanout_ns, 1_000_000);
        assert!((p.fanout_us_per_commit() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_shipping_report_has_no_remote_fraction() {
        let s = ShippingReport::empty(3);
        assert_eq!(s.per_node_remote_calls, vec![0, 0, 0]);
        assert_eq!(s.remote_access_fraction(), 0.0);
    }

    #[test]
    fn empty_response_time_stats() {
        let e = ResponseTimeStats::empty();
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
    }

    #[test]
    fn restart_ms_defaults_to_zero_and_reads_the_restart_report() {
        let mut r = dummy_report();
        assert_eq!(r.restart_ms(), 0.0);
        r.recovery = Some(RecoveryReport {
            checkpoints_taken: 2,
            checkpoint_overhead_ms: 3.0,
            redo_log_records: 100,
            log_records_truncated: 40,
            records_per_log_page: 8,
            restart: None,
        });
        assert_eq!(r.restart_ms(), 0.0);
        r.recovery.as_mut().unwrap().restart = Some(RestartReport {
            crash_time_ms: 5_000.0,
            restart_ms: 123.0,
            redo_records: 60,
            log_pages_read: 9,
            data_pages_read: 20,
            dirty_pages_at_crash: 20,
            locks_released_at_crash: 4,
            locks_reacquired: 20,
        });
        assert_eq!(r.restart_ms(), 123.0);
    }
}
