//! Ready-made configurations for the experiments of §4 of the paper.
//!
//! Every figure and table of the evaluation is driven by one of the builders
//! in this module (see `DESIGN.md` for the experiment index):
//!
//! * Fig. 4.1 — [`log_allocation_config`] with the four [`LogVariant`]s;
//! * Fig. 4.2 / 4.3 — [`debit_credit_config`] with the six
//!   [`DebitCreditStorage`] variants and both update strategies;
//! * Fig. 4.4 / 4.5 and Table 4.2 — [`caching_config`] with the
//!   [`SecondLevel`] variants;
//! * Fig. 4.6 / 4.7 — [`trace_config`] with the [`TraceStorage`] variants;
//! * Fig. 4.8 — [`contention_config`] with the [`ContentionAllocation`]
//!   variants and both lock granularities.
//!
//! Beyond the paper, [`data_sharing_config`] builds the multi-node
//! data-sharing topology (N computing modules, shared storage complex, global
//! lock service) swept by the `fig5_x_node_scaling` bench,
//! [`shared_nothing_config`] the partitioned (shared-nothing,
//! function-shipping) alternative compared against it by the `fig7.x`
//! experiment and the `fig7_architecture_compare` bench, and
//! [`recovery_config`] builds the crash-recovery topology (FORCE/NOFORCE ×
//! disk-/NVEM-resident log × checkpoint interval) swept by the
//! `fig6_restart_time` bench.

#[cfg(test)]
use bufmgr::PageLocation;
use bufmgr::{BufferConfig, PartitionPolicy, SecondLevelMode, UpdateStrategy};
use dbmodel::{
    synthetic, DebitCreditConfig, DebitCreditGenerator, SyntheticTraceSpec, SyntheticWorkload,
    TraceGenerator,
};
use lockmgr::CcMode;
use simkernel::SimRng;
use storage::{DeviceSpec, DiskUnitKind, DiskUnitParams, IoSchedulerParams, NvemParams};

use crate::config::{
    Architecture, CmParams, CoherenceParams, ForcePolicy, LogAllocation, LogTruncation, NodeParams,
    ParallelismParams, PartitioningParams, RecoveryParams, SimulationConfig, WorkloadParams,
};

/// Index of the database disk unit in every preset that uses disks.
pub const DB_UNIT: usize = 0;
/// Index of the log disk unit in every preset that uses disks.
pub const LOG_UNIT: usize = 1;

/// Default seed used by the presets (override `config.seed` to vary).
pub const DEFAULT_SEED: u64 = 21_691; // TR 216/91

fn db_disk_unit(kind: DiskUnitKind, cache_pages: usize) -> DeviceSpec {
    // Enough controllers and disk servers that the database disks never become
    // the bottleneck at the studied transaction rates (§4.3: "a sufficiently
    // high number of disk servers and controllers to avoid bottlenecks").
    DiskUnitParams::database_disks(kind, 32, 128)
        .with_cache_size(cache_pages.max(1))
        .into()
}

fn log_disk_unit(kind: DiskUnitKind, disks: usize, cache_pages: usize) -> DeviceSpec {
    DiskUnitParams::log_disks(kind, disks.clamp(1, 8), disks)
        .with_cache_size(cache_pages.max(1))
        .into()
}

fn debit_credit_cc_modes() -> Vec<CcMode> {
    // Page-level locking for BRANCH/TELLER and ACCOUNT, no locking for the
    // HISTORY file (synchronized by latches, §4.1).
    vec![CcMode::Page, CcMode::Page, CcMode::None]
}

/// The Debit-Credit workload generator; `scale = 1` is the full paper database
/// (500 branches, 50 M accounts), larger scale factors shrink it for quick
/// runs and tests.
pub fn debit_credit_workload(scale: u64) -> DebitCreditGenerator {
    let cfg = if scale <= 1 {
        DebitCreditConfig::default()
    } else {
        DebitCreditConfig::scaled_down(scale)
    };
    DebitCreditGenerator::new(cfg)
}

/// Storage allocation alternatives of the database-allocation experiment
/// (§4.3, Fig. 4.2, also used for the FORCE/NOFORCE comparison of Fig. 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DebitCreditStorage {
    /// All partitions and the log on regular disks.
    Disk,
    /// All partitions and the log on disks whose non-volatile controller
    /// caches serve as write buffers.
    DiskWithNvCacheWriteBuffer,
    /// All partitions and the log on regular disks with a write buffer in
    /// NVEM.
    DiskWithNvemWriteBuffer,
    /// All partitions and the log on solid-state disks.
    Ssd,
    /// All partitions and the log resident in NVEM.
    NvemResident,
    /// All partitions main-memory resident, log on disk.
    MemoryResident,
}

impl DebitCreditStorage {
    /// All six variants, in the order the paper lists them.
    pub const ALL: [DebitCreditStorage; 6] = [
        DebitCreditStorage::Disk,
        DebitCreditStorage::DiskWithNvCacheWriteBuffer,
        DebitCreditStorage::DiskWithNvemWriteBuffer,
        DebitCreditStorage::Ssd,
        DebitCreditStorage::NvemResident,
        DebitCreditStorage::MemoryResident,
    ];

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            DebitCreditStorage::Disk => "DB+log on disk",
            DebitCreditStorage::DiskWithNvCacheWriteBuffer => "disk-cache write buffer",
            DebitCreditStorage::DiskWithNvemWriteBuffer => "NVEM write buffer",
            DebitCreditStorage::Ssd => "solid-state disk",
            DebitCreditStorage::NvemResident => "NVEM-resident",
            DebitCreditStorage::MemoryResident => "main-memory resident, log on disk",
        }
    }
}

/// Configuration for the database-allocation experiment (Fig. 4.2/4.3) with
/// the Debit-Credit parameter settings of Table 4.1 (2,000-page main-memory
/// buffer, NOFORCE by default — use
/// [`BufferConfig::with_update_strategy`] on `config.buffer` for FORCE).
pub fn debit_credit_config(storage: DebitCreditStorage, arrival_rate_tps: f64) -> SimulationConfig {
    let num_partitions = 3; // BRANCH/TELLER, ACCOUNT, HISTORY (clustered)
    let mm_buffer = 2_000;
    let mut buffer = BufferConfig {
        mm_buffer_pages: mm_buffer,
        nvem_cache_pages: 0,
        nvem_write_buffer_pages: 0,
        update_strategy: UpdateStrategy::NoForce,
        lru_k: 1,
        partitions: vec![PartitionPolicy::on_disk_unit(DB_UNIT); num_partitions],
    };
    let (devices, log_allocation) = match storage {
        DebitCreditStorage::Disk => (
            vec![
                db_disk_unit(DiskUnitKind::Regular, 1),
                log_disk_unit(DiskUnitKind::Regular, 8, 1),
            ],
            LogAllocation::DiskUnit(LOG_UNIT),
        ),
        DebitCreditStorage::DiskWithNvCacheWriteBuffer => (
            vec![
                db_disk_unit(DiskUnitKind::NonVolatileCache, 1_000),
                log_disk_unit(DiskUnitKind::NonVolatileCache, 8, 500),
            ],
            LogAllocation::DiskUnit(LOG_UNIT),
        ),
        DebitCreditStorage::DiskWithNvemWriteBuffer => {
            buffer = buffer.with_nvem_write_buffer(500);
            (
                vec![
                    db_disk_unit(DiskUnitKind::Regular, 1),
                    log_disk_unit(DiskUnitKind::Regular, 8, 1),
                ],
                LogAllocation::DiskUnitViaNvemWriteBuffer(LOG_UNIT),
            )
        }
        DebitCreditStorage::Ssd => (
            vec![
                db_disk_unit(DiskUnitKind::Ssd, 1),
                log_disk_unit(DiskUnitKind::Ssd, 8, 1),
            ],
            LogAllocation::DiskUnit(LOG_UNIT),
        ),
        DebitCreditStorage::NvemResident => {
            buffer.partitions = vec![PartitionPolicy::nvem_resident(); num_partitions];
            (Vec::new(), LogAllocation::Nvem)
        }
        DebitCreditStorage::MemoryResident => {
            buffer.partitions = vec![PartitionPolicy::memory_resident(); num_partitions];
            (
                vec![
                    db_disk_unit(DiskUnitKind::Regular, 1),
                    log_disk_unit(DiskUnitKind::Regular, 8, 1),
                ],
                LogAllocation::DiskUnit(LOG_UNIT),
            )
        }
    };
    SimulationConfig {
        cm: CmParams::default(),
        nodes: NodeParams::default(),
        architecture: Architecture::DataSharing,
        partitioning: PartitioningParams::default(),
        nvem: NvemParams::default(),
        devices,
        log_allocation,
        recovery: RecoveryParams::disabled(),
        buffer,
        cc_modes: debit_credit_cc_modes(),
        parallelism: ParallelismParams::default(),
        coherence: CoherenceParams::default(),
        io_scheduler: IoSchedulerParams::default(),
        workload: WorkloadParams::default(),
        arrival_rate_tps,
        warmup_ms: 3_000.0,
        measure_ms: 20_000.0,
        seed: DEFAULT_SEED,
    }
}

/// Log-file allocation alternatives of §4.2 (Fig. 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogVariant {
    /// Log on a single regular disk.
    SingleDisk,
    /// Log on a single disk whose non-volatile cache (500 pages) serves as a
    /// write buffer.
    SingleDiskNvCache,
    /// Log on a solid-state disk.
    Ssd,
    /// Log resident in NVEM.
    Nvem,
}

impl LogVariant {
    /// All four variants in paper order.
    pub const ALL: [LogVariant; 4] = [
        LogVariant::SingleDisk,
        LogVariant::SingleDiskNvCache,
        LogVariant::Ssd,
        LogVariant::Nvem,
    ];

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            LogVariant::SingleDisk => "log on single disk",
            LogVariant::SingleDiskNvCache => "log on single disk with non-volatile cache",
            LogVariant::Ssd => "log on SSD",
            LogVariant::Nvem => "log NVEM-resident",
        }
    }
}

/// Configuration for the log-allocation experiment (Fig. 4.1): database
/// partitions on regular disks with enough servers to avoid bottlenecks, the
/// log allocated per [`LogVariant`], NOFORCE.
pub fn log_allocation_config(variant: LogVariant, arrival_rate_tps: f64) -> SimulationConfig {
    let mut config = debit_credit_config(DebitCreditStorage::Disk, arrival_rate_tps);
    match variant {
        LogVariant::SingleDisk => {
            config.devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::Regular, 1, 1);
        }
        LogVariant::SingleDiskNvCache => {
            config.devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::NonVolatileCache, 1, 500);
        }
        LogVariant::Ssd => {
            config.devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::Ssd, 1, 1);
        }
        LogVariant::Nvem => {
            config.log_allocation = LogAllocation::Nvem;
        }
    }
    config
}

/// Debit-Credit configuration with the log slot occupied by an **NVEM server
/// device** ([`storage::DeviceSpec::NvemServer`]): log writes queue at the
/// NVEM servers instead of paying a disk access.  This topology is not in the
/// paper — with the pluggable device layer it is pure configuration.
pub fn nvem_log_device_config(arrival_rate_tps: f64) -> SimulationConfig {
    let mut config = debit_credit_config(DebitCreditStorage::Disk, arrival_rate_tps);
    config.devices[LOG_UNIT] = storage::NvemDeviceParams::default().into();
    config
}

/// Data-sharing configuration: `num_nodes` computing modules — each with the
/// full CM complex of Table 4.1 — share one disk-resident Debit-Credit
/// database and a *single* shared log disk (the Fig. 4.1 bottleneck device).
/// `arrival_rate_tps` is the total rate over all nodes; arrivals are assigned
/// round robin.
///
/// Concurrency control is the global lock service on node 0: every lock
/// request from another node pays a message round trip
/// (`nodes.remote_lock_delay_ms`), and a node's committed updates invalidate
/// stale buffer copies on the other nodes.  With `num_nodes == 1` this is
/// exactly `debit_credit_config(DebitCreditStorage::Disk, …)` with a
/// single-disk log — the paper's centralized system.
///
/// The interesting regime is `arrival_rate_tps` above the ~200 TPS ceiling of
/// one log disk: adding nodes then scales the CPU complex linearly but
/// throughput sub-linearly, because all nodes queue at the shared log device
/// and pay remote lock messages (`fig5_x_node_scaling` sweeps this).
pub fn data_sharing_config(num_nodes: usize, arrival_rate_tps: f64) -> SimulationConfig {
    let mut config = debit_credit_config(DebitCreditStorage::Disk, arrival_rate_tps);
    config.nodes = NodeParams::data_sharing(num_nodes);
    // One shared log disk so log traffic, not CPU capacity, caps scaling.
    config.devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::Regular, 1, 1);
    config
}

/// Shared-nothing configuration: the same `num_nodes`-CM Debit-Credit
/// topology as [`data_sharing_config`] (same database, same per-CM
/// parameters, same total arrival rate assigned round robin), but with
/// [`Architecture::SharedNothing`]: the database is hash-declustered over
/// the nodes ([`PartitioningParams::default`]), remote object references are
/// function-shipped to the partition owner (message round trip + remote CPU
/// surcharge on the owner), locking is node-local, and commit runs a
/// two-phase message exchange with the remote owners of the written pages.
///
/// Architectural difference on the log side: shared nothing partitions the
/// *log* too (each node logs locally), so the log unit gets one disk per
/// node, while [`data_sharing_config`] keeps the single *shared* log disk
/// all nodes queue at.  (Approximation: the `n` log disks live in one unit
/// and serve a common queue — a pooled M/M/n rather than `n` independent
/// per-node M/M/1 queues, so waits are slightly shorter than a strictly
/// partitioned log under bursty per-node traffic; the capacity scaling,
/// which drives the crossover, is the same.)  This asymmetry is the
/// architecture, not a tuning choice — and it is where the `fig7.x`
/// crossover comes from: data sharing
/// saturates its shared log disk as nodes are added, shared nothing instead
/// pays a growing function-shipping overhead as the remote-access fraction
/// `(n-1)/n` rises.  With `num_nodes == 1` both configurations degenerate to
/// the same centralized single-log-disk system and produce identical
/// steady-state behaviour.
pub fn shared_nothing_config(num_nodes: usize, arrival_rate_tps: f64) -> SimulationConfig {
    let mut config = data_sharing_config(num_nodes, arrival_rate_tps);
    config.architecture = Architecture::SharedNothing;
    config.partitioning = PartitioningParams::default();
    // One log disk per node: each partition owner logs locally.
    config.devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::Regular, num_nodes, 1);
    config
}

/// Configuration for the restart-time experiment (`fig6.x`, beyond the
/// paper's figures but directly on its §3.3 trade-offs): the disk-resident
/// Debit-Credit database with recovery enabled, crossing FORCE vs NOFORCE
/// with a disk- vs NVEM-resident log.
///
/// * `force` selects the update strategy **and** the matching
///   [`ForcePolicy`]: under FORCE every committed update is propagated at
///   commit and restart degenerates to a log scan; under NOFORCE restart
///   must redo the lost updates.
/// * `nvem_log` moves the log to NVEM ([`LogAllocation::Nvem`] +
///   [`LogTruncation::NvemResident`]), so both commit log writes and the
///   restart's log-tail reads run at NVEM speed instead of paying the log
///   disks.
/// * `checkpoint_interval_ms` enables fuzzy checkpoints (`0` disables them;
///   redo then reaches back to the start of the log).
///
/// The log unit keeps the eight-disk configuration of
/// [`debit_credit_config`], so at moderate rates the log device is *not* the
/// throughput bottleneck and the variants reach equal throughput while their
/// restart times diverge — the trade-off the experiment measures.  Combine
/// with [`crate::Simulation::simulate_crash_at`] to obtain a restart report.
pub fn recovery_config(
    force: bool,
    nvem_log: bool,
    checkpoint_interval_ms: f64,
    arrival_rate_tps: f64,
) -> SimulationConfig {
    let mut config = debit_credit_config(DebitCreditStorage::Disk, arrival_rate_tps);
    config.recovery = RecoveryParams {
        checkpoint_interval_ms,
        force_policy: if force {
            ForcePolicy::Force
        } else {
            ForcePolicy::NoForce
        },
        log_truncation: if nvem_log {
            LogTruncation::NvemResident
        } else {
            LogTruncation::DiskResident
        },
    };
    if force {
        config.buffer.update_strategy = UpdateStrategy::Force;
    }
    if nvem_log {
        config.log_allocation = LogAllocation::Nvem;
    }
    config
}

/// Second-level cache alternatives of the caching experiments
/// (§4.5, Fig. 4.4/4.5, Table 4.2; §4.6, Fig. 4.6/4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecondLevel {
    /// Main-memory caching only, database and log on regular disks.
    None,
    /// Volatile disk cache of the given size (pages) on the database disks.
    VolatileDiskCache(usize),
    /// Non-volatile disk cache of the given size on the database and log disks.
    NonVolatileDiskCache(usize),
    /// Second-level database buffer of the given size in NVEM (log in NVEM).
    NvemCache(usize),
    /// Only a write buffer in the non-volatile disk caches (no read caching):
    /// the disk-cache size is kept minimal so read hits are negligible.
    DiskCacheWriteBufferOnly,
}

impl SecondLevel {
    /// Short label for report tables.
    pub fn label(&self) -> String {
        match self {
            SecondLevel::None => "main memory caching only".to_string(),
            SecondLevel::VolatileDiskCache(n) => format!("volatile disk cache ({n})"),
            SecondLevel::NonVolatileDiskCache(n) => format!("non-volatile disk cache ({n})"),
            SecondLevel::NvemCache(n) => format!("NVEM cache ({n})"),
            SecondLevel::DiskCacheWriteBufferOnly => "disk-cache write buffer".to_string(),
        }
    }
}

/// Configuration for the Debit-Credit caching experiments: main-memory buffer
/// of `mm_pages`, the given second-level configuration, FORCE or NOFORCE.
///
/// As in the paper, configurations with non-volatile disk caches or NVEM also
/// use them for logging; the volatile-cache and memory-only configurations log
/// to a (non-bottleneck) log disk.
pub fn caching_config(
    mm_pages: usize,
    second_level: SecondLevel,
    force: bool,
    arrival_rate_tps: f64,
) -> SimulationConfig {
    let mut config = debit_credit_config(DebitCreditStorage::Disk, arrival_rate_tps);
    config.buffer.mm_buffer_pages = mm_pages.max(1);
    if force {
        config.buffer.update_strategy = UpdateStrategy::Force;
    }
    match second_level {
        SecondLevel::None => {}
        SecondLevel::VolatileDiskCache(pages) => {
            config.devices[DB_UNIT] = db_disk_unit(DiskUnitKind::VolatileCache, pages);
        }
        SecondLevel::NonVolatileDiskCache(pages) => {
            config.devices[DB_UNIT] = db_disk_unit(DiskUnitKind::NonVolatileCache, pages);
            config.devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::NonVolatileCache, 8, 500);
        }
        SecondLevel::NvemCache(pages) => {
            config.buffer = config.buffer.with_nvem_cache(pages, SecondLevelMode::All);
            config.log_allocation = LogAllocation::Nvem;
        }
        SecondLevel::DiskCacheWriteBufferOnly => {
            // A small non-volatile cache acts purely as a write buffer.
            config.devices[DB_UNIT] = db_disk_unit(DiskUnitKind::NonVolatileCache, 64);
            config.devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::NonVolatileCache, 8, 64);
        }
    }
    config
}

/// Storage variants of the trace-driven caching experiment (Fig. 4.6/4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStorage {
    /// Main-memory caching only, database on regular disks.
    MmOnly,
    /// Volatile disk cache of the given size on the database disks.
    VolatileDiskCache(usize),
    /// Non-volatile disk cache of the given size on the database and log disks.
    NonVolatileDiskCache(usize),
    /// Second-level NVEM buffer of the given size (log in NVEM).
    NvemCache(usize),
    /// Complete database allocation on solid-state disks.
    Ssd,
    /// Complete database allocation in NVEM.
    NvemResident,
}

impl TraceStorage {
    /// Short label for report tables.
    pub fn label(&self) -> String {
        match self {
            TraceStorage::MmOnly => "main memory caching only".to_string(),
            TraceStorage::VolatileDiskCache(n) => format!("volatile disk cache ({n})"),
            TraceStorage::NonVolatileDiskCache(n) => format!("non-volatile disk cache ({n})"),
            TraceStorage::NvemCache(n) => format!("NVEM cache ({n})"),
            TraceStorage::Ssd => "solid-state disk".to_string(),
            TraceStorage::NvemResident => "NVEM-resident".to_string(),
        }
    }
}

/// The synthetic trace workload standing in for the real-life trace of §4.6.
/// `scale = 1` reproduces the full published statistics (≈17,500 transactions,
/// ≈1 M references); larger scale factors shrink it for tests.  The trace is
/// replayed cyclically so arbitrary simulation lengths are possible.
pub fn trace_workload(scale: usize, seed: u64) -> TraceGenerator {
    let spec = if scale <= 1 {
        SyntheticTraceSpec::default()
    } else {
        SyntheticTraceSpec::scaled_down(scale)
    };
    let mut rng = SimRng::seed_from(seed);
    TraceGenerator::new(spec.generate(&mut rng), true)
}

/// Configuration for the trace-driven experiments (Fig. 4.6/4.7).  The trace
/// touches 13 files; all of them share the storage variant.  The arrival rate
/// is fixed (the paper uses a fixed rate for this experiment); 40 TPS keeps
/// the 200-MIPS CPU complex below saturation for the ≈56-reference average
/// transaction.
pub fn trace_config(
    mm_pages: usize,
    storage: TraceStorage,
    arrival_rate_tps: f64,
) -> SimulationConfig {
    let num_partitions = 13;
    let mut buffer = BufferConfig {
        mm_buffer_pages: mm_pages.max(1),
        nvem_cache_pages: 0,
        nvem_write_buffer_pages: 0,
        update_strategy: UpdateStrategy::NoForce,
        lru_k: 1,
        partitions: vec![PartitionPolicy::on_disk_unit(DB_UNIT); num_partitions],
    };
    let mut log_allocation = LogAllocation::DiskUnit(LOG_UNIT);
    let mut devices = vec![
        db_disk_unit(DiskUnitKind::Regular, 1),
        log_disk_unit(DiskUnitKind::Regular, 4, 1),
    ];
    match storage {
        TraceStorage::MmOnly => {}
        TraceStorage::VolatileDiskCache(pages) => {
            devices[DB_UNIT] = db_disk_unit(DiskUnitKind::VolatileCache, pages);
        }
        TraceStorage::NonVolatileDiskCache(pages) => {
            devices[DB_UNIT] = db_disk_unit(DiskUnitKind::NonVolatileCache, pages);
            devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::NonVolatileCache, 4, 500);
        }
        TraceStorage::NvemCache(pages) => {
            buffer = buffer.with_nvem_cache(pages, SecondLevelMode::All);
            log_allocation = LogAllocation::Nvem;
        }
        TraceStorage::Ssd => {
            devices[DB_UNIT] = db_disk_unit(DiskUnitKind::Ssd, 1);
            devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::Ssd, 4, 1);
        }
        TraceStorage::NvemResident => {
            buffer.partitions = vec![PartitionPolicy::nvem_resident(); num_partitions];
            log_allocation = LogAllocation::Nvem;
        }
    }
    let cc_modes = vec![CcMode::Page; num_partitions];
    SimulationConfig {
        cm: CmParams {
            // Long transactions: allow more of them in the system at once.
            mpl: 400,
            ..CmParams::default()
        },
        nodes: NodeParams::default(),
        architecture: Architecture::DataSharing,
        partitioning: PartitioningParams::default(),
        nvem: NvemParams::default(),
        devices,
        log_allocation,
        recovery: RecoveryParams::disabled(),
        buffer,
        cc_modes,
        parallelism: ParallelismParams::default(),
        coherence: CoherenceParams::default(),
        io_scheduler: IoSchedulerParams::default(),
        workload: WorkloadParams::default(),
        arrival_rate_tps,
        warmup_ms: 3_000.0,
        measure_ms: 20_000.0,
        seed: DEFAULT_SEED,
    }
}

/// Storage allocation strategies of the lock-contention experiment (§4.7,
/// Fig. 4.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentionAllocation {
    /// Both partitions and the log on disks.
    DiskBased,
    /// The small (high-contention) partition and the log in NVEM, the large
    /// partition on disk.
    Mixed,
    /// Both partitions and the log in NVEM.
    NvemResident,
}

impl ContentionAllocation {
    /// All three variants in paper order.
    pub const ALL: [ContentionAllocation; 3] = [
        ContentionAllocation::DiskBased,
        ContentionAllocation::Mixed,
        ContentionAllocation::NvemResident,
    ];

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            ContentionAllocation::DiskBased => "disk-based",
            ContentionAllocation::Mixed => "mixed (small partition + log in NVEM)",
            ContentionAllocation::NvemResident => "NVEM-resident",
        }
    }
}

/// The high-contention synthetic workload of §4.7: one variable-size,
/// 100 %-update transaction type, 80 % of the accesses on a small 10,000-object
/// partition, 20 % on a 100,000-object partition, blocking factor 10.
pub fn contention_workload() -> SyntheticWorkload {
    synthetic::contention_workload()
}

/// Configuration for the lock-contention experiment (Fig. 4.8).
pub fn contention_config(
    allocation: ContentionAllocation,
    granularity: CcMode,
    arrival_rate_tps: f64,
) -> SimulationConfig {
    let mut partitions = vec![PartitionPolicy::on_disk_unit(DB_UNIT); 2];
    let mut log_allocation = LogAllocation::DiskUnit(LOG_UNIT);
    match allocation {
        ContentionAllocation::DiskBased => {}
        ContentionAllocation::Mixed => {
            partitions[0] = PartitionPolicy::nvem_resident();
            log_allocation = LogAllocation::Nvem;
        }
        ContentionAllocation::NvemResident => {
            partitions = vec![PartitionPolicy::nvem_resident(); 2];
            log_allocation = LogAllocation::Nvem;
        }
    }
    let buffer = BufferConfig {
        mm_buffer_pages: 2_000,
        nvem_cache_pages: 0,
        nvem_write_buffer_pages: 0,
        update_strategy: UpdateStrategy::NoForce,
        lru_k: 1,
        partitions,
    };
    SimulationConfig {
        cm: CmParams::default(),
        nodes: NodeParams::default(),
        architecture: Architecture::DataSharing,
        partitioning: PartitioningParams::default(),
        nvem: NvemParams::default(),
        devices: vec![
            db_disk_unit(DiskUnitKind::Regular, 1),
            log_disk_unit(DiskUnitKind::Regular, 8, 1),
        ],
        log_allocation,
        recovery: RecoveryParams::disabled(),
        buffer,
        cc_modes: vec![granularity; 2],
        parallelism: ParallelismParams::default(),
        coherence: CoherenceParams::default(),
        io_scheduler: IoSchedulerParams::default(),
        workload: WorkloadParams::default(),
        arrival_rate_tps,
        warmup_ms: 3_000.0,
        measure_ms: 20_000.0,
        seed: DEFAULT_SEED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::WorkloadGenerator;

    #[test]
    fn all_debit_credit_presets_validate() {
        for storage in DebitCreditStorage::ALL {
            let c = debit_credit_config(storage, 100.0);
            assert!(c.validate().is_ok(), "{storage:?}: {:?}", c.validate());
            assert!(!storage.label().is_empty());
        }
    }

    #[test]
    fn all_log_allocation_presets_validate() {
        for v in LogVariant::ALL {
            let c = log_allocation_config(v, 100.0);
            assert!(c.validate().is_ok(), "{v:?}");
            assert!(!v.label().is_empty());
        }
    }

    #[test]
    fn caching_presets_validate_for_both_strategies() {
        let variants = [
            SecondLevel::None,
            SecondLevel::VolatileDiskCache(1_000),
            SecondLevel::NonVolatileDiskCache(1_000),
            SecondLevel::NvemCache(500),
            SecondLevel::DiskCacheWriteBufferOnly,
        ];
        for v in variants {
            for force in [false, true] {
                let c = caching_config(500, v, force, 500.0);
                assert!(c.validate().is_ok(), "{v:?} force={force}");
            }
            assert!(!v.label().is_empty());
        }
    }

    #[test]
    fn trace_presets_validate() {
        let variants = [
            TraceStorage::MmOnly,
            TraceStorage::VolatileDiskCache(2_000),
            TraceStorage::NonVolatileDiskCache(2_000),
            TraceStorage::NvemCache(2_000),
            TraceStorage::Ssd,
            TraceStorage::NvemResident,
        ];
        for v in variants {
            let c = trace_config(1_000, v, 40.0);
            assert!(c.validate().is_ok(), "{v:?}");
            assert!(!v.label().is_empty());
        }
    }

    #[test]
    fn contention_presets_validate() {
        for a in ContentionAllocation::ALL {
            for g in [CcMode::Page, CcMode::Object] {
                let c = contention_config(a, g, 100.0);
                assert!(c.validate().is_ok(), "{a:?} {g:?}");
            }
            assert!(!a.label().is_empty());
        }
    }

    #[test]
    fn debit_credit_partition_ids_match_the_config() {
        // The preset configures 3 partitions (BRANCH/TELLER, ACCOUNT, HISTORY
        // with clustering); the workload generator must produce the same ids.
        let g = debit_credit_workload(100);
        assert_eq!(g.database().num_partitions(), 3);
        let parts = g.partitions();
        assert_eq!(parts.branch, 0);
        assert_eq!(parts.account, 1);
        assert_eq!(parts.history, 2);
        let c = debit_credit_config(DebitCreditStorage::Disk, 50.0);
        assert_eq!(c.buffer.partitions.len(), 3);
        assert_eq!(c.cc_modes.len(), 3);
    }

    #[test]
    fn trace_workload_matches_partition_count() {
        let mut g = trace_workload(50, 1);
        assert_eq!(g.database().num_partitions(), 13);
        let c = trace_config(1_000, TraceStorage::MmOnly, 40.0);
        assert_eq!(c.buffer.partitions.len(), 13);
        let mut rng = SimRng::seed_from(1);
        assert!(g.next_transaction(&mut rng).is_some());
    }

    #[test]
    fn contention_workload_matches_partition_count() {
        let w = contention_workload();
        assert_eq!(w.database().num_partitions(), 2);
        let c = contention_config(ContentionAllocation::Mixed, CcMode::Object, 50.0);
        assert_eq!(c.buffer.partitions.len(), 2);
        assert_eq!(c.buffer.partitions[0].location, PageLocation::NvemResident);
        assert_eq!(
            c.buffer.partitions[1].location,
            PageLocation::DiskUnit(DB_UNIT)
        );
    }

    #[test]
    fn recovery_presets_validate_for_all_variants() {
        for force in [false, true] {
            for nvem_log in [false, true] {
                for interval in [0.0, 500.0] {
                    let c = recovery_config(force, nvem_log, interval, 150.0);
                    assert!(
                        c.validate().is_ok(),
                        "force={force} nvem_log={nvem_log} interval={interval}: {:?}",
                        c.validate()
                    );
                    assert_eq!(c.recovery.enabled(), interval > 0.0);
                }
            }
        }
        let nvem = recovery_config(false, true, 1_000.0, 150.0);
        assert_eq!(nvem.log_allocation, LogAllocation::Nvem);
        assert_eq!(nvem.recovery.log_truncation, LogTruncation::NvemResident);
        let force = recovery_config(true, false, 1_000.0, 150.0);
        assert_eq!(force.buffer.update_strategy, UpdateStrategy::Force);
        assert_eq!(force.recovery.force_policy, ForcePolicy::Force);
        // With recovery disabled the base preset is unchanged.
        assert_eq!(
            recovery_config(false, false, 0.0, 150.0),
            debit_credit_config(DebitCreditStorage::Disk, 150.0)
        );
    }

    #[test]
    fn data_sharing_presets_validate() {
        for n in [1, 2, 4, 8] {
            let c = data_sharing_config(n, 300.0);
            assert!(c.validate().is_ok(), "{n} nodes: {:?}", c.validate());
            assert_eq!(c.nodes.num_nodes, n);
            assert!(c.nodes.remote_lock_delay_ms > 0.0);
            assert_eq!(c.devices[LOG_UNIT].disk().num_disks, 1);
        }
        // A single node is the centralized single-log-disk system.
        let single = data_sharing_config(1, 300.0);
        let mut reference = debit_credit_config(DebitCreditStorage::Disk, 300.0);
        reference.devices[LOG_UNIT] = log_disk_unit(DiskUnitKind::Regular, 1, 1);
        reference.nodes = NodeParams::data_sharing(1);
        assert_eq!(single, reference);
    }

    #[test]
    fn shared_nothing_presets_validate() {
        for n in [1, 2, 4, 8] {
            let c = shared_nothing_config(n, 300.0);
            assert!(c.validate().is_ok(), "{n} nodes: {:?}", c.validate());
            assert_eq!(c.architecture, Architecture::SharedNothing);
            assert_eq!(c.nodes.num_nodes, n);
            // One log disk per node (the partitioned log).
            assert_eq!(c.devices[LOG_UNIT].disk().num_disks, n);
        }
        // Apart from architecture, partitioning and the log layout, the
        // shared-nothing preset is the data-sharing topology.
        let mut sn = shared_nothing_config(4, 300.0);
        sn.architecture = Architecture::DataSharing;
        sn.devices[LOG_UNIT] = data_sharing_config(4, 300.0).devices[LOG_UNIT];
        assert_eq!(sn, data_sharing_config(4, 300.0));
    }

    #[test]
    fn log_variants_differ_in_log_unit_configuration() {
        let single = log_allocation_config(LogVariant::SingleDisk, 100.0);
        assert_eq!(single.devices[LOG_UNIT].disk().num_disks, 1);
        let cached = log_allocation_config(LogVariant::SingleDiskNvCache, 100.0);
        assert_eq!(
            cached.devices[LOG_UNIT].disk().kind,
            DiskUnitKind::NonVolatileCache
        );
        let ssd = log_allocation_config(LogVariant::Ssd, 100.0);
        assert_eq!(ssd.devices[LOG_UNIT].disk().kind, DiskUnitKind::Ssd);
        let nvem = log_allocation_config(LogVariant::Nvem, 100.0);
        assert_eq!(nvem.log_allocation, LogAllocation::Nvem);
    }
}
