//! # tpsim — transaction processing over extended storage hierarchies
//!
//! A from-scratch reproduction of **TPSIM**, the simulation system of
//! E. Rahm, *Performance Evaluation of Extended Storage Architectures for
//! Transaction Processing* (TR 216/91, University of Kaiserslautern, 1991).
//!
//! TPSIM models a centralized transaction system (Fig. 3.1 of the paper):
//!
//! * a **SOURCE** generating the workload (Debit-Credit, general synthetic
//!   loads, or database-trace replays — see the [`dbmodel`] crate),
//! * a **computing module (CM)** with a transaction manager, CPU servers, a
//!   concurrency-control component (strict two-phase locking, [`lockmgr`]),
//!   and a DBMS buffer manager ([`bufmgr`]), and
//! * **external storage**: regular disks, disks with volatile or non-volatile
//!   caches, solid-state disks, and non-volatile extended memory
//!   ([`storage`]).
//!
//! The crate's central type is [`Simulation`]: configure it with a
//! [`SimulationConfig`] and a workload generator, call [`Simulation::run`] and
//! obtain a [`SimulationReport`] with response times, throughput, device
//! utilizations, buffer hit ratios and lock statistics.
//!
//! ```
//! use tpsim::presets::{debit_credit_config, debit_credit_workload, DebitCreditStorage};
//! use tpsim::Simulation;
//!
//! // A small Debit-Credit run with the whole database on disk (NOFORCE).
//! let mut config = debit_credit_config(DebitCreditStorage::Disk, 50.0);
//! config.warmup_ms = 500.0;
//! config.measure_ms = 2_000.0;
//! let workload = debit_credit_workload(100); // scaled-down database
//! let report = Simulation::new(config, workload).run();
//! assert!(report.completed > 0);
//! assert!(report.response_time.mean > 0.0);
//! ```

// Every public item of the crate must be documented; CI builds docs with
// `RUSTDOCFLAGS=-D warnings`, which turns missed items into hard errors.
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod presets;
pub mod recovery;
pub mod tables;

pub use config::{
    Architecture, CmParams, CoherenceParams, CoherenceProtocol, ForcePolicy, LogAllocation,
    LogTruncation, NodeParams, PageTransfer, ParallelismParams, PartitioningParams, RecoveryParams,
    SimulationConfig, WorkloadParams, WorkloadSchedule,
};
pub use engine::Simulation;
pub use metrics::{
    CoherenceReport, DeviceReport, IoSchedulerReport, KernelProfile, NodeReport, RecoveryReport,
    ResponseTimeStats, RestartReport, ShippingReport, SimulationReport, TailLatencyReport,
};

// Re-export the substrate crates so downstream users need only one dependency.
pub use bufmgr;
pub use dbmodel;
pub use lockmgr;
pub use simkernel;
pub use storage;
