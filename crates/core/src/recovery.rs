//! Crash recovery and checkpointing: the redo log and its bookkeeping.
//!
//! The engine models recovery at the level the paper's evaluation needs
//! (§3.3: FORCE/NOFORCE, log allocation and NVEM-resident log truncation
//! traded against restart time):
//!
//! * Every committed update transaction appends one [`RedoRecord`] per
//!   written page to the global [`RedoLog`]; the record's LSN also enters the
//!   owning node's dirty-page table ([`bufmgr::DirtyPageTable`]) as the
//!   page's recovery LSN if the page has no earlier unpropagated committed
//!   update.  The buffer manager removes the entry as soon as the page's
//!   current version reaches non-volatile storage (write-back, NVEM
//!   migration, FORCE write) or is invalidated by another node's commit.
//! * A *fuzzy checkpoint* (every `checkpoint_interval_ms`) writes one
//!   checkpoint record to the log allocation, advances the redo boundary to
//!   the minimum recovery LSN over all nodes' dirty-page tables and truncates
//!   the redo log before it.  Checkpoints never flush dirty pages.
//! * A simulated crash ([`crate::Simulation::simulate_crash_at`]) stops the
//!   run, discards all volatile state and replays the redo records from the
//!   last checkpoint's boundary, paying the log-device (or NVEM) read latency
//!   per log page and the database-device read latency per lost page, through
//!   the same [`storage::StorageDevice`] models the steady-state run uses.
//!
//! This module holds the pure data structures; the event-driven side
//! (checkpoint events, the crash handler and the restart computation) lives
//! in `engine/recovery.rs`.

use std::collections::VecDeque;

use dbmodel::PageId;
use simkernel::time::SimTime;

/// Log sequence number: a monotonically increasing id per redo record.
pub type Lsn = u64;

/// Size of one log page in bytes (the paper's 4 KB page).
pub const LOG_PAGE_BYTES: usize = 4096;

/// One redo record: a committed update to `page` by a transaction on `node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedoRecord {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// The computing module whose transaction committed the update.
    pub node: usize,
    /// The partition of the written page.
    pub partition: usize,
    /// The written page.
    pub page: PageId,
}

/// The global redo log: committed-update records in LSN order.
///
/// The log is shared by all nodes (like the log device).  Checkpoints
/// truncate it so memory stays bounded by the redo distance, not the run
/// length.
#[derive(Debug)]
pub struct RedoLog {
    records: VecDeque<RedoRecord>,
    next_lsn: Lsn,
    truncated_records: u64,
    records_per_page: u64,
}

impl RedoLog {
    /// Creates an empty redo log for records of `log_record_bytes` bytes.
    pub fn new(log_record_bytes: usize) -> Self {
        let per_page = (LOG_PAGE_BYTES / log_record_bytes.clamp(1, LOG_PAGE_BYTES)).max(1);
        Self {
            records: VecDeque::new(),
            next_lsn: 1,
            truncated_records: 0,
            records_per_page: per_page as u64,
        }
    }

    /// Redo records per 4 KB log page.
    pub fn records_per_page(&self) -> u64 {
        self.records_per_page
    }

    /// The LSN the next appended record will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Appends a committed-update record and returns its LSN.
    pub fn append(&mut self, node: usize, partition: usize, page: PageId) -> Lsn {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.records.push_back(RedoRecord {
            lsn,
            node,
            partition,
            page,
        });
        lsn
    }

    /// Records currently retained (after truncation).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no record is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records dropped by checkpoint truncation so far.
    pub fn truncated_records(&self) -> u64 {
        self.truncated_records
    }

    /// Drops every record with an LSN below `lsn` (checkpoint truncation);
    /// returns how many records were dropped.
    pub fn truncate_before(&mut self, lsn: Lsn) -> u64 {
        let mut dropped = 0;
        while self.records.front().is_some_and(|r| r.lsn < lsn) {
            self.records.pop_front();
            dropped += 1;
        }
        self.truncated_records += dropped;
        dropped
    }

    /// The retained records with an LSN at or above `lsn`, in LSN order.
    pub fn records_since(&self, lsn: Lsn) -> impl Iterator<Item = &RedoRecord> {
        self.records.iter().filter(move |r| r.lsn >= lsn)
    }

    /// Number of log pages holding `records` redo records (at least one page
    /// — the checkpoint / log-master record — is always read at restart).
    pub fn pages_for(&self, records: u64) -> u64 {
        1 + records.div_ceil(self.records_per_page)
    }
}

/// Engine-side runtime state of the recovery subsystem: the redo log, the
/// current redo boundary and the checkpoint accounting.
#[derive(Debug)]
pub(crate) struct RecoveryRuntime {
    /// The global redo log.
    pub redo: RedoLog,
    /// Redo starts here after a crash (advanced by every checkpoint).
    pub redo_start_lsn: Lsn,
    /// Checkpoints completed during the measurement interval.
    pub checkpoints_taken: u64,
    /// Simulated time spent writing checkpoint records (ms, measurement
    /// interval).  For device-resident logs this is the measured latency of
    /// the checkpoint log write including queueing.
    pub checkpoint_overhead_ms: SimTime,
    /// Redo records dropped by checkpoint truncation (measurement interval).
    pub records_truncated: u64,
}

impl RecoveryRuntime {
    pub fn new(log_record_bytes: usize) -> Self {
        Self {
            redo: RedoLog::new(log_record_bytes),
            redo_start_lsn: 1,
            checkpoints_taken: 0,
            checkpoint_overhead_ms: 0.0,
            records_truncated: 0,
        }
    }

    /// End-of-warm-up reset: clears the measurement counters without
    /// touching the redo log or the redo boundary (they are state, not
    /// statistics).  The engine additionally forgets the issue stamps of
    /// in-flight checkpoint writes, so their (partly pre-warm-up) latency
    /// cannot leak into the measured checkpoint overhead.
    pub fn reset_stats(&mut self) {
        self.checkpoints_taken = 0;
        self.checkpoint_overhead_ms = 0.0;
        self.records_truncated = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsns_are_monotonic_and_start_at_one() {
        let mut log = RedoLog::new(512);
        assert_eq!(log.next_lsn(), 1);
        assert_eq!(log.append(0, 0, PageId(10)), 1);
        assert_eq!(log.append(1, 2, PageId(11)), 2);
        assert_eq!(log.next_lsn(), 3);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn record_size_determines_records_per_page() {
        assert_eq!(RedoLog::new(512).records_per_page(), 8);
        assert_eq!(RedoLog::new(4096).records_per_page(), 1);
        // Degenerate sizes are clamped instead of dividing by zero.
        assert_eq!(RedoLog::new(0).records_per_page(), 4096);
        assert_eq!(RedoLog::new(1_000_000).records_per_page(), 1);
    }

    #[test]
    fn truncation_drops_old_records_and_counts_them() {
        let mut log = RedoLog::new(512);
        for i in 0..10 {
            log.append(0, 0, PageId(i));
        }
        assert_eq!(log.truncate_before(5), 4); // LSNs 1..=4
        assert_eq!(log.len(), 6);
        assert_eq!(log.truncated_records(), 4);
        // Truncating again at the same boundary is a no-op.
        assert_eq!(log.truncate_before(5), 0);
        // Records since the boundary are exactly the retained tail.
        let lsns: Vec<Lsn> = log.records_since(5).map(|r| r.lsn).collect();
        assert_eq!(lsns, vec![5, 6, 7, 8, 9, 10]);
        // A later boundary filters within the retained records too.
        assert_eq!(log.records_since(9).count(), 2);
    }

    #[test]
    fn pages_for_rounds_up_and_includes_the_checkpoint_record() {
        let log = RedoLog::new(512); // 8 records per page
        assert_eq!(log.pages_for(0), 1);
        assert_eq!(log.pages_for(1), 2);
        assert_eq!(log.pages_for(8), 2);
        assert_eq!(log.pages_for(9), 3);
    }

    #[test]
    fn runtime_reset_keeps_the_log_and_boundary() {
        let mut rt = RecoveryRuntime::new(512);
        rt.redo.append(0, 0, PageId(1));
        rt.redo_start_lsn = 1;
        rt.checkpoints_taken = 3;
        rt.checkpoint_overhead_ms = 7.5;
        rt.records_truncated = 2;
        rt.reset_stats();
        assert_eq!(rt.checkpoints_taken, 0);
        assert_eq!(rt.checkpoint_overhead_ms, 0.0);
        assert_eq!(rt.records_truncated, 0);
        assert_eq!(rt.redo.len(), 1);
        assert_eq!(rt.redo_start_lsn, 1);
    }
}
