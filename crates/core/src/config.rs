//! Simulation configuration: the CM parameters of Table 3.3, the external
//! storage parameters of Table 3.4, and the run control (arrival rate,
//! warm-up, measurement interval, RNG seed).

use bufmgr::BufferConfig;
use dbmodel::{HotSpotParams, PartitionScheme};
use lockmgr::CcMode;
use simkernel::dist::PiecewiseRate;
use simkernel::time::SimTime;
use storage::{DeviceSpec, IoSchedulerParams, NvemParams};

/// CM (computing module) parameters — Table 3.3 / Table 4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmParams {
    /// Multiprogramming level: maximum number of concurrently active
    /// transactions; excess arrivals wait in the input queue.
    pub mpl: usize,
    /// Average instructions for begin-of-transaction processing.
    pub instr_bot: f64,
    /// Average instructions per object reference.
    pub instr_or: f64,
    /// Average instructions for end-of-transaction (commit) processing.
    pub instr_eot: f64,
    /// Average instructions of operating-system/DBMS overhead per I/O.
    pub instr_io: f64,
    /// Number of CPUs.
    pub num_cpus: usize,
    /// MIPS rate per CPU.
    pub mips: f64,
    /// Whether logging is performed (one log page write per update
    /// transaction at commit).
    pub logging: bool,
    /// Group-commit batch size for device log writes: up to this many
    /// committing transactions share one log page write.  Applies to
    /// [`LogAllocation::DiskUnit`] logs and to the synchronous overflow
    /// writes of [`LogAllocation::DiskUnitViaNvemWriteBuffer`] (absorbed
    /// write-buffer log writes are already asynchronous and never batch);
    /// NVEM-resident logs are unaffected.  `1` disables group commit (every
    /// committer writes its own log page, as in the paper).
    pub group_commit_size: usize,
    /// Maximum time (ms) a committing transaction waits for the group-commit
    /// batch to fill before the batch is flushed anyway.
    pub group_commit_timeout_ms: SimTime,
    /// Size of one redo log record in bytes.  Together with the 4 KB page
    /// size this determines how many redo records fit on one log page, and
    /// therefore how many log pages a crash restart must read back
    /// (see [`crate::recovery`]).
    pub log_record_bytes: usize,
}

impl Default for CmParams {
    fn default() -> Self {
        // Defaults of Table 4.1: 4 CPUs of 50 MIPS, 40k/40k/50k instruction
        // BOT/reference/EOT costs, 3,000 instructions per I/O.
        Self {
            mpl: 200,
            instr_bot: 40_000.0,
            instr_or: 40_000.0,
            instr_eot: 50_000.0,
            instr_io: 3_000.0,
            num_cpus: 4,
            mips: 50.0,
            logging: true,
            group_commit_size: 1,
            group_commit_timeout_ms: 1.0,
            log_record_bytes: 512,
        }
    }
}

impl CmParams {
    /// Aggregate CPU capacity in MIPS.
    pub fn total_mips(&self) -> f64 {
        self.num_cpus as f64 * self.mips
    }

    /// Average instruction path length of a transaction with `accesses` object
    /// references, excluding I/O overhead (250,000 instructions for the
    /// four-access Debit-Credit transaction).
    pub fn path_length(&self, accesses: usize) -> f64 {
        self.instr_bot + self.instr_eot + accesses as f64 * self.instr_or
    }

    /// Theoretical maximum transaction rate for transactions of `accesses`
    /// object references, ignoring all I/O (800 TPS in §4.1).
    pub fn max_tps(&self, accesses: usize) -> f64 {
        self.total_mips() * 1.0e6 / self.path_length(accesses)
    }
}

/// Data-sharing (multi-node) parameters.
///
/// `num_nodes` computing modules — each with its own CPU servers, local
/// buffer pool and input queue, all parameterized by the shared
/// [`CmParams`] — run in front of one shared storage complex (the
/// [`SimulationConfig::devices`] list, the NVEM and the log allocation).
/// Concurrency control is a global lock service hosted on node 0
/// ([`lockmgr::GlobalLockService`]); a lock request from any other node pays
/// a round trip of `remote_lock_delay_ms` before it reaches the shared
/// table.  A node's committed updates invalidate stale copies of the written
/// pages in the other nodes' buffer pools.
///
/// The default (`num_nodes == 1`) reproduces the paper's single-CM system
/// exactly: no messages are charged and no invalidations occur.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeParams {
    /// Number of computing modules sharing the storage complex.
    pub num_nodes: usize,
    /// One-way message delay (ms) for a lock request from a node other than
    /// the lock service's home node; a remote request pays a round trip
    /// (2×).  Ignored when `num_nodes == 1`.
    pub remote_lock_delay_ms: SimTime,
}

impl Default for NodeParams {
    fn default() -> Self {
        Self {
            num_nodes: 1,
            // ~0.2 ms per message: a cheap interconnect, noticeable against
            // the 0.125 ms object-reference CPU burst but far below a disk
            // access.
            remote_lock_delay_ms: 0.2,
        }
    }
}

impl NodeParams {
    /// A single-node (paper-identical) configuration.
    pub fn single() -> Self {
        Self::default()
    }

    /// A data-sharing configuration with `num_nodes` nodes and the default
    /// message delay.
    pub fn data_sharing(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            ..Self::default()
        }
    }
}

/// Multi-node architecture of the simulated system (Rahm's central
/// comparison: how do several computing modules share one database?).
///
/// * [`Architecture::DataSharing`]: all nodes access the *whole* database
///   through the shared storage complex; concurrency control is the global
///   lock service and commits invalidate stale buffer copies on other nodes.
/// * [`Architecture::SharedNothing`]: the database is partitioned over the
///   nodes ([`PartitioningParams`]); accesses to remote partitions are
///   function-shipped to the owner (message + remote CPU), locking is purely
///   node-local, and commit runs a two-phase message exchange with the
///   owners of the written pages.
///
/// With `num_nodes == 1` the two architectures coincide with the paper's
/// centralized system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Architecture {
    /// All nodes share the full database (global locks + invalidation).
    #[default]
    DataSharing,
    /// Partitions are owned by nodes; remote accesses are function-shipped.
    SharedNothing,
}

/// Shared-nothing partitioning and function-shipping parameters
/// (only read when [`SimulationConfig::architecture`] is
/// [`Architecture::SharedNothing`]).
///
/// The database's global page space is divided into
/// `num_nodes × partitions_per_node` virtual partitions assigned to the
/// nodes round robin ([`dbmodel::PartitionMap`]); `scheme` selects hash or
/// range declustering.  A micro-operation touching a page owned by another
/// node is shipped there: the requester pays a one-way message of
/// `remote_msg_ms` in each direction, and the shipped object reference costs
/// an extra `remote_cpu_instr` instructions *on the owner's CPUs* (request
/// handling at the remote node).  Commit adds a prepare round trip to the
/// remote owners of the written pages plus one asynchronous commit message
/// per owner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitioningParams {
    /// How pages map to virtual partitions (hash or contiguous ranges).
    pub scheme: PartitionScheme,
    /// Virtual partitions per node (more partitions smooth the load at the
    /// price of locality under the range scheme).
    pub partitions_per_node: usize,
    /// One-way message delay (ms) of a function-shipping exchange; a shipped
    /// reference pays it twice (call + reply), a commit prepare pays one
    /// round trip regardless of the number of participants (the messages
    /// travel in parallel).
    pub remote_msg_ms: SimTime,
    /// Extra instructions charged on the *owner's* CPUs per shipped object
    /// reference (request handling, dispatch).
    pub remote_cpu_instr: f64,
}

impl Default for PartitioningParams {
    fn default() -> Self {
        Self {
            scheme: PartitionScheme::Hash,
            partitions_per_node: 8,
            // Same cheap interconnect as the data-sharing lock messages, so
            // the architecture comparison is apples to apples.
            remote_msg_ms: 0.2,
            // ~10k instructions to receive, dispatch and answer a shipped
            // call — a quarter of an average object reference.
            remote_cpu_instr: 10_000.0,
        }
    }
}

impl PartitioningParams {
    /// Hash declustering with the default message and CPU costs.
    pub fn hash(partitions_per_node: usize) -> Self {
        Self {
            scheme: PartitionScheme::Hash,
            partitions_per_node,
            ..Self::default()
        }
    }

    /// Range declustering with the default message and CPU costs.
    pub fn range(partitions_per_node: usize) -> Self {
        Self {
            scheme: PartitionScheme::Range,
            partitions_per_node,
            ..Self::default()
        }
    }
}

/// Where the log file is allocated (§3.3: "NVEM-resident, SSD, disk with a
/// write buffer either in NVEM or in disk cache, or on disk without using a
/// write buffer"; SSD and cached disks are expressed through the disk-unit
/// kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogAllocation {
    /// The log is kept in non-volatile extended memory.
    Nvem,
    /// The log is written to the given disk unit (regular disk, cached disk or
    /// SSD depending on the unit's kind).
    DiskUnit(usize),
    /// The log is written to the given disk unit but the log pages first go
    /// through the NVEM write buffer (asynchronous disk update).
    DiskUnitViaNvemWriteBuffer(usize),
}

/// Update-propagation policy the recovery subsystem assumes (Härder/Reuter).
///
/// Under [`ForcePolicy::Force`] every committed update is already in the
/// permanent database (or non-volatile intermediate storage) at commit, so a
/// crash loses no committed work and restart degenerates to a log scan.
/// Under [`ForcePolicy::NoForce`] committed updates may exist only in the
/// volatile main-memory buffer and must be redone from the log after a crash.
/// When recovery is enabled the policy must agree with
/// [`bufmgr::UpdateStrategy`] in [`SimulationConfig::buffer`] (checked by
/// [`SimulationConfig::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForcePolicy {
    /// Modified pages are propagated at commit; restart needs no page redo.
    Force,
    /// Modified pages are propagated lazily; restart redoes committed
    /// updates from the log.
    NoForce,
}

/// Where the *active* redo-log tail (everything after the last checkpoint)
/// lives for restart purposes (§3.3: NVEM-resident log truncation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogTruncation {
    /// The log tail is read back from the device named by
    /// [`SimulationConfig::log_allocation`]; every log page read during
    /// restart pays that device's read latency.
    DiskResident,
    /// The log tail is retained in non-volatile extended memory (the log is
    /// truncated into NVEM at every checkpoint), so restart reads it at NVEM
    /// speed regardless of where the durable log copy lives.
    NvemResident,
}

/// Crash-recovery and checkpointing parameters.
///
/// `checkpoint_interval_ms == 0` disables checkpointing entirely: no
/// checkpoint events are scheduled, no redo bookkeeping is performed (unless
/// a crash is requested via [`crate::Simulation::simulate_crash_at`]) and the
/// run is bit-for-bit identical to an engine without the recovery subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryParams {
    /// Interval between fuzzy checkpoints (ms of simulated time); `0`
    /// disables checkpointing.  Each checkpoint writes one checkpoint record
    /// to the log allocation (contending with commit log writes), advances
    /// the redo boundary to the oldest committed-but-unpropagated update and
    /// truncates the redo log before it.
    pub checkpoint_interval_ms: SimTime,
    /// The update-propagation policy recovery assumes; must match
    /// [`SimulationConfig::buffer`]`.update_strategy` when recovery is
    /// enabled.
    pub force_policy: ForcePolicy,
    /// Where the active log tail is kept for restart reads.
    pub log_truncation: LogTruncation,
}

impl Default for RecoveryParams {
    fn default() -> Self {
        Self::disabled()
    }
}

impl RecoveryParams {
    /// Recovery switched off (no checkpoints, NOFORCE assumptions,
    /// disk-resident log tail).  This is the default of every preset.
    pub fn disabled() -> Self {
        Self {
            checkpoint_interval_ms: 0.0,
            force_policy: ForcePolicy::NoForce,
            log_truncation: LogTruncation::DiskResident,
        }
    }

    /// Checkpointing enabled at the given interval with NOFORCE assumptions.
    pub fn noforce(checkpoint_interval_ms: SimTime) -> Self {
        Self {
            checkpoint_interval_ms,
            ..Self::disabled()
        }
    }

    /// Checkpointing enabled at the given interval with FORCE assumptions.
    pub fn force(checkpoint_interval_ms: SimTime) -> Self {
        Self {
            checkpoint_interval_ms,
            force_policy: ForcePolicy::Force,
            ..Self::disabled()
        }
    }

    /// True if checkpointing (and with it steady-state redo bookkeeping) is
    /// enabled.
    pub fn enabled(&self) -> bool {
        self.checkpoint_interval_ms > 0.0
    }

    /// True if the recovery force policy agrees with the buffer manager's
    /// update strategy (the single source of truth for the consistency check
    /// in [`SimulationConfig::validate`] and
    /// [`crate::Simulation::simulate_crash_at`]).
    pub fn matches_update_strategy(&self, strategy: bufmgr::UpdateStrategy) -> bool {
        matches!(
            (self.force_policy, strategy),
            (ForcePolicy::Force, bufmgr::UpdateStrategy::Force)
                | (ForcePolicy::NoForce, bufmgr::UpdateStrategy::NoForce)
        )
    }
}

/// Parallel-kernel parameters: how many worker threads the sharded event
/// kernel may use, and the conservative lookahead of its synchronization
/// rounds.
///
/// The sequential kernel is the default and the byte-identity oracle: with
/// `kernel_threads <= 1` the engine runs today's single-calendar loop, and a
/// parallel run of the *same configuration and seed* produces a bit-for-bit
/// identical [`crate::metrics::SimulationReport`] for every thread count and
/// lookahead (see `docs/ARCHITECTURE.md`, "Parallel kernel").  The
/// parameters therefore tune wall-clock throughput only, never simulated
/// results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelismParams {
    /// Worker threads for the sharded event kernel.  `0` and `1` both select
    /// the sequential kernel; `N >= 2` shards the future event list per node
    /// and runs the shards on `min(N, num_nodes)` workers.
    pub kernel_threads: usize,
    /// Conservative lookahead window in simulated milliseconds: each
    /// synchronization round lets the shards drain up to `earliest pending
    /// event + lookahead`.  `0.0` derives the window from the modelled
    /// cross-node delays ([`SimulationConfig::lookahead_ms`]).  Any value is
    /// *correct* (the horizon protocol is order-preserving regardless); this
    /// only trades synchronization frequency against coordinator-side spill
    /// work.
    pub lookahead_ms: SimTime,
}

impl Default for ParallelismParams {
    fn default() -> Self {
        Self {
            kernel_threads: 0,
            lookahead_ms: 0.0,
        }
    }
}

impl ParallelismParams {
    /// Sequential kernel (the default).
    pub fn sequential() -> Self {
        Self::default()
    }

    /// Sharded kernel with `kernel_threads` workers and the auto-derived
    /// lookahead.
    pub fn threads(kernel_threads: usize) -> Self {
        Self {
            kernel_threads,
            lookahead_ms: 0.0,
        }
    }
}

/// Cross-node buffer coherence protocol under data sharing (§7 of the
/// paper: the cost of keeping node caches coherent is what separates the
/// data-sharing design points).
///
/// * [`CoherenceProtocol::BroadcastInvalidate`] (the default, and the only
///   protocol modelled before this parameter existed): a committing node
///   synchronously drops the stale copies of its written pages from the
///   other nodes' buffer pools at commit.  Remote pools never hold stale
///   data, but every commit pays a fan-out over the holding nodes.
/// * [`CoherenceProtocol::OnRequestValidate`]: commit only advances a
///   global per-page version counter; nothing is eagerly invalidated.
///   A node detects staleness lazily when it next references the page — a
///   buffered copy whose validation stamp is behind the global version is
///   discarded (with the same bookkeeping as an eager invalidation, dirty-
///   page-table clear included), the reference pays a validation round trip
///   to the global lock service, and the access proceeds as a buffer miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceProtocol {
    /// Eager commit-time invalidation of stale remote copies.
    #[default]
    BroadcastInvalidate,
    /// Lazy validation: version check on reference, stale hit ⇒ miss.
    OnRequestValidate,
}

/// How a buffer miss for a page that another node holds a valid copy of is
/// satisfied under data sharing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageTransfer {
    /// Re-read the page from the shared disk (the paper's base assumption).
    #[default]
    DiskReread,
    /// Fetch the page directly from the holding node's memory: a message
    /// round trip ([`CoherenceParams::transfer_msg_ms`] each way) plus a
    /// memory-copy CPU burst ([`CoherenceParams::transfer_copy_instr`])
    /// replace the disk read.
    DirectTransfer,
}

/// Cross-node buffer coherence parameters (only read under
/// [`Architecture::DataSharing`] with more than one node).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceParams {
    /// How stale remote copies are detected and discarded.
    pub protocol: CoherenceProtocol,
    /// How misses on remotely-held pages are satisfied.
    pub page_transfer: PageTransfer,
    /// One-way message delay (ms) of a direct page transfer; a transfer pays
    /// a round trip (request + page shipment).  Also the delay of an
    /// on-request validation round trip to the global version service.
    pub transfer_msg_ms: SimTime,
    /// CPU instructions to copy a transferred page between pools, charged on
    /// the requester's CPUs.
    pub transfer_copy_instr: f64,
}

impl Default for CoherenceParams {
    fn default() -> Self {
        Self {
            protocol: CoherenceProtocol::BroadcastInvalidate,
            page_transfer: PageTransfer::DiskReread,
            // The same cheap interconnect as the lock and function-shipping
            // messages, so protocol comparisons are apples to apples.
            transfer_msg_ms: 0.2,
            // ~5k instructions to receive and install a 4 KB page — an
            // eighth of an average object reference.
            transfer_copy_instr: 5_000.0,
        }
    }
}

impl CoherenceParams {
    /// The pre-existing behavior: broadcast invalidation, disk re-read.
    pub fn broadcast() -> Self {
        Self::default()
    }

    /// On-request validation (lazy staleness detection).
    pub fn on_request_validate() -> Self {
        Self {
            protocol: CoherenceProtocol::OnRequestValidate,
            ..Self::default()
        }
    }

    /// Enables direct cache-to-cache page transfer for buffer misses.
    pub fn with_direct_transfer(mut self) -> Self {
        self.page_transfer = PageTransfer::DirectTransfer;
        self
    }

    /// True for the default broadcast-invalidation / disk-reread
    /// combination — runs whose reports must stay byte-identical to those
    /// captured before the protocol options existed (the delay/cost knobs
    /// are irrelevant then: neither protocol message is ever sent).
    pub fn is_default_protocol(&self) -> bool {
        self.protocol == CoherenceProtocol::BroadcastInvalidate
            && self.page_transfer == PageTransfer::DiskReread
    }
}

/// Arrival-rate schedule of the open system: how the offered load varies
/// over simulated time.  Every variant scales the base
/// [`SimulationConfig::arrival_rate_tps`]; `Constant` keeps the original
/// homogeneous Poisson process (bit-for-bit, including its RNG draw
/// sequence), the others drive a non-homogeneous Poisson process through
/// [`PiecewiseRate`] inversion.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WorkloadSchedule {
    /// Fixed rate for the whole run (the paper's model; the default).
    #[default]
    Constant,
    /// A stepped diurnal curve: eight equal steps per `period_ms` following
    /// `1 + amplitude · sin`, so load swings between roughly
    /// `(1 - amplitude)` and `(1 + amplitude)` times the base rate while the
    /// *mean* rate stays exactly the base rate (the eight sine samples sum
    /// to zero).
    Diurnal {
        /// Length of one day-cycle in simulated ms.
        period_ms: SimTime,
        /// Relative swing in `[0, 1)`.
        amplitude: f64,
    },
    /// Periodic load spikes: for the first `burst_fraction` of every
    /// `period_ms` the rate is `burst_factor ×` base, then base for the
    /// remainder.
    Burst {
        /// Length of one burst cycle in simulated ms.
        period_ms: SimTime,
        /// Fraction of the cycle spent in the burst, in `(0, 1)`.
        burst_fraction: f64,
        /// Rate multiplier during the burst (> 0).
        burst_factor: f64,
    },
    /// Overload-and-recover: `normal_ms` at the base rate, then
    /// `overload_ms` at `overload_factor ×` base, repeating — the shape used
    /// to study how far tail latency degrades under a sustained overload and
    /// how quickly the queues drain afterwards.
    OverloadRecover {
        /// Length of the normal-load phase in simulated ms.
        normal_ms: SimTime,
        /// Length of the overload phase in simulated ms.
        overload_ms: SimTime,
        /// Rate multiplier during the overload phase (> 0).
        overload_factor: f64,
    },
}

impl WorkloadSchedule {
    /// True for the constant (paper-default) schedule.
    pub fn is_constant(&self) -> bool {
        matches!(self, WorkloadSchedule::Constant)
    }

    /// The cyclic segment list `(duration_ms, factor)` of the schedule, or
    /// `None` for `Constant`.  Factors multiply the base arrival rate.
    fn segments(&self) -> Option<Vec<(SimTime, f64)>> {
        match *self {
            WorkloadSchedule::Constant => None,
            WorkloadSchedule::Diurnal {
                period_ms,
                amplitude,
            } => {
                let step = period_ms / 8.0;
                Some(
                    (0..8)
                        .map(|i| {
                            let angle = std::f64::consts::TAU * (i as f64 + 0.5) / 8.0;
                            (step, 1.0 + amplitude * angle.sin())
                        })
                        .collect(),
                )
            }
            WorkloadSchedule::Burst {
                period_ms,
                burst_fraction,
                burst_factor,
            } => Some(vec![
                (period_ms * burst_fraction, burst_factor),
                (period_ms * (1.0 - burst_fraction), 1.0),
            ]),
            WorkloadSchedule::OverloadRecover {
                normal_ms,
                overload_ms,
                overload_factor,
            } => Some(vec![(normal_ms, 1.0), (overload_ms, overload_factor)]),
        }
    }

    /// Compiles the schedule into the piecewise rate function driving the
    /// non-homogeneous Poisson arrival process, or `None` for `Constant`
    /// (the engine then keeps the original draw path untouched).
    pub fn to_piecewise(&self, base_rate_tps: f64) -> Option<PiecewiseRate> {
        self.segments().map(|segs| {
            PiecewiseRate::new(
                segs.into_iter()
                    .map(|(dur, factor)| (dur, base_rate_tps * factor))
                    .collect(),
            )
        })
    }

    /// Validates the schedule parameters (positive, finite, non-degenerate
    /// segment durations — a zero-duration segment would make the piecewise
    /// inversion ill-defined).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            WorkloadSchedule::Constant => Ok(()),
            WorkloadSchedule::Diurnal {
                period_ms,
                amplitude,
            } => {
                if !period_ms.is_finite() || period_ms <= 0.0 {
                    return Err("diurnal period must be positive".into());
                }
                if !amplitude.is_finite() || !(0.0..1.0).contains(&amplitude) {
                    return Err("diurnal amplitude must be in [0, 1)".into());
                }
                Ok(())
            }
            WorkloadSchedule::Burst {
                period_ms,
                burst_fraction,
                burst_factor,
            } => {
                if !period_ms.is_finite() || period_ms <= 0.0 {
                    return Err("burst period must be positive".into());
                }
                if !(burst_fraction.is_finite() && burst_fraction > 0.0 && burst_fraction < 1.0) {
                    return Err(
                        "burst fraction must be in (0, 1) (zero-duration segments are \
                         rejected)"
                            .into(),
                    );
                }
                if !burst_factor.is_finite() || burst_factor <= 0.0 {
                    return Err("burst factor must be positive".into());
                }
                Ok(())
            }
            WorkloadSchedule::OverloadRecover {
                normal_ms,
                overload_ms,
                overload_factor,
            } => {
                if !normal_ms.is_finite() || normal_ms <= 0.0 {
                    return Err("overload-recover normal phase must have positive duration".into());
                }
                if !overload_ms.is_finite() || overload_ms <= 0.0 {
                    return Err(
                        "overload-recover overload phase must have positive duration".into(),
                    );
                }
                if !overload_factor.is_finite() || overload_factor <= 0.0 {
                    return Err("overload factor must be positive".into());
                }
                Ok(())
            }
        }
    }
}

/// Open-system workload shaping: the arrival-rate schedule plus the
/// hot-spot skew applied to the page-access pattern.  The default (constant
/// rate, no skew) reproduces the paper's model exactly — byte-identical
/// reports, untouched RNG draw sequences.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkloadParams {
    /// Arrival-rate schedule.
    pub schedule: WorkloadSchedule,
    /// Zipfian hot-spot parameters applied to the workload generator.
    pub hot_spot: HotSpotParams,
}

impl WorkloadParams {
    /// A constant-rate schedule with Zipfian skew.
    pub fn skewed(theta: f64, hot_fraction: f64) -> Self {
        Self {
            schedule: WorkloadSchedule::Constant,
            hot_spot: HotSpotParams::new(theta, hot_fraction),
        }
    }

    /// True when any workload shaping is active; gates the tail-latency
    /// report section (reports of unshaped runs stay byte-identical to
    /// those captured before this module existed).
    pub fn is_active(&self) -> bool {
        !self.schedule.is_constant() || self.hot_spot.is_active()
    }

    /// Validates schedule and hot-spot parameters.
    pub fn validate(&self) -> Result<(), String> {
        self.schedule.validate()?;
        self.hot_spot.validate()
    }
}

/// Complete configuration of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationConfig {
    /// CM parameters (per node: every computing module is configured
    /// identically).
    pub cm: CmParams,
    /// Data-sharing parameters (number of computing modules, remote lock
    /// message delay).
    pub nodes: NodeParams,
    /// Multi-node architecture: data sharing (default) or shared nothing.
    pub architecture: Architecture,
    /// Shared-nothing partitioning / function-shipping parameters (ignored
    /// under [`Architecture::DataSharing`]).
    pub partitioning: PartitioningParams,
    /// NVEM device parameters (for the synchronous CPU-access path).
    pub nvem: NvemParams,
    /// The external storage devices of the configuration (indexed by the ids
    /// used in [`bufmgr::PageLocation::DiskUnit`] and
    /// [`LogAllocation::DiskUnit`]).  Each slot is a [`DeviceSpec`] — a disk
    /// unit of any kind or an NVEM server device — so storage topologies are
    /// configuration, not engine code.
    pub devices: Vec<DeviceSpec>,
    /// Log allocation.
    pub log_allocation: LogAllocation,
    /// Crash-recovery and checkpointing parameters (disabled by default).
    pub recovery: RecoveryParams,
    /// Buffer-manager configuration (buffer sizes, update strategy,
    /// per-partition allocation and NVEM usage).
    pub buffer: BufferConfig,
    /// Concurrency-control mode per partition.
    pub cc_modes: Vec<CcMode>,
    /// Parallel-kernel parameters (worker threads, lookahead).  Wall-clock
    /// tuning only: simulated results are identical for every setting.
    pub parallelism: ParallelismParams,
    /// Cross-node buffer coherence protocol and page-transfer policy
    /// (data sharing with more than one node; ignored otherwise).
    pub coherence: CoherenceParams,
    /// Per-device I/O request scheduling policy (coalescing, elevator
    /// dispatch, sequential prefetch), applied to every disk unit.  Fully
    /// disabled by default: the engine then bypasses the scheduler and every
    /// report stays byte-identical to runs captured before it existed.
    pub io_scheduler: IoSchedulerParams,
    /// Open-system workload shaping: arrival-rate schedule and hot-spot
    /// skew.  Inactive by default — unshaped runs keep the paper's constant
    /// Poisson arrivals and uniform/b-c-rule access, byte-identical.
    pub workload: WorkloadParams,
    /// Transaction arrival rate in transactions per second (open system,
    /// Poisson arrivals).  Time-varying schedules scale this base rate.
    pub arrival_rate_tps: f64,
    /// Warm-up interval (statistics are discarded), in ms.
    pub warmup_ms: SimTime,
    /// Measurement interval, in ms.
    pub measure_ms: SimTime,
    /// RNG seed (a run is fully determined by configuration + seed).
    pub seed: u64,
}

impl SimulationConfig {
    /// Basic consistency checks.  Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.arrival_rate_tps <= 0.0 {
            return Err("arrival rate must be positive".into());
        }
        if self.cm.num_cpus == 0 || self.cm.mips <= 0.0 {
            return Err("CPU configuration must have capacity".into());
        }
        if self.cm.mpl == 0 {
            return Err("multiprogramming level must be at least 1".into());
        }
        if self.measure_ms <= 0.0 {
            return Err("measurement interval must be positive".into());
        }
        if self.cm.group_commit_size == 0 {
            return Err("group commit size must be at least 1".into());
        }
        if self.cm.group_commit_size > 1 && self.cm.group_commit_timeout_ms <= 0.0 {
            return Err("group commit requires a positive timeout".into());
        }
        if self.nodes.num_nodes == 0 {
            return Err("at least one computing module is required".into());
        }
        if self.nodes.num_nodes > 64 {
            return Err("more than 64 computing modules are not supported".into());
        }
        if self.nodes.remote_lock_delay_ms < 0.0 {
            return Err("remote lock delay must be non-negative".into());
        }
        if self.partitioning.partitions_per_node == 0 {
            return Err("at least one partition per node is required".into());
        }
        if self.partitioning.remote_msg_ms.is_nan() || self.partitioning.remote_msg_ms < 0.0 {
            return Err("remote message delay must be non-negative".into());
        }
        if self.partitioning.remote_cpu_instr.is_nan() || self.partitioning.remote_cpu_instr < 0.0 {
            return Err("remote CPU cost must be non-negative".into());
        }
        if self.parallelism.kernel_threads > 256 {
            return Err("more than 256 kernel threads are not supported".into());
        }
        if self.parallelism.lookahead_ms.is_nan() || self.parallelism.lookahead_ms < 0.0 {
            return Err("kernel lookahead must be non-negative".into());
        }
        if self.coherence.transfer_msg_ms.is_nan() || self.coherence.transfer_msg_ms < 0.0 {
            return Err("page-transfer message delay must be non-negative".into());
        }
        if self.coherence.transfer_copy_instr.is_nan() || self.coherence.transfer_copy_instr < 0.0 {
            return Err("page-transfer copy cost must be non-negative".into());
        }
        self.io_scheduler.validate()?;
        self.workload.validate()?;
        if self.architecture == Architecture::SharedNothing {
            if self.recovery.enabled() {
                return Err(
                    "crash recovery is only modelled for the data-sharing architecture".into(),
                );
            }
            if self.buffer.update_strategy == bufmgr::UpdateStrategy::Force {
                return Err(
                    "the FORCE update strategy is not supported in shared-nothing mode \
                     (forced pages live in the owners' buffer pools)"
                        .into(),
                );
            }
            if self.cm.group_commit_size > 1 {
                return Err(
                    "group commit is not supported in shared-nothing mode (the engine's \
                     commit batch is global and would merge log writes across the \
                     per-node logs)"
                        .into(),
                );
            }
            if self.coherence.protocol != CoherenceProtocol::BroadcastInvalidate
                || self.coherence.page_transfer != PageTransfer::DiskReread
            {
                return Err(
                    "coherence protocols apply only to the data-sharing architecture \
                     (shared-nothing pools never hold remote pages)"
                        .into(),
                );
            }
        }
        if self.cm.log_record_bytes == 0
            || self.cm.log_record_bytes > crate::recovery::LOG_PAGE_BYTES
        {
            return Err(format!(
                "log record size must be between 1 and {} bytes",
                crate::recovery::LOG_PAGE_BYTES
            ));
        }
        if self.recovery.checkpoint_interval_ms.is_nan()
            || self.recovery.checkpoint_interval_ms < 0.0
        {
            return Err("checkpoint interval must be non-negative".into());
        }
        if self.recovery.enabled() {
            if !self.cm.logging {
                return Err("recovery requires logging to be enabled".into());
            }
            if !self
                .recovery
                .matches_update_strategy(self.buffer.update_strategy)
            {
                return Err("recovery force policy must match the buffer update strategy".into());
            }
        }
        self.buffer.validate()?;
        // Every device reference must exist.
        let check_unit = |u: usize, what: &str| -> Result<(), String> {
            if u >= self.devices.len() {
                Err(format!("{what} references unknown storage device {u}"))
            } else {
                Ok(())
            }
        };
        match self.log_allocation {
            LogAllocation::Nvem => {}
            LogAllocation::DiskUnit(u) | LogAllocation::DiskUnitViaNvemWriteBuffer(u) => {
                check_unit(u, "log allocation")?;
            }
        }
        for (i, p) in self.buffer.partitions.iter().enumerate() {
            if let bufmgr::PageLocation::DiskUnit(u) = p.location {
                check_unit(u, &format!("partition {i}"))?;
            }
        }
        if matches!(
            self.log_allocation,
            LogAllocation::DiskUnitViaNvemWriteBuffer(_)
        ) && self.buffer.nvem_write_buffer_pages == 0
        {
            return Err("log via NVEM write buffer requires a write buffer size".into());
        }
        Ok(())
    }

    /// Total simulated time of the run (warm-up plus measurement).
    pub fn total_time_ms(&self) -> SimTime {
        self.warmup_ms + self.measure_ms
    }

    /// The lookahead window (simulated ms) of the sharded kernel's
    /// synchronization rounds: the explicit
    /// [`ParallelismParams::lookahead_ms`] when set, otherwise derived from
    /// the modelled cross-node delays — the natural lookahead of the
    /// architecture is the cheapest message round trip that can carry work
    /// between nodes (global-lock traffic under data sharing, function
    /// shipping under shared nothing).  NaN-hardened via
    /// [`simkernel::time::safe_min_all`]; clamped to a window that keeps
    /// rounds meaningful when a preset models near-zero delays.
    pub fn lookahead_ms(&self) -> SimTime {
        if self.parallelism.lookahead_ms > 0.0 {
            return self.parallelism.lookahead_ms;
        }
        let cross_node = match self.architecture {
            Architecture::DataSharing => 2.0 * self.nodes.remote_lock_delay_ms,
            Architecture::SharedNothing => 2.0 * self.partitioning.remote_msg_ms,
        };
        let candidates = [cross_node].into_iter().filter(|&d| d > 0.0);
        simkernel::time::safe_min_all(candidates)
            .unwrap_or(1.0)
            .clamp(0.05, 5.0)
    }

    /// Number of worker threads the sharded kernel will actually run: the
    /// configured [`ParallelismParams::kernel_threads`] capped at one worker
    /// per shard (node).  `<= 1` means the sequential kernel.
    pub fn kernel_workers(&self) -> usize {
        self.parallelism.kernel_threads.min(self.nodes.num_nodes)
    }

    /// Expected number of arrivals over the whole run (diagnostic).
    /// Integrates the arrival-rate schedule; for the constant schedule this
    /// is exactly `rate · time`.
    pub fn expected_arrivals(&self) -> f64 {
        match self.workload.schedule.to_piecewise(self.arrival_rate_tps) {
            None => self.arrival_rate_tps * self.total_time_ms() / 1000.0,
            Some(rate) => rate.expected_events(0.0, self.total_time_ms()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bufmgr::PartitionPolicy;
    use storage::{DiskUnitKind, DiskUnitParams};

    fn minimal_config() -> SimulationConfig {
        SimulationConfig {
            cm: CmParams::default(),
            nodes: NodeParams::default(),
            architecture: Architecture::default(),
            partitioning: PartitioningParams::default(),
            nvem: NvemParams::default(),
            devices: vec![DiskUnitParams::database_disks(DiskUnitKind::Regular, 2, 8).into()],
            log_allocation: LogAllocation::DiskUnit(0),
            recovery: RecoveryParams::disabled(),
            buffer: BufferConfig {
                mm_buffer_pages: 100,
                nvem_cache_pages: 0,
                nvem_write_buffer_pages: 0,
                update_strategy: bufmgr::UpdateStrategy::NoForce,
                lru_k: 1,
                partitions: vec![PartitionPolicy::on_disk_unit(0)],
            },
            cc_modes: vec![CcMode::Page],
            parallelism: ParallelismParams::default(),
            coherence: CoherenceParams::default(),
            io_scheduler: IoSchedulerParams::default(),
            workload: WorkloadParams::default(),
            arrival_rate_tps: 100.0,
            warmup_ms: 1000.0,
            measure_ms: 5000.0,
            seed: 1,
        }
    }

    #[test]
    fn cm_defaults_match_table_4_1() {
        let cm = CmParams::default();
        assert_eq!(cm.total_mips(), 200.0);
        assert_eq!(cm.path_length(4), 250_000.0);
        assert!((cm.max_tps(4) - 800.0).abs() < 1e-9);
    }

    #[test]
    fn minimal_config_validates() {
        assert!(minimal_config().validate().is_ok());
        assert!((minimal_config().total_time_ms() - 6000.0).abs() < 1e-9);
        assert!((minimal_config().expected_arrivals() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_arrival_rate() {
        let mut c = minimal_config();
        c.arrival_rate_tps = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_hot_spot_params() {
        let mut c = minimal_config();
        c.workload.hot_spot = dbmodel::HotSpotParams::new(1.0, 0.5);
        assert!(c.validate().is_err());
        c.workload.hot_spot = dbmodel::HotSpotParams::new(0.5, 0.0);
        assert!(c.validate().is_err());
        c.workload.hot_spot = dbmodel::HotSpotParams::new(0.5, 1.5);
        assert!(c.validate().is_err());
        c.workload.hot_spot = dbmodel::HotSpotParams::new(0.9, 0.1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_duration_schedule_segments() {
        let mut c = minimal_config();
        // burst_fraction 0 or 1 would create a zero-duration segment.
        c.workload.schedule = WorkloadSchedule::Burst {
            period_ms: 1000.0,
            burst_fraction: 0.0,
            burst_factor: 5.0,
        };
        assert!(c.validate().is_err());
        c.workload.schedule = WorkloadSchedule::Burst {
            period_ms: 1000.0,
            burst_fraction: 1.0,
            burst_factor: 5.0,
        };
        assert!(c.validate().is_err());
        c.workload.schedule = WorkloadSchedule::Burst {
            period_ms: 0.0,
            burst_fraction: 0.5,
            burst_factor: 5.0,
        };
        assert!(c.validate().is_err());
        c.workload.schedule = WorkloadSchedule::OverloadRecover {
            normal_ms: 1000.0,
            overload_ms: 0.0,
            overload_factor: 2.0,
        };
        assert!(c.validate().is_err());
        c.workload.schedule = WorkloadSchedule::Diurnal {
            period_ms: 1000.0,
            amplitude: 1.0,
        };
        assert!(c.validate().is_err());
        c.workload.schedule = WorkloadSchedule::Burst {
            period_ms: 1000.0,
            burst_fraction: 0.1,
            burst_factor: 5.0,
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn expected_arrivals_integrates_the_schedule() {
        // Constant: exactly rate · time (unchanged legacy behaviour).
        let c = minimal_config();
        assert_eq!(c.expected_arrivals(), 600.0);

        // Burst: 10% of each cycle at 10×, 90% at 1× → mean factor 1.9.
        // Six full 1 s cycles fit in the 6 s run, so the integral is exact.
        let mut c = minimal_config();
        c.workload.schedule = WorkloadSchedule::Burst {
            period_ms: 1000.0,
            burst_fraction: 0.1,
            burst_factor: 10.0,
        };
        assert!((c.expected_arrivals() - 600.0 * 1.9).abs() < 1e-6);

        // Diurnal: the stepped sine is mean-preserving over whole periods.
        let mut c = minimal_config();
        c.workload.schedule = WorkloadSchedule::Diurnal {
            period_ms: 3000.0,
            amplitude: 0.8,
        };
        assert!((c.expected_arrivals() - 600.0).abs() < 1e-6);

        // Overload-recover: 2 s at 1× + 1 s at 3× per 3 s cycle → mean 5/3.
        let mut c = minimal_config();
        c.workload.schedule = WorkloadSchedule::OverloadRecover {
            normal_ms: 2000.0,
            overload_ms: 1000.0,
            overload_factor: 3.0,
        };
        assert!((c.expected_arrivals() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn workload_activity_gate() {
        assert!(!WorkloadParams::default().is_active());
        assert!(WorkloadParams::skewed(0.9, 0.1).is_active());
        let sched = WorkloadParams {
            schedule: WorkloadSchedule::Burst {
                period_ms: 1000.0,
                burst_fraction: 0.1,
                burst_factor: 5.0,
            },
            hot_spot: dbmodel::HotSpotParams::default(),
        };
        assert!(sched.is_active());
    }

    #[test]
    fn validation_catches_unknown_disk_unit() {
        let mut c = minimal_config();
        c.log_allocation = LogAllocation::DiskUnit(5);
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.buffer.partitions[0] = PartitionPolicy::on_disk_unit(3);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_log_write_buffer_without_size() {
        let mut c = minimal_config();
        c.log_allocation = LogAllocation::DiskUnitViaNvemWriteBuffer(0);
        assert!(c.validate().is_err());
        c.buffer.nvem_write_buffer_pages = 100;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_parallelism() {
        let mut c = minimal_config();
        c.parallelism.kernel_threads = 257;
        assert!(c.validate().is_err());
        c.parallelism.kernel_threads = 8;
        assert!(c.validate().is_ok());
        c.parallelism.lookahead_ms = -0.1;
        assert!(c.validate().is_err());
        c.parallelism.lookahead_ms = f64::NAN;
        assert!(c.validate().is_err());
        c.parallelism.lookahead_ms = 0.4;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn lookahead_derives_from_modelled_delays() {
        let mut c = minimal_config();
        // Explicit override wins.
        c.parallelism.lookahead_ms = 2.5;
        assert!((c.lookahead_ms() - 2.5).abs() < 1e-12);
        // Auto: data sharing uses the global-lock message round trip.
        c.parallelism.lookahead_ms = 0.0;
        c.nodes.remote_lock_delay_ms = 0.2;
        assert!((c.lookahead_ms() - 0.4).abs() < 1e-12);
        // Auto: shared nothing uses the function-shipping round trip.
        c.architecture = Architecture::SharedNothing;
        c.partitioning.remote_msg_ms = 0.3;
        assert!((c.lookahead_ms() - 0.6).abs() < 1e-12);
        // No modelled delay at all: a sane default, still positive.
        c.partitioning.remote_msg_ms = 0.0;
        assert!(c.lookahead_ms() > 0.0);
    }

    #[test]
    fn kernel_workers_cap_at_one_per_node() {
        let mut c = minimal_config();
        c.parallelism.kernel_threads = 8;
        c.nodes.num_nodes = 1;
        assert_eq!(c.kernel_workers(), 1);
        c.nodes.num_nodes = 4;
        assert_eq!(c.kernel_workers(), 4);
        c.parallelism.kernel_threads = 2;
        assert_eq!(c.kernel_workers(), 2);
        c.parallelism.kernel_threads = 0;
        assert_eq!(c.kernel_workers(), 0);
    }

    #[test]
    fn validation_catches_bad_group_commit() {
        let mut c = minimal_config();
        c.cm.group_commit_size = 0;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.cm.group_commit_size = 4;
        c.cm.group_commit_timeout_ms = 0.0;
        assert!(c.validate().is_err());
        c.cm.group_commit_timeout_ms = 2.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn nvem_server_device_slot_validates() {
        let mut c = minimal_config();
        c.devices.push(storage::NvemDeviceParams::default().into());
        c.log_allocation = LogAllocation::DiskUnit(1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_node_params() {
        let mut c = minimal_config();
        c.nodes.num_nodes = 0;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.nodes.num_nodes = 65;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.nodes.remote_lock_delay_ms = -1.0;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.nodes = NodeParams::data_sharing(8);
        assert!(c.validate().is_ok());
        assert_eq!(NodeParams::single().num_nodes, 1);
    }

    #[test]
    fn validation_catches_bad_recovery_params() {
        let mut c = minimal_config();
        c.recovery.checkpoint_interval_ms = -1.0;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.recovery.checkpoint_interval_ms = f64::NAN;
        assert!(c.validate().is_err());
        // Enabled recovery needs logging ...
        let mut c = minimal_config();
        c.recovery = RecoveryParams::noforce(1_000.0);
        c.cm.logging = false;
        assert!(c.validate().is_err());
        // ... and a force policy that matches the buffer update strategy.
        let mut c = minimal_config();
        c.recovery = RecoveryParams::force(1_000.0);
        assert!(c.validate().is_err());
        c.buffer.update_strategy = bufmgr::UpdateStrategy::Force;
        assert!(c.validate().is_ok());
        // A mismatching policy is fine while recovery is disabled.
        let mut c = minimal_config();
        c.recovery.force_policy = ForcePolicy::Force;
        assert!(c.validate().is_ok());
        assert!(!RecoveryParams::disabled().enabled());
        assert!(RecoveryParams::noforce(10.0).enabled());
    }

    #[test]
    fn validation_catches_bad_log_record_size() {
        let mut c = minimal_config();
        c.cm.log_record_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.cm.log_record_bytes = 100_000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_partitioning_params() {
        let mut c = minimal_config();
        c.partitioning.partitions_per_node = 0;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.partitioning.remote_msg_ms = -0.1;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.partitioning.remote_msg_ms = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.partitioning.remote_cpu_instr = -1.0;
        assert!(c.validate().is_err());
        // The shared-nothing architecture with default partitioning is fine …
        let mut c = minimal_config();
        c.architecture = Architecture::SharedNothing;
        c.partitioning = PartitioningParams::range(4);
        assert!(c.validate().is_ok());
        // … but refuses recovery and FORCE (both are data-sharing-only).
        let mut c = minimal_config();
        c.architecture = Architecture::SharedNothing;
        c.recovery = RecoveryParams::noforce(500.0);
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.architecture = Architecture::SharedNothing;
        c.buffer.update_strategy = bufmgr::UpdateStrategy::Force;
        assert!(c.validate().is_err());
        // ... and group commit (the engine's commit batch is global, the
        // shared-nothing log is per node).
        let mut c = minimal_config();
        c.architecture = Architecture::SharedNothing;
        c.cm.group_commit_size = 4;
        c.cm.group_commit_timeout_ms = 2.0;
        assert!(c.validate().is_err());
        assert_eq!(PartitioningParams::hash(2).partitions_per_node, 2);
        assert_eq!(
            PartitioningParams::range(3).scheme,
            dbmodel::PartitionScheme::Range
        );
    }

    #[test]
    fn validation_catches_bad_coherence_params() {
        let mut c = minimal_config();
        c.coherence.transfer_msg_ms = -0.1;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.coherence.transfer_msg_ms = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.coherence.transfer_copy_instr = -1.0;
        assert!(c.validate().is_err());
        // Every protocol/transfer combination validates under data sharing …
        let mut c = minimal_config();
        c.nodes = NodeParams::data_sharing(4);
        c.coherence = CoherenceParams::on_request_validate().with_direct_transfer();
        assert!(c.validate().is_ok());
        c.coherence = CoherenceParams::broadcast().with_direct_transfer();
        assert!(c.validate().is_ok());
        // … but shared nothing refuses non-default coherence settings.
        let mut c = minimal_config();
        c.architecture = Architecture::SharedNothing;
        c.coherence = CoherenceParams::on_request_validate();
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.architecture = Architecture::SharedNothing;
        c.coherence = CoherenceParams::broadcast().with_direct_transfer();
        assert!(c.validate().is_err());
        assert_eq!(
            CoherenceParams::default().protocol,
            CoherenceProtocol::BroadcastInvalidate
        );
        assert_eq!(
            CoherenceParams::default().page_transfer,
            PageTransfer::DiskReread
        );
    }

    #[test]
    fn validation_catches_bad_io_scheduler_params() {
        let mut c = minimal_config();
        c.io_scheduler = IoSchedulerParams {
            elevator: true,
            aging_bound: 0,
            ..IoSchedulerParams::default()
        };
        assert!(c.validate().is_err());
        c.io_scheduler.aging_bound = 8;
        assert!(c.validate().is_ok());
        // Every policy combination with a sane aging bound validates.
        c.io_scheduler = IoSchedulerParams {
            coalesce: true,
            elevator: true,
            prefetch_depth: 4,
            aging_bound: 16,
        };
        assert!(c.validate().is_ok());
        assert!(!minimal_config().io_scheduler.enabled());
    }

    #[test]
    fn validation_catches_zero_mpl_and_cpus() {
        let mut c = minimal_config();
        c.cm.mpl = 0;
        assert!(c.validate().is_err());
        let mut c = minimal_config();
        c.cm.num_cpus = 0;
        assert!(c.validate().is_err());
    }
}
