//! The per-transaction micro-operation state machine.
//!
//! A transaction progresses through BOT processing, its object references
//! (CPU burst → lock request → buffer fetch with possible I/O) and commit
//! processing.  Whenever a transaction's micro-operation queue runs dry the
//! current phase generates the next batch; blocked transactions re-enter the
//! ready queue when the resource they wait for (CPU, lock, I/O) is granted.
//!
//! Lock requests go to the *global* lock service.  In a data-sharing run a
//! request from a node other than the service's home node first pays a
//! message round trip ([`MicroOp::RemoteDelay`]) before it reaches the shared
//! lock table; on a single node every request is local and free.
//!
//! In a shared-nothing run the lock service is node-local (no messages);
//! instead, an object reference whose page is owned by another node is
//! *function-shipped*: [`MicroOp::RemoteCall`] carries execution to the
//! owner (one-way message), the reference's CPU burst plus a remote-handling
//! surcharge run on the owner's CPUs, the page is fetched through the
//! owner's buffer pool, and a second `RemoteCall` ships the reply home.

use bufmgr::UpdateStrategy;
use dbmodel::WorkloadGenerator;
use lockmgr::LockOutcome;
use simkernel::time::{instr_time, SimTime};

use super::transaction::{MicroOp, TxPhase, TxState};
use super::{Ev, Flow, Simulation};

impl<W: WorkloadGenerator> Simulation<W> {
    /// Drains the ready queue, advancing every runnable transaction.
    pub(super) fn process_ready(&mut self) {
        while let Some(slot) = self.ready.pop_front() {
            if self.txs.is_live(slot) {
                self.advance(slot);
            }
        }
    }

    fn advance(&mut self, slot: usize) {
        loop {
            let op = match self.txs.tx_mut(slot).micro.pop_front() {
                Some(op) => op,
                None => {
                    if !self.advance_phase(slot) {
                        return;
                    }
                    continue;
                }
            };
            match self.execute_op(slot, op) {
                Flow::Continue => continue,
                Flow::Blocked | Flow::Finished => return,
            }
        }
    }

    /// Generates the next batch of micro operations from the transaction's
    /// phase.  Returns false when there is nothing left to do.
    fn advance_phase(&mut self, slot: usize) -> bool {
        let cm = self.config.cm;
        let (phase, num_refs, is_update) = {
            let tx = self.txs.tx(slot);
            let entry = self.templates.entry(tx.template);
            (tx.phase, entry.template.len(), entry.is_update)
        };
        match phase {
            TxPhase::BeforeAccess { next_ref } if next_ref < num_refs => {
                let or = instr_time(self.service_rng.exponential(cm.instr_or), cm.mips);
                // Shared nothing: the owner of the referenced page was
                // interned with the template (`ref_owners` is empty under
                // data sharing); a remote owner means the reference is
                // function-shipped.
                let remote_owner = {
                    let tx = self.txs.tx(slot);
                    self.templates
                        .entry(tx.template)
                        .ref_owners
                        .get(next_ref)
                        .copied()
                        .filter(|&owner| owner != tx.node)
                };
                match remote_owner {
                    Some(owner) => {
                        let remote_cpu =
                            instr_time(self.config.partitioning.remote_cpu_instr, cm.mips);
                        let home = self.txs.tx(slot).node;
                        let tx = self.txs.tx_mut(slot);
                        // Ship the call to the owner, run the reference (plus
                        // the remote-handling surcharge) on the owner's CPUs,
                        // lock and fetch there, then ship the reply home.
                        // The buffer/I/O micro operations expand between the
                        // lock grant and the reply leg.
                        tx.micro.push_back(MicroOp::RemoteCall { node: owner });
                        tx.micro.push_back(MicroOp::CpuBurst {
                            ms: or + remote_cpu,
                            nvem: false,
                        });
                        tx.micro.push_back(MicroOp::Lock { ref_idx: next_ref });
                        tx.micro.push_back(MicroOp::RemoteCall { node: home });
                    }
                    None => {
                        let tx = self.txs.tx_mut(slot);
                        tx.micro.push_back(MicroOp::CpuBurst {
                            ms: or,
                            nvem: false,
                        });
                        tx.micro.push_back(MicroOp::Lock { ref_idx: next_ref });
                    }
                }
                self.txs.tx_mut(slot).phase = TxPhase::BeforeAccess {
                    next_ref: next_ref + 1,
                };
                true
            }
            TxPhase::BeforeAccess { .. } => {
                // All object references done: commit processing.
                let eot = instr_time(self.service_rng.exponential(cm.instr_eot), cm.mips);
                let force = self.config.buffer.update_strategy == UpdateStrategy::Force;
                // Shared nothing: the distinct remote owners of the written
                // pages (interned with the template) take part in the
                // two-phase commit exchange.
                let participants = {
                    let tx = self.txs.tx(slot);
                    self.templates
                        .entry(tx.template)
                        .written_owners
                        .iter()
                        .filter(|&&owner| owner != tx.node)
                        .count() as u32
                };
                let tx = self.txs.tx_mut(slot);
                tx.micro.push_back(MicroOp::CpuBurst {
                    ms: eot,
                    nvem: false,
                });
                if participants > 0 {
                    tx.micro.push_back(MicroOp::CommitExchange { participants });
                }
                if is_update && cm.logging {
                    tx.micro.push_back(MicroOp::LogWrite);
                }
                if is_update && force {
                    tx.micro.push_back(MicroOp::ForcePages);
                }
                tx.micro.push_back(MicroOp::Complete);
                tx.phase = TxPhase::Committing;
                true
            }
            TxPhase::Committing => false,
        }
    }

    fn execute_op(&mut self, slot: usize, op: MicroOp) -> Flow {
        match op {
            MicroOp::CpuBurst { ms, nvem } => self.op_cpu_burst(slot, ms, nvem),
            MicroOp::Lock { ref_idx } => self.op_lock(slot, ref_idx),
            MicroOp::RemoteDelay { ms } => self.op_remote_delay(slot, ms),
            MicroOp::RemoteCall { node } => self.op_remote_call(slot, node),
            MicroOp::CommitExchange { participants } => self.op_commit_exchange(slot, participants),
            MicroOp::IssueIo {
                unit,
                kind,
                page,
                wait,
                notify,
                log_wb,
            } => self.op_issue_io(slot, unit, kind, page, wait, notify, log_wb),
            MicroOp::LogWrite => self.op_log_write(slot),
            MicroOp::JoinCommitGroup { unit } => self.join_commit_group(slot, unit),
            MicroOp::ForcePages => self.op_force_pages(slot),
            MicroOp::Complete => self.op_complete(slot),
        }
    }

    /// Pure delay: the message round trip of a remote lock request.
    fn op_remote_delay(&mut self, slot: usize, ms: SimTime) -> Flow {
        self.txs.tx_mut(slot).state = TxState::WaitingMessage;
        self.sched_in(ms, Ev::MsgDone(slot));
        Flow::Blocked
    }

    /// A message for the transaction in `slot` arrived — a data-sharing lock
    /// round trip ([`Ev::MsgDone`]) or a shared-nothing function-shipping /
    /// commit-exchange message ([`Ev::RemoteDone`]): resume the transaction
    /// (at its already-switched execution node, for remote calls).
    pub(super) fn handle_msg_done(&mut self, slot: usize) {
        if let Some(tx) = self.txs.get_mut(slot) {
            tx.state = TxState::Ready;
            self.ready.push_back(slot);
        }
    }

    /// Shared nothing: ship execution of the transaction in `slot` to
    /// `node` (one one-way message).  The outbound leg (to a node other than
    /// the home node) is what counts as a *remote call*; the reply leg only
    /// adds its message.  Execution resumes at `node` when
    /// [`Ev::RemoteDone`] delivers the message.
    fn op_remote_call(&mut self, slot: usize, node: usize) -> Flow {
        let msg = self.config.partitioning.remote_msg_ms;
        let home = {
            let tx = self.txs.tx_mut(slot);
            tx.state = TxState::WaitingMessage;
            tx.exec_node = node;
            tx.node
        };
        self.shipping.messages += 1;
        self.shipping.total_message_delay_ms += msg;
        if node != home {
            self.shipping.remote_calls += 1;
            self.shipping.per_node_remote_calls[home] += 1;
            self.shipping.remote_cpu_ms += instr_time(
                self.config.partitioning.remote_cpu_instr,
                self.config.cm.mips,
            );
        }
        self.sched_in(msg, Ev::RemoteDone(slot));
        Flow::Blocked
    }

    /// Shared nothing: the two-phase commit exchange with `participants`
    /// remote owners of the committing transaction's written pages.  The
    /// prepare/vote round trips to all participants travel in parallel, so
    /// the transaction waits one round trip; the second-phase commit
    /// messages are asynchronous (counted, not waited for).
    fn op_commit_exchange(&mut self, slot: usize, participants: u32) -> Flow {
        debug_assert!(participants > 0, "exchange without participants");
        let msg = self.config.partitioning.remote_msg_ms;
        let round_trip = 2.0 * msg;
        self.shipping.commit_exchanges += 1;
        self.shipping.commit_participants += u64::from(participants);
        // 2 prepare/vote messages plus 1 commit message per participant.
        self.shipping.messages += 3 * u64::from(participants);
        self.shipping.total_message_delay_ms += round_trip;
        self.txs.tx_mut(slot).state = TxState::WaitingMessage;
        self.sched_in(round_trip, Ev::RemoteDone(slot));
        Flow::Blocked
    }

    fn op_lock(&mut self, slot: usize, ref_idx: usize) -> Flow {
        // `node` is the node the lock request is issued from: the home node
        // under data sharing, the page's owner while a shared-nothing
        // reference executes function-shipped (the two coincide otherwise).
        let (tx_id, home, node, obj_ref, msg_paid) = {
            let tx = self.txs.tx(slot);
            let entry = self.templates.entry(tx.template);
            (
                tx.id,
                tx.node,
                tx.exec_node,
                entry.template.refs[ref_idx],
                tx.lock_msg_paid,
            )
        };
        // Shared nothing: a reference executing on its home node is a local
        // access (the remote split is counted by the shipping `RemoteCall`s).
        if self.partition_map.is_some() && node == home {
            self.shipping.local_refs += 1;
        }
        // Remote request: pay the message round trip to the global lock
        // service first, then retry the lock operation.  (Never taken by the
        // shared-nothing local-only service.)
        if !msg_paid && self.lockmgr.needs_lock(&obj_ref) {
            if let Some(round_trip) = self.lockmgr.remote_round_trip(node) {
                let tx = self.txs.tx_mut(slot);
                tx.lock_msg_paid = true;
                tx.push_ops_front(vec![
                    MicroOp::RemoteDelay { ms: round_trip },
                    MicroOp::Lock { ref_idx },
                ]);
                return Flow::Continue;
            }
        }
        if msg_paid {
            self.txs.tx_mut(slot).lock_msg_paid = false;
        }
        // Count the per-node remote request at the same instant the service
        // counts its side (the acquire), so the two stay consistent across a
        // warm-up reset and for zero-delay configurations.
        if !self.lockmgr.is_local_only()
            && node != self.lockmgr.home_node()
            && self.lockmgr.needs_lock(&obj_ref)
        {
            self.nodes[node].remote_lock_requests += 1;
        }
        match self.lockmgr.acquire(node, tx_id, &obj_ref) {
            LockOutcome::Granted => {
                self.buffer_fetch(slot, ref_idx);
                Flow::Continue
            }
            LockOutcome::Blocked => {
                let tx = self.txs.tx_mut(slot);
                tx.pending_lock_ref = Some(ref_idx);
                tx.state = TxState::WaitingLock;
                Flow::Blocked
            }
            LockOutcome::Deadlock => {
                self.aborts += 1;
                self.nodes[home].aborts += 1;
                let woken = self.lockmgr.abort(tx_id);
                self.wake_lock_waiters(&woken);
                // Restart the victim with the same reference string.
                let bot = instr_time(
                    self.service_rng.exponential(self.config.cm.instr_bot),
                    self.config.cm.mips,
                );
                let tx = self.txs.tx_mut(slot);
                tx.restart();
                tx.micro.push_back(MicroOp::CpuBurst {
                    ms: bot,
                    nvem: false,
                });
                Flow::Continue
            }
        }
    }

    pub(super) fn wake_lock_waiters(&mut self, ids: &[u64]) {
        for id in ids {
            let Some(&slot) = self.id_to_slot.get(id) else {
                continue;
            };
            let ref_idx = {
                let tx = self.txs.tx_mut(slot);
                tx.state = TxState::Ready;
                tx.pending_lock_ref.take()
            };
            if let Some(ref_idx) = ref_idx {
                self.buffer_fetch(slot, ref_idx);
            }
            self.ready.push_back(slot);
        }
    }

    /// Performs the buffer-manager lookup for object reference `ref_idx`
    /// against the *executing* node's buffer pool — the transaction's home
    /// node under data sharing, the page's owner while a shared-nothing
    /// reference runs function-shipped — and queues the resulting storage
    /// operations.
    ///
    /// Under multi-node data sharing this is also the coherence hook: the
    /// node is registered in the page → holders index, an on-request
    /// validation check may turn a stale hit into a miss (plus a validation
    /// round trip), and a miss may be served by a direct cache-to-cache
    /// transfer from a donor node instead of a disk re-read.
    fn buffer_fetch(&mut self, slot: usize, ref_idx: usize) {
        let (node, obj_ref) = {
            let tx = self.txs.tx(slot);
            (
                tx.exec_node,
                self.templates.entry(tx.template).template.refs[ref_idx],
            )
        };
        let coherent = self.coherence_active();
        let validation_ms = if coherent {
            self.validate_reference(node, obj_ref.page)
        } else {
            None
        };
        let outcome = self.nodes[node].bufmgr.reference_page(
            obj_ref.partition,
            obj_ref.page,
            obj_ref.mode.is_write(),
        );
        let mut ops = if coherent && !outcome.main_memory_hit && !outcome.nvem_cache_hit {
            self.convert_page_ops_with_transfer(node, obj_ref.page, &outcome.ops)
        } else {
            self.convert_page_ops(&outcome.ops)
        };
        if let Some(ms) = validation_ms {
            ops.insert(0, MicroOp::RemoteDelay { ms });
        }
        if coherent {
            self.note_holder(node, obj_ref.page);
            self.stamp_fetch(node, obj_ref.page);
        }
        // Sequential-prefetch detection: a miss that goes to a disk unit
        // feeds the transaction's ascending-run tracker and may trigger
        // speculative read-ahead through that unit's scheduler.
        if self.config.io_scheduler.prefetch_depth > 0 {
            let miss_read = ops.iter().find_map(|op| match *op {
                MicroOp::IssueIo {
                    unit,
                    kind: storage::IoKind::Read,
                    page,
                    ..
                } => Some((unit, page)),
                _ => None,
            });
            if let Some((unit, page)) = miss_read {
                self.note_sequential_miss(slot, node, obj_ref.partition, unit, page);
            }
        }
        self.txs.tx_mut(slot).push_ops_front(ops);
    }

    /// Updates the per-transaction ascending-miss-run tracker and, on a run
    /// of two or more consecutive pages, submits speculative reads for the
    /// next `prefetch_depth` pages to the unit's scheduler.  Candidate pages
    /// inherit the triggering reference's partition (sequential scans stay
    /// inside one database area); pages already buffered, pending or in
    /// flight are skipped.
    fn note_sequential_miss(
        &mut self,
        slot: usize,
        node: usize,
        partition: usize,
        unit: usize,
        page: dbmodel::PageId,
    ) {
        if self.units[unit].scheduler.is_none() {
            return;
        }
        let run = {
            let tx = self.txs.tx_mut(slot);
            if tx.last_miss_page == Some(dbmodel::PageId(page.0.wrapping_sub(1))) {
                tx.miss_run += 1;
            } else {
                tx.miss_run = 1;
            }
            tx.last_miss_page = Some(page);
            tx.miss_run
        };
        if run < 2 {
            return;
        }
        let depth = u64::from(self.config.io_scheduler.prefetch_depth);
        let mut submitted = false;
        for i in 1..=depth {
            let candidate = dbmodel::PageId(page.0.wrapping_add(i));
            if self.nodes[node].bufmgr.holds_page(candidate) {
                continue;
            }
            let sched = self.units[unit].scheduler.as_mut().expect("checked above");
            submitted |= sched.submit_prefetch(candidate, (node, partition));
        }
        if submitted {
            self.drain_scheduler(node, unit);
        }
    }
}
