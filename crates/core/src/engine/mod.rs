//! The TPSIM discrete-event engine.
//!
//! Ties the SOURCE (workload generator), the computing modules (transaction
//! manager, CPUs, lock manager, buffer manager) and the external devices
//! together and runs the open queuing model: Poisson arrivals, MPL admission
//! control, transaction execution with CPU bursts, lock requests, buffer
//! fetches and I/O, commit processing with logging, (optionally) FORCE writes
//! and (optionally) group commit.
//!
//! **Data sharing**: with `config.nodes.num_nodes > 1` several computing
//! modules run in front of the *shared* storage complex.  Each node has its
//! own CPU servers, local buffer pool and input queue; arriving transactions
//! are assigned round robin.  All nodes contend for the same storage devices
//! and NVEM, synchronize through one global lock service (hosted on node 0;
//! remote lock requests pay a message round trip) and invalidate each other's
//! stale buffer copies at commit.  A single-node run is exactly the paper's
//! centralized system.
//!
//! **Shared nothing**: with `config.architecture ==`
//! [`Architecture::SharedNothing`](crate::config::Architecture) the database
//! is instead *partitioned* over the nodes ([`dbmodel::PartitionMap`]).
//! An object reference whose page is owned by another node is
//! function-shipped: a `MicroOp::RemoteCall` carries execution to the owner
//! (one-way message, `Ev::RemoteDone` delivers it), the reference's CPU
//! burst — plus a remote-handling surcharge — runs on the *owner's* CPUs,
//! the lock is taken without any message (locking is purely node-local; the
//! global lock service runs in its local-only mode), the page is fetched
//! through the *owner's* buffer pool, and a second `RemoteCall` ships the
//! reply home.  Because a page is only ever cached at its owner there is no
//! coherence traffic: commits skip the cross-node invalidation entirely and
//! instead run a two-phase message exchange (`MicroOp::CommitExchange`) with
//! the remote owners of the written pages.
//!
//! **Hot path**: the future event list is an indexed calendar queue
//! ([`simkernel::EventQueue`]), and the per-event state lives in slab arenas
//! (the private `arena` module) — in-flight I/O requests under stable `u32`
//! ids, transaction slots with carcass reuse, and a shared
//! transaction-template table — so steady-state event handling performs no
//! hashing and (after warm-up) no allocation.
//!
//! The engine is split into focused subsystems (see `docs/ARCHITECTURE.md`
//! for the full map and an event-lifecycle walkthrough); this module only
//! defines the shared state and dispatches events:
//!
//! * `source` — transaction arrivals, node assignment and per-node MPL
//!   admission control,
//! * `exec` — the per-transaction micro-operation state machine (object
//!   references, locks, buffer fetches),
//! * `cpu` — CPU burst scheduling on the owning node's CPU servers,
//! * `io_path` — the I/O request lifecycle against the pluggable
//!   [`StorageDevice`] models,
//! * `commit` — commit processing: logging, FORCE/NOFORCE, group commit,
//!   cross-node buffer invalidation,
//! * `recover` — the opt-in crash-recovery subsystem: redo-record
//!   bookkeeping at commit, fuzzy checkpoints and the simulated
//!   crash-and-restart pass (see [`crate::recovery`]),
//! * `collect` — statistics collection and the final report (aggregate and
//!   per node).

mod arena;
mod coherence;
mod collect;
mod commit;
mod cpu;
mod exec;
mod io_path;
mod iorequest;
mod kqueue;
mod parallel;
mod recover;
mod source;
mod transaction;

#[cfg(test)]
mod tests;

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use bufmgr::BufferManager;
use dbmodel::{PageId, PartitionMap, PartitionScheme, WorkloadGenerator};
use lockmgr::{GlobalLockService, GlobalLockStats, LockManagerStats};
use simkernel::dist::PiecewiseRate;
use simkernel::sketch::QuantileSketch;
use simkernel::stats::{Histogram, Tally, TimeWeighted};
use simkernel::time::{interarrival_ms, SimTime};
use simkernel::{EventQueue, Resource, SimRng};
use storage::{DiskUnitStats, IoSchedulerStats, RequestScheduler, StorageDevice};

use crate::config::{Architecture, SimulationConfig};
use crate::metrics::{CoherenceReport, KernelProfile, ShippingReport, SimulationReport};
use crate::recovery::RecoveryRuntime;

use arena::{IoArena, TemplateTable, TxArena};
use kqueue::KernelQueue;

/// Events of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A new transaction arrives at the SOURCE.
    Arrival,
    /// The CPU burst of the transaction in the given slot finished.
    CpuDone(usize),
    /// The current service stage of the given I/O request finished.
    IoStage(u32),
    /// The message round trip of the transaction in the given slot finished.
    MsgDone(usize),
    /// Shared nothing: the one-way function-shipping message of the
    /// transaction in the given slot was delivered (execution resumes at the
    /// node its `RemoteCall` shipped to), or its commit prepare round trip
    /// completed.
    RemoteDone(usize),
    /// Flush the open group-commit batch with the given sequence number if it
    /// is still open (timeout path).
    GroupCommitFlush(u64),
    /// Take a fuzzy checkpoint (only scheduled when
    /// `config.recovery.checkpoint_interval_ms > 0`).
    Checkpoint,
    /// The simulated crash point: stop the run and enter restart processing
    /// (only scheduled via [`Simulation::simulate_crash_at`]).
    Crash,
    /// End of the warm-up interval: reset all statistics.
    EndWarmup,
    /// End of the measurement interval: stop the simulation.
    EndRun,
}

/// Control-flow result of executing one micro operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Keep executing the transaction's micro operations.
    Continue,
    /// The transaction is blocked (CPU queue, lock wait, I/O wait).
    Blocked,
    /// The transaction finished and its slot was released.
    Finished,
}

/// Runtime state of one storage device: the pluggable policy model plus the
/// queued resources for its controllers and disk servers.  Devices are shared
/// by all nodes.
struct UnitRuntime {
    device: Box<dyn StorageDevice>,
    controllers: Resource,
    disks: Resource,
    /// Per-device read scheduler (coalescing, elevator dispatch, prefetch
    /// deduplication); `Some` exactly when the configuration enables a
    /// scheduling policy.  `None` preserves the direct FCFS path untouched.
    scheduler: Option<RequestScheduler>,
}

/// Device and lock statistics frozen at the crash instant.  The restart
/// pass drives the device models and the lock service directly, so without
/// the snapshot its reads and lock re-acquisitions would leak into the
/// steady-state sections of the report (they are reported separately in
/// [`crate::metrics::RestartReport`]).
struct CrashStatsSnapshot {
    devices: Vec<DiskUnitStats>,
    /// Per-unit scheduler counters (`None` for units without a scheduler).
    /// The restart pass plans its reads through the same scheduler policy,
    /// so the steady-state counters are frozen alongside the device stats.
    scheduler: Vec<Option<IoSchedulerStats>>,
    locks: LockManagerStats,
    global_locks: GlobalLockStats,
}

/// Runtime state of one computing module (node): its CPU servers, local
/// buffer pool, input queue and per-node statistics.  A single-node run has
/// exactly one of these and behaves bit-identically to the pre-data-sharing
/// engine.  The input queue holds indices into the engine's shared template
/// table, not owned reference strings.
struct NodeRuntime {
    cpus: Resource,
    bufmgr: BufferManager,
    input_queue: VecDeque<(u32, SimTime)>,
    active_count: usize,

    // Per-node statistics.
    completed: u64,
    aborts: u64,
    remote_lock_requests: u64,
    redo_records: u64,
    response: Tally,
    /// Streaming response-time sketch; merged across nodes at report time
    /// for the cluster-wide p99/p999 (see `metrics::TailLatencyReport`).
    response_sketch: QuantileSketch,
    active_tw: TimeWeighted,
    inputq_tw: TimeWeighted,
}

impl NodeRuntime {
    fn new(node: usize, config: &SimulationConfig) -> Self {
        Self {
            cpus: Resource::new(format!("node{node}-cpus"), config.cm.num_cpus),
            bufmgr: BufferManager::new(config.buffer.clone()),
            input_queue: VecDeque::new(),
            active_count: 0,
            completed: 0,
            aborts: 0,
            remote_lock_requests: 0,
            redo_records: 0,
            response: Tally::new(),
            response_sketch: QuantileSketch::default(),
            active_tw: TimeWeighted::new(),
            inputq_tw: TimeWeighted::new(),
        }
    }
}

/// A complete TPSIM simulation run.
///
/// Construct with [`Simulation::new`], execute with [`Simulation::run`] (or
/// [`Simulation::run_profiled`] to also measure the kernel's wall-clock
/// event throughput).
pub struct Simulation<W: WorkloadGenerator> {
    config: SimulationConfig,
    workload: W,

    // Random streams.
    arrival_rng: SimRng,
    service_rng: SimRng,
    workload_rng: SimRng,

    /// Compiled arrival-rate schedule (`None` for the constant schedule,
    /// which keeps the original homogeneous draw path bit-for-bit).
    arrival_schedule: Option<PiecewiseRate>,

    // Kernel state.  Starts as the sequential calendar; replaced by the
    // sharded coordinator when the run dispatches to the parallel kernel.
    queue: KernelQueue,
    nodes: Vec<NodeRuntime>,
    units: Vec<UnitRuntime>,
    lockmgr: GlobalLockService,

    // Shared nothing: the page → owning-node map (`Some` exactly when
    // `config.architecture == Architecture::SharedNothing`) and the
    // function-shipping statistics accumulated since the warm-up reset.
    partition_map: Option<PartitionMap>,
    shipping: ShippingReport,

    // Cross-node buffer coherence (multi-node data sharing only; see the
    // `coherence` submodule).  `holders` maps each page to the bitmask of
    // nodes that may hold a buffered copy or a dirty-page-table entry — a
    // conservative superset maintained at fetch time and pruned lazily
    // during commit fan-out, so commit invalidation touches only actual
    // holders instead of broadcasting to every node.  `page_versions` and
    // `node_versions` carry the per-page version stamps of the on-request
    // validation protocol (unused, and empty, under broadcast
    // invalidation).  `coherence_stats` accumulates the report section
    // since the warm-up reset; the fan-out counters feed the kernel
    // profile (whole-run wall-clock accounting, never reset).
    holders: HashMap<PageId, u64>,
    page_versions: HashMap<PageId, u64>,
    node_versions: Vec<HashMap<PageId, u64>>,
    coherence_stats: CoherenceReport,
    fanout_commits: u64,
    fanout_ns: u64,

    // Transactions: slot arena plus the shared template table.  The lock
    // manager keeps the globally unique `u64` ids (their numeric order is its
    // wake-up order), so `id_to_slot` maps them back to arena slots when
    // lock waiters are woken.
    txs: TxArena,
    templates: TemplateTable,
    id_to_slot: HashMap<u64, usize>,
    next_tx_id: u64,
    ready: VecDeque<usize>,
    /// Round-robin assignment cursor of the SOURCE (always 0 with one node;
    /// consumes no randomness, so a single-node run draws the exact same
    /// streams as the pre-data-sharing engine).
    next_arrival_node: usize,
    /// Running sum of the per-node `active_count`s (kept incrementally so the
    /// per-event aggregate statistics never scan the node list).
    total_active: usize,
    /// Running sum of the per-node input-queue lengths.
    total_queued: usize,

    // In-flight I/O requests (stable u32 ids; see `arena::IoArena`).
    ios: IoArena,

    // Log bookkeeping (the log device is shared by all nodes).
    next_log_page: u64,
    log_wb_pending: usize,

    // Group commit: slots waiting in the currently open batch, the log
    // device the batch will be written to, and the batch's sequence number
    // (stale flush timeouts are ignored).  The slots waiting on an in-flight
    // group log write are parked on the write's `IoRequest` itself.
    commit_group: Vec<usize>,
    commit_group_unit: usize,
    commit_group_seq: u64,

    // Run control.
    end_time: SimTime,
    warmup_done: bool,
    measure_start: SimTime,
    stop_arrivals: bool,

    // Crash recovery (see `crate::recovery` and the `recover` submodule).
    // `recovery` is `Some` while the subsystem tracks redo state: with
    // checkpointing enabled and/or a crash requested.  When `None`, no redo
    // bookkeeping of any kind happens and the run is identical to an engine
    // without the subsystem.
    recovery: Option<RecoveryRuntime>,
    crash_at: Option<SimTime>,
    crashed: bool,
    crash_stats: Option<CrashStatsSnapshot>,

    // Aggregate statistics (sums over all nodes, kept incrementally so the
    // single-node report is identical to the per-node one).
    response: Tally,
    response_hist: Histogram,
    /// Per-transaction-type response tallies, sorted by `tx_type`.  A sorted
    /// small vec (binary-search lookup) instead of a `HashMap`: the distinct
    /// type count is tiny, and unlike direct indexing it stays bounded for
    /// workload generators with sparse large type ids.
    per_type: Vec<(usize, Tally)>,
    completed: u64,
    aborts: u64,
    log_group_writes: u64,
    nvem_busy: SimTime,
    active_tw: TimeWeighted,
    inputq_tw: TimeWeighted,
}

impl<W: WorkloadGenerator> Simulation<W> {
    /// Creates a simulation from a validated configuration and a workload
    /// generator.
    ///
    /// # Panics
    /// Panics if the configuration fails [`SimulationConfig::validate`].
    pub fn new(config: SimulationConfig, workload: W) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid simulation configuration: {msg}");
        }
        let mut workload = workload;
        // Only active parameters touch the generator: inactive defaults keep
        // every draw sequence — and therefore every report — byte-identical.
        if config.workload.hot_spot.is_active() {
            workload.apply_hot_spot(config.workload.hot_spot);
        }
        let arrival_schedule = config
            .workload
            .schedule
            .to_piecewise(config.arrival_rate_tps);
        let mut seed_rng = SimRng::seed_from(config.seed);
        let arrival_rng = seed_rng.derive(1);
        let service_rng = seed_rng.derive(2);
        let workload_rng = seed_rng.derive(3);

        let units = config
            .devices
            .iter()
            .enumerate()
            .map(|(i, spec)| UnitRuntime {
                device: spec.build(format!("unit-{i}")),
                controllers: Resource::new(format!("unit-{i}-controllers"), spec.num_controllers()),
                disks: Resource::new(format!("unit-{i}-disks"), spec.num_disks()),
                scheduler: config
                    .io_scheduler
                    .enabled()
                    .then(|| RequestScheduler::new(config.io_scheduler, spec.num_disks())),
            })
            .collect();
        let nodes = (0..config.nodes.num_nodes)
            .map(|n| NodeRuntime::new(n, &config))
            .collect();
        let remote_delay = if config.nodes.num_nodes > 1 {
            config.nodes.remote_lock_delay_ms
        } else {
            0.0
        };
        // Shared nothing: locking is purely node-local (a node only ever
        // locks the partitions it owns), so the lock service runs in its
        // local-only mode — no home node, no message round trips.
        let lockmgr = if config.architecture == Architecture::SharedNothing {
            GlobalLockService::node_local(config.cc_modes.clone())
        } else {
            GlobalLockService::new(config.cc_modes.clone(), 0, remote_delay)
        };
        let partition_map = (config.architecture == Architecture::SharedNothing).then(|| {
            let nodes = config.nodes.num_nodes;
            let ppn = config.partitioning.partitions_per_node;
            match config.partitioning.scheme {
                PartitionScheme::Hash => PartitionMap::hash(nodes, ppn),
                PartitionScheme::Range => {
                    let total_pages = workload.total_pages();
                    assert!(
                        total_pages > 0,
                        "range partitioning needs a workload generator that reports its \
                         database size (WorkloadGenerator::total_pages)"
                    );
                    PartitionMap::range(nodes, ppn, total_pages)
                }
            }
        });
        let shipping = ShippingReport::empty(config.nodes.num_nodes);
        let end_time = config.total_time_ms();
        let recovery = config
            .recovery
            .enabled()
            .then(|| RecoveryRuntime::new(config.cm.log_record_bytes));

        Self {
            workload,
            arrival_rng,
            service_rng,
            workload_rng,
            arrival_schedule,
            queue: KernelQueue::Single(EventQueue::new()),
            nodes,
            units,
            lockmgr,
            partition_map,
            shipping,
            holders: HashMap::new(),
            page_versions: HashMap::new(),
            node_versions: vec![HashMap::new(); config.nodes.num_nodes],
            coherence_stats: CoherenceReport::empty(),
            fanout_commits: 0,
            fanout_ns: 0,
            txs: TxArena::default(),
            templates: TemplateTable::default(),
            id_to_slot: HashMap::new(),
            next_tx_id: 1,
            ready: VecDeque::new(),
            next_arrival_node: 0,
            total_active: 0,
            total_queued: 0,
            ios: IoArena::default(),
            next_log_page: u64::MAX,
            log_wb_pending: 0,
            commit_group: Vec::new(),
            commit_group_unit: 0,
            commit_group_seq: 0,
            end_time,
            warmup_done: false,
            measure_start: config.warmup_ms,
            stop_arrivals: false,
            recovery,
            crash_at: None,
            crashed: false,
            crash_stats: None,
            response: Tally::new(),
            response_hist: Histogram::new(2.0, 5_000),
            per_type: Vec::new(),
            completed: 0,
            aborts: 0,
            log_group_writes: 0,
            nvem_busy: 0.0,
            active_tw: TimeWeighted::new(),
            inputq_tw: TimeWeighted::new(),
            config,
        }
    }

    /// Requests a simulated crash at `at_ms` (absolute simulated time): the
    /// run stops there, all volatile state (buffers, in-flight transactions,
    /// locks) is lost, and a redo pass replays the committed updates since
    /// the last checkpoint from the log, paying the configured devices' read
    /// latencies.  The result appears as
    /// [`crate::metrics::RestartReport`] in the report's `recovery` section.
    ///
    /// Enables redo bookkeeping even when checkpointing is disabled
    /// (`checkpoint_interval_ms == 0`); redo then starts at the log's
    /// beginning.
    ///
    /// # Panics
    /// Panics if the crash point is not strictly inside the measurement
    /// interval, if logging is disabled, or if the recovery force policy
    /// contradicts the buffer update strategy.
    pub fn simulate_crash_at(mut self, at_ms: SimTime) -> Self {
        assert!(
            at_ms > self.config.warmup_ms && at_ms < self.end_time,
            "crash point {at_ms} ms must lie strictly inside the measurement interval \
             ({} ms .. {} ms)",
            self.config.warmup_ms,
            self.end_time
        );
        assert!(
            self.config.cm.logging,
            "crash recovery requires logging to be enabled"
        );
        assert!(
            self.config.architecture == Architecture::DataSharing,
            "crash recovery is only modelled for the data-sharing architecture"
        );
        assert!(
            self.config
                .recovery
                .matches_update_strategy(self.config.buffer.update_strategy),
            "recovery force policy must match the buffer update strategy"
        );
        if self.recovery.is_none() {
            self.recovery = Some(RecoveryRuntime::new(self.config.cm.log_record_bytes));
        }
        self.crash_at = Some(at_ms);
        self
    }

    /// Number of computing modules in the configuration.
    fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node the transaction in `slot` currently executes at (its home
    /// node, except while a shared-nothing transaction is function-shipped
    /// to a remote partition owner).
    fn exec_node_of(&self, slot: usize) -> usize {
        self.txs.exec_node_of(slot)
    }

    /// Runs the simulation to completion and produces the report.
    pub fn run(self) -> SimulationReport {
        self.run_profiled().0
    }

    /// Runs the simulation to completion, also measuring the kernel's
    /// wall-clock event throughput (events popped, wall-clock ms,
    /// events/sec).  The report is identical to [`Simulation::run`]'s —
    /// including, bit for bit, across kernel thread counts: with
    /// `config.parallelism.kernel_threads >= 2` (and more than one node) the
    /// run uses the sharded parallel kernel, whose report is byte-identical
    /// to the sequential kernel's for the same configuration and seed (see
    /// the `parallel` submodule).
    pub fn run_profiled(mut self) -> (SimulationReport, KernelProfile) {
        // analyzer: allow(wall-clock): feeds KernelProfile only, never the report
        let wall_start = Instant::now();
        self.active_tw.record(0.0, 0.0);
        self.inputq_tw.record(0.0, 0.0);
        for node in &mut self.nodes {
            node.active_tw.record(0.0, 0.0);
            node.inputq_tw.record(0.0, 0.0);
        }
        let workers = self.config.kernel_workers();
        if workers >= 2 {
            self.run_events_sharded(workers);
        } else {
            self.seed_initial_events();
            self.run_event_loop();
        }
        let events = self.queue.popped_total();
        let rounds = self.queue.rounds_total();
        let (fanout_commits, fanout_ns) = (self.fanout_commits, self.fanout_ns);
        let restart = if self.crashed {
            Some(self.perform_restart())
        } else {
            None
        };
        let report = self.build_report(restart);
        let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
        let profile = KernelProfile::new(events, wall_ms)
            .with_sync_rounds(rounds)
            .with_commit_fanout(fanout_commits, fanout_ns);
        (report, profile)
    }

    /// Schedules the run-control events that exist before the first pop:
    /// the first arrival, the warm-up and run boundaries, and the optional
    /// checkpoint/crash points.
    pub(super) fn seed_initial_events(&mut self) {
        let first = self.next_arrival_gap(0.0);
        self.sched_at(first.min(self.end_time), Ev::Arrival);
        self.sched_at(self.config.warmup_ms, Ev::EndWarmup);
        self.sched_at(self.end_time, Ev::EndRun);
        self.seed_control_events();
    }

    /// Time until the next arrival after `now`.  The constant schedule keeps
    /// the original homogeneous exponential draw (bit-for-bit); time-varying
    /// schedules drive a non-homogeneous Poisson process by inversion of the
    /// piecewise rate integral with a unit exponential.
    pub(super) fn next_arrival_gap(&mut self, now: SimTime) -> SimTime {
        match &self.arrival_schedule {
            None => self
                .arrival_rng
                .exponential(interarrival_ms(self.config.arrival_rate_tps)),
            Some(schedule) => {
                let e = self.arrival_rng.exponential(1.0);
                schedule.next_arrival_after(now, e) - now
            }
        }
    }

    /// The non-arrival control events of `seed_initial_events`.
    fn seed_control_events(&mut self) {
        let checkpoint_interval = self.config.recovery.checkpoint_interval_ms;
        if self.recovery.is_some() && checkpoint_interval > 0.0 {
            self.sched_at(checkpoint_interval, Ev::Checkpoint);
        }
        if let Some(crash_at) = self.crash_at {
            self.sched_at(crash_at, Ev::Crash);
        }
    }

    /// The main event loop: pops events in global `(time, seq)` order and
    /// dispatches their handlers, until the run boundary (or crash point)
    /// is popped.  Shared verbatim by the sequential and sharded kernels —
    /// handlers always execute serially on this thread.
    pub(super) fn run_event_loop(&mut self) {
        while let Some(event) = self.queue.pop() {
            match event.payload {
                Ev::EndRun => break,
                Ev::Crash => {
                    self.crashed = true;
                    break;
                }
                Ev::EndWarmup => self.end_warmup(),
                Ev::Arrival => self.handle_arrival(),
                Ev::CpuDone(slot) => self.handle_cpu_done(slot),
                Ev::IoStage(io_id) => self.handle_io_stage(io_id),
                // Both message kinds resume the parked transaction the same
                // way; a remote call's execution node was already switched
                // when the message was scheduled.
                Ev::MsgDone(slot) | Ev::RemoteDone(slot) => self.handle_msg_done(slot),
                Ev::GroupCommitFlush(seq) => self.handle_group_commit_flush(seq),
                Ev::Checkpoint => self.handle_checkpoint(),
            }
            self.process_ready();
        }
    }
}
