//! The TPSIM discrete-event engine.
//!
//! Ties the SOURCE (workload generator), the CM (transaction manager, CPUs,
//! lock manager, buffer manager) and the external devices together and runs
//! the open queuing model: Poisson arrivals, MPL admission control,
//! transaction execution with CPU bursts, lock requests, buffer fetches and
//! I/O, commit processing with logging and (optionally) FORCE writes.

mod iorequest;
mod transaction;

use std::collections::{HashMap, VecDeque};

use bufmgr::{BufferManager, PageOp, UpdateStrategy};
use dbmodel::{PageId, TransactionTemplate, WorkloadGenerator};
use lockmgr::{LockManager, LockOutcome};
use simkernel::resource::Acquire;
use simkernel::stats::{Histogram, Tally, TimeWeighted};
use simkernel::time::{instr_time, interarrival_ms, SimTime};
use simkernel::{EventQueue, Resource, SimRng};
use storage::{DiskUnit, IoKind, ServiceStage};

use crate::config::{LogAllocation, SimulationConfig};
use crate::metrics::{DiskUnitReport, ResponseTimeStats, SimulationReport, TxTypeReport};

use iorequest::{HeldResource, IoRequest};
use transaction::{MicroOp, Transaction, TxPhase, TxState};

/// Events of the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A new transaction arrives at the SOURCE.
    Arrival,
    /// The CPU burst of the transaction in the given slot finished.
    CpuDone(usize),
    /// The current service stage of the given I/O request finished.
    IoStage(u64),
    /// End of the warm-up interval: reset all statistics.
    EndWarmup,
    /// End of the measurement interval: stop the simulation.
    EndRun,
}

/// Control-flow result of executing one micro operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    /// Keep executing the transaction's micro operations.
    Continue,
    /// The transaction is blocked (CPU queue, lock wait, I/O wait).
    Blocked,
    /// The transaction finished and its slot was released.
    Finished,
}

/// Runtime state of one disk unit: the policy model plus the queued resources
/// for its controllers and disk servers.
struct UnitRuntime {
    unit: DiskUnit,
    controllers: Resource,
    disks: Resource,
}

/// A complete TPSIM simulation run.
///
/// Construct with [`Simulation::new`], execute with [`Simulation::run`].
pub struct Simulation<W: WorkloadGenerator> {
    config: SimulationConfig,
    workload: W,

    // Random streams.
    arrival_rng: SimRng,
    service_rng: SimRng,
    workload_rng: SimRng,

    // Kernel state.
    queue: EventQueue<Ev>,
    cpus: Resource,
    units: Vec<UnitRuntime>,
    bufmgr: BufferManager,
    lockmgr: LockManager,

    // Transactions.
    txs: Vec<Option<Transaction>>,
    free_slots: Vec<usize>,
    id_to_slot: HashMap<u64, usize>,
    next_tx_id: u64,
    ready: VecDeque<usize>,
    input_queue: VecDeque<(TransactionTemplate, SimTime)>,
    active_count: usize,

    // I/O requests.
    ios: HashMap<u64, IoRequest>,
    next_io_id: u64,

    // Log bookkeeping.
    next_log_page: u64,
    log_wb_pending: usize,

    // Run control.
    end_time: SimTime,
    warmup_done: bool,
    measure_start: SimTime,
    stop_arrivals: bool,

    // Statistics.
    response: Tally,
    response_hist: Histogram,
    per_type: HashMap<usize, Tally>,
    completed: u64,
    aborts: u64,
    nvem_busy: SimTime,
    active_tw: TimeWeighted,
    inputq_tw: TimeWeighted,
}

impl<W: WorkloadGenerator> Simulation<W> {
    /// Creates a simulation from a validated configuration and a workload
    /// generator.
    ///
    /// # Panics
    /// Panics if the configuration fails [`SimulationConfig::validate`].
    pub fn new(config: SimulationConfig, workload: W) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid simulation configuration: {msg}");
        }
        let mut seed_rng = SimRng::seed_from(config.seed);
        let arrival_rng = seed_rng.derive(1);
        let service_rng = seed_rng.derive(2);
        let workload_rng = seed_rng.derive(3);

        let units = config
            .disk_units
            .iter()
            .enumerate()
            .map(|(i, p)| UnitRuntime {
                unit: DiskUnit::new(format!("unit-{i}"), *p),
                controllers: Resource::new(format!("unit-{i}-controllers"), p.num_controllers.max(1)),
                disks: Resource::new(format!("unit-{i}-disks"), p.num_disks.max(1)),
            })
            .collect();
        let bufmgr = BufferManager::new(config.buffer.clone());
        let lockmgr = LockManager::new(config.cc_modes.clone());
        let cpus = Resource::new("cpus", config.cm.num_cpus);
        let end_time = config.total_time_ms();

        Self {
            workload,
            arrival_rng,
            service_rng,
            workload_rng,
            queue: EventQueue::new(),
            cpus,
            units,
            bufmgr,
            lockmgr,
            txs: Vec::new(),
            free_slots: Vec::new(),
            id_to_slot: HashMap::new(),
            next_tx_id: 1,
            ready: VecDeque::new(),
            input_queue: VecDeque::new(),
            active_count: 0,
            ios: HashMap::new(),
            next_io_id: 1,
            next_log_page: u64::MAX,
            log_wb_pending: 0,
            end_time,
            warmup_done: false,
            measure_start: config.warmup_ms,
            stop_arrivals: false,
            response: Tally::new(),
            response_hist: Histogram::new(2.0, 5_000),
            per_type: HashMap::new(),
            completed: 0,
            aborts: 0,
            nvem_busy: 0.0,
            active_tw: TimeWeighted::new(),
            inputq_tw: TimeWeighted::new(),
            config,
        }
    }

    /// Runs the simulation to completion and produces the report.
    pub fn run(mut self) -> SimulationReport {
        self.active_tw.record(0.0, 0.0);
        self.inputq_tw.record(0.0, 0.0);
        let first = self.arrival_rng.exponential(interarrival_ms(self.config.arrival_rate_tps));
        self.queue.schedule_at(first.min(self.end_time), Ev::Arrival);
        self.queue.schedule_at(self.config.warmup_ms, Ev::EndWarmup);
        self.queue.schedule_at(self.end_time, Ev::EndRun);

        while let Some(event) = self.queue.pop() {
            match event.payload {
                Ev::EndRun => break,
                Ev::EndWarmup => self.end_warmup(),
                Ev::Arrival => self.handle_arrival(),
                Ev::CpuDone(slot) => self.handle_cpu_done(slot),
                Ev::IoStage(io_id) => self.handle_io_stage(io_id),
            }
            self.process_ready();
        }
        self.build_report()
    }

    // ------------------------------------------------------------------
    // Arrival and admission
    // ------------------------------------------------------------------

    fn handle_arrival(&mut self) {
        let now = self.queue.now();
        if self.stop_arrivals {
            return;
        }
        // Schedule the next arrival of the Poisson process.
        let gap = self
            .arrival_rng
            .exponential(interarrival_ms(self.config.arrival_rate_tps));
        if now + gap < self.end_time {
            self.queue.schedule_in(gap, Ev::Arrival);
        }
        // Generate the transaction.
        match self.workload.next_transaction(&mut self.workload_rng) {
            Some(template) => {
                if self.active_count < self.config.cm.mpl {
                    self.activate(template, now);
                } else {
                    self.input_queue.push_back((template, now));
                    self.inputq_tw.record(now, self.input_queue.len() as f64);
                }
            }
            None => {
                // Trace exhausted (non-cycling replay): no further arrivals.
                self.stop_arrivals = true;
            }
        }
    }

    fn activate(&mut self, template: TransactionTemplate, arrival: SimTime) {
        let now = self.queue.now();
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let mut tx = Transaction::new(id, template, arrival);
        let bot = instr_time(
            self.service_rng.exponential(self.config.cm.instr_bot),
            self.config.cm.mips,
        );
        tx.micro.push_back(MicroOp::CpuBurst { ms: bot, nvem: false });
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.txs[s] = Some(tx);
                s
            }
            None => {
                self.txs.push(Some(tx));
                self.txs.len() - 1
            }
        };
        self.id_to_slot.insert(id, slot);
        self.active_count += 1;
        self.active_tw.record(now, self.active_count as f64);
        self.ready.push_back(slot);
    }

    // ------------------------------------------------------------------
    // Transaction state machine
    // ------------------------------------------------------------------

    fn process_ready(&mut self) {
        while let Some(slot) = self.ready.pop_front() {
            if self.txs.get(slot).map(|t| t.is_some()).unwrap_or(false) {
                self.advance(slot);
            }
        }
    }

    fn advance(&mut self, slot: usize) {
        loop {
            let op = match self.txs[slot].as_mut().and_then(|t| t.micro.pop_front()) {
                Some(op) => op,
                None => {
                    if !self.advance_phase(slot) {
                        return;
                    }
                    continue;
                }
            };
            match self.execute_op(slot, op) {
                Flow::Continue => continue,
                Flow::Blocked | Flow::Finished => return,
            }
        }
    }

    /// Generates the next batch of micro operations from the transaction's
    /// phase.  Returns false when there is nothing left to do.
    fn advance_phase(&mut self, slot: usize) -> bool {
        let cm = self.config.cm;
        let (phase, num_refs, is_update) = {
            let tx = self.txs[slot].as_ref().expect("live transaction");
            (tx.phase, tx.template.len(), tx.template.is_update())
        };
        match phase {
            TxPhase::BeforeAccess { next_ref } if next_ref < num_refs => {
                let or = instr_time(self.service_rng.exponential(cm.instr_or), cm.mips);
                let tx = self.txs[slot].as_mut().expect("live transaction");
                tx.micro.push_back(MicroOp::CpuBurst { ms: or, nvem: false });
                tx.micro.push_back(MicroOp::Lock { ref_idx: next_ref });
                tx.phase = TxPhase::BeforeAccess { next_ref: next_ref + 1 };
                true
            }
            TxPhase::BeforeAccess { .. } => {
                // All object references done: commit processing.
                let eot = instr_time(self.service_rng.exponential(cm.instr_eot), cm.mips);
                let force = self.config.buffer.update_strategy == UpdateStrategy::Force;
                let tx = self.txs[slot].as_mut().expect("live transaction");
                tx.micro.push_back(MicroOp::CpuBurst { ms: eot, nvem: false });
                if is_update && cm.logging {
                    tx.micro.push_back(MicroOp::LogWrite);
                }
                if is_update && force {
                    tx.micro.push_back(MicroOp::ForcePages);
                }
                tx.micro.push_back(MicroOp::Complete);
                tx.phase = TxPhase::Committing;
                true
            }
            TxPhase::Committing => false,
        }
    }

    fn execute_op(&mut self, slot: usize, op: MicroOp) -> Flow {
        match op {
            MicroOp::CpuBurst { ms, nvem } => self.op_cpu_burst(slot, ms, nvem),
            MicroOp::Lock { ref_idx } => self.op_lock(slot, ref_idx),
            MicroOp::IssueIo {
                unit,
                kind,
                page,
                wait,
                notify,
                log_wb,
            } => self.op_issue_io(slot, unit, kind, page, wait, notify, log_wb),
            MicroOp::LogWrite => self.op_log_write(slot),
            MicroOp::ForcePages => self.op_force_pages(slot),
            MicroOp::Complete => self.op_complete(slot),
        }
    }

    fn op_cpu_burst(&mut self, slot: usize, ms: SimTime, nvem: bool) -> Flow {
        let now = self.queue.now();
        if nvem {
            self.nvem_busy += self.config.nvem.access_time;
        }
        {
            let tx = self.txs[slot].as_mut().expect("live transaction");
            tx.pending_burst = ms;
            tx.pending_burst_nvem = nvem;
        }
        match self.cpus.acquire(now, slot as u64) {
            Acquire::Granted => {
                self.txs[slot].as_mut().expect("live transaction").state = TxState::RunningCpu;
                self.queue.schedule_in(ms, Ev::CpuDone(slot));
            }
            Acquire::Queued => {
                self.txs[slot].as_mut().expect("live transaction").state = TxState::WaitingCpu;
            }
        }
        Flow::Blocked
    }

    fn handle_cpu_done(&mut self, slot: usize) {
        let now = self.queue.now();
        // Free the CPU and hand it to the next queued burst, if any.
        if let Some(next) = self.cpus.release(now) {
            let nslot = next as usize;
            if let Some(tx) = self.txs[nslot].as_mut() {
                tx.state = TxState::RunningCpu;
                let burst = tx.pending_burst;
                self.queue.schedule_in(burst, Ev::CpuDone(nslot));
            }
        }
        if let Some(tx) = self.txs[slot].as_mut() {
            tx.state = TxState::Ready;
            self.ready.push_back(slot);
        }
    }

    fn op_lock(&mut self, slot: usize, ref_idx: usize) -> Flow {
        let (tx_id, obj_ref) = {
            let tx = self.txs[slot].as_ref().expect("live transaction");
            (tx.id, tx.template.refs[ref_idx])
        };
        match self.lockmgr.acquire(tx_id, &obj_ref) {
            LockOutcome::Granted => {
                self.buffer_fetch(slot, ref_idx);
                Flow::Continue
            }
            LockOutcome::Blocked => {
                let tx = self.txs[slot].as_mut().expect("live transaction");
                tx.pending_lock_ref = Some(ref_idx);
                tx.state = TxState::WaitingLock;
                Flow::Blocked
            }
            LockOutcome::Deadlock => {
                self.aborts += 1;
                let woken = self.lockmgr.abort(tx_id);
                self.wake_lock_waiters(&woken);
                // Restart the victim with the same reference string.
                let bot = instr_time(
                    self.service_rng.exponential(self.config.cm.instr_bot),
                    self.config.cm.mips,
                );
                let tx = self.txs[slot].as_mut().expect("live transaction");
                tx.restart();
                tx.micro.push_back(MicroOp::CpuBurst { ms: bot, nvem: false });
                Flow::Continue
            }
        }
    }

    fn wake_lock_waiters(&mut self, ids: &[u64]) {
        for id in ids {
            let Some(&slot) = self.id_to_slot.get(id) else {
                continue;
            };
            let ref_idx = {
                let tx = self.txs[slot].as_mut().expect("live transaction");
                tx.state = TxState::Ready;
                tx.pending_lock_ref.take()
            };
            if let Some(ref_idx) = ref_idx {
                self.buffer_fetch(slot, ref_idx);
            }
            self.ready.push_back(slot);
        }
    }

    /// Performs the buffer-manager lookup for object reference `ref_idx` and
    /// queues the resulting storage operations.
    fn buffer_fetch(&mut self, slot: usize, ref_idx: usize) {
        let obj_ref = self.txs[slot].as_ref().expect("live transaction").template.refs[ref_idx];
        let outcome =
            self.bufmgr
                .reference_page(obj_ref.partition, obj_ref.page, obj_ref.mode.is_write());
        let ops = self.convert_page_ops(&outcome.ops);
        self.txs[slot]
            .as_mut()
            .expect("live transaction")
            .push_ops_front(ops);
    }

    /// Translates buffer-manager page operations into engine micro operations,
    /// charging the per-I/O CPU overhead and the synchronous NVEM transfer
    /// costs.
    fn convert_page_ops(&mut self, ops: &[PageOp]) -> Vec<MicroOp> {
        let cm = self.config.cm;
        let nvem_cost = self.config.nvem.synchronous_cost(cm.mips);
        let mut out = Vec::with_capacity(ops.len() * 2);
        for op in ops {
            match *op {
                PageOp::NvemTransfer { .. } => {
                    out.push(MicroOp::CpuBurst { ms: nvem_cost, nvem: true });
                }
                PageOp::UnitRead { unit, page } => {
                    out.push(self.io_overhead_burst());
                    out.push(MicroOp::IssueIo {
                        unit,
                        kind: IoKind::Read,
                        page,
                        wait: true,
                        notify: false,
                        log_wb: false,
                    });
                }
                PageOp::UnitWrite { unit, page } => {
                    out.push(self.io_overhead_burst());
                    out.push(MicroOp::IssueIo {
                        unit,
                        kind: IoKind::Write,
                        page,
                        wait: true,
                        notify: false,
                        log_wb: false,
                    });
                }
                PageOp::UnitWriteAsync { unit, page } => {
                    out.push(self.io_overhead_burst());
                    out.push(MicroOp::IssueIo {
                        unit,
                        kind: IoKind::Write,
                        page,
                        wait: false,
                        notify: true,
                        log_wb: false,
                    });
                }
            }
        }
        out
    }

    fn io_overhead_burst(&mut self) -> MicroOp {
        let cm = self.config.cm;
        MicroOp::CpuBurst {
            ms: instr_time(self.service_rng.exponential(cm.instr_io), cm.mips),
            nvem: false,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn op_issue_io(
        &mut self,
        slot: usize,
        unit: usize,
        kind: IoKind,
        page: PageId,
        wait: bool,
        notify: bool,
        log_wb: bool,
    ) -> Flow {
        let decision = self.units[unit].unit.request(kind, page);
        let io_id = self.next_io_id;
        self.next_io_id += 1;
        let mut io = IoRequest::new(unit, page, decision.foreground, wait.then_some(slot))
            .with_background(decision.background);
        if notify {
            io = io.with_bufmgr_notification();
        }
        if log_wb {
            io = io.with_log_wb();
        }
        self.ios.insert(io_id, io);
        self.advance_io(io_id);
        if wait {
            self.txs[slot].as_mut().expect("live transaction").state = TxState::WaitingIo;
            Flow::Blocked
        } else {
            Flow::Continue
        }
    }

    fn op_log_write(&mut self, slot: usize) -> Flow {
        let cm = self.config.cm;
        let nvem_cost = self.config.nvem.synchronous_cost(cm.mips);
        let ops = match self.config.log_allocation {
            LogAllocation::Nvem => {
                vec![MicroOp::CpuBurst { ms: nvem_cost, nvem: true }]
            }
            LogAllocation::DiskUnit(unit) => {
                let page = self.next_log_page();
                vec![
                    self.io_overhead_burst(),
                    MicroOp::IssueIo {
                        unit,
                        kind: IoKind::Write,
                        page,
                        wait: true,
                        notify: false,
                        log_wb: false,
                    },
                ]
            }
            LogAllocation::DiskUnitViaNvemWriteBuffer(unit) => {
                let page = self.next_log_page();
                let capacity = self.config.buffer.nvem_write_buffer_pages;
                if self.log_wb_pending < capacity {
                    // Absorbed by the NVEM write buffer: the transaction only
                    // waits for the NVEM transfer; the disk is updated
                    // asynchronously.
                    self.log_wb_pending += 1;
                    vec![
                        MicroOp::CpuBurst { ms: nvem_cost, nvem: true },
                        self.io_overhead_burst(),
                        MicroOp::IssueIo {
                            unit,
                            kind: IoKind::Write,
                            page,
                            wait: false,
                            notify: false,
                            log_wb: true,
                        },
                    ]
                } else {
                    // Write buffer saturated: synchronous log write.
                    vec![
                        self.io_overhead_burst(),
                        MicroOp::IssueIo {
                            unit,
                            kind: IoKind::Write,
                            page,
                            wait: true,
                            notify: false,
                            log_wb: false,
                        },
                    ]
                }
            }
        };
        self.txs[slot]
            .as_mut()
            .expect("live transaction")
            .push_ops_front(ops);
        Flow::Continue
    }

    fn next_log_page(&mut self) -> PageId {
        // Log pages live in a reserved id range far above any database page.
        let page = PageId(self.next_log_page);
        self.next_log_page -= 1;
        page
    }

    fn op_force_pages(&mut self, slot: usize) -> Flow {
        let pages = self.txs[slot].as_ref().expect("live transaction").written_pages();
        let mut page_ops = Vec::new();
        for (partition, page) in pages {
            page_ops.extend(self.bufmgr.force_page(partition, page));
        }
        let ops = self.convert_page_ops(&page_ops);
        self.txs[slot]
            .as_mut()
            .expect("live transaction")
            .push_ops_front(ops);
        Flow::Continue
    }

    fn op_complete(&mut self, slot: usize) -> Flow {
        let now = self.queue.now();
        let (tx_id, arrival, tx_type) = {
            let tx = self.txs[slot].as_ref().expect("live transaction");
            (tx.id, tx.arrival, tx.template.tx_type)
        };
        // Phase 2 of commit: release all locks and wake waiters.
        let woken = self.lockmgr.release_all(tx_id);
        self.wake_lock_waiters(&woken);

        // Statistics.
        if self.warmup_done {
            let resp = now - arrival;
            self.response.record(resp);
            self.response_hist.record(resp);
            self.per_type.entry(tx_type).or_default().record(resp);
            self.completed += 1;
        }

        // Free the slot.
        self.id_to_slot.remove(&tx_id);
        self.txs[slot] = None;
        self.free_slots.push(slot);
        self.active_count -= 1;
        self.active_tw.record(now, self.active_count as f64);

        // Admit the next waiting transaction, if any.
        if let Some((template, arrival)) = self.input_queue.pop_front() {
            self.inputq_tw.record(now, self.input_queue.len() as f64);
            self.activate(template, arrival);
        }
        Flow::Finished
    }

    // ------------------------------------------------------------------
    // I/O execution
    // ------------------------------------------------------------------

    fn advance_io(&mut self, io_id: u64) {
        let now = self.queue.now();
        let (unit, next_stage) = {
            let io = self.ios.get_mut(&io_id).expect("live io request");
            (io.unit, io.remaining.pop_front())
        };
        match next_stage {
            None => self.complete_io(io_id),
            Some(ServiceStage::Controller(t)) => {
                {
                    let io = self.ios.get_mut(&io_id).expect("live io request");
                    io.held = Some(HeldResource::Controller);
                    io.pending_service = t;
                }
                if self.units[unit].controllers.acquire(now, io_id) == Acquire::Granted {
                    self.queue.schedule_in(t, Ev::IoStage(io_id));
                }
            }
            Some(ServiceStage::Disk(t)) => {
                {
                    let io = self.ios.get_mut(&io_id).expect("live io request");
                    io.held = Some(HeldResource::Disk);
                    io.pending_service = t;
                }
                if self.units[unit].disks.acquire(now, io_id) == Acquire::Granted {
                    self.queue.schedule_in(t, Ev::IoStage(io_id));
                }
            }
            Some(ServiceStage::Transmission(t)) => {
                self.ios.get_mut(&io_id).expect("live io request").held = None;
                self.queue.schedule_in(t, Ev::IoStage(io_id));
            }
        }
    }

    fn handle_io_stage(&mut self, io_id: u64) {
        let now = self.queue.now();
        let held_info = self.ios.get(&io_id).map(|io| (io.held, io.unit));
        if let Some((Some(held), unit)) = held_info {
            let granted = match held {
                HeldResource::Controller => self.units[unit].controllers.release(now),
                HeldResource::Disk => self.units[unit].disks.release(now),
            };
            if let Some(next_io) = granted {
                let service = self
                    .ios
                    .get(&next_io)
                    .map(|io| io.pending_service)
                    .unwrap_or(0.0);
                self.queue.schedule_in(service, Ev::IoStage(next_io));
            }
            if let Some(io) = self.ios.get_mut(&io_id) {
                io.held = None;
            }
        }
        self.advance_io(io_id);
    }

    fn complete_io(&mut self, io_id: u64) {
        let io = self.ios.remove(&io_id).expect("live io request");
        if io.is_destage {
            self.units[io.unit].unit.destage_complete(io.page);
        }
        if io.notify_bufmgr {
            self.bufmgr.async_write_complete(io.page);
        }
        if io.log_wb {
            self.log_wb_pending = self.log_wb_pending.saturating_sub(1);
        }
        if !io.background.is_empty() {
            let bg_id = self.next_io_id;
            self.next_io_id += 1;
            let bg = IoRequest::new(io.unit, io.page, io.background, None).as_destage();
            self.ios.insert(bg_id, bg);
            self.advance_io(bg_id);
        }
        if let Some(slot) = io.waiter {
            if let Some(tx) = self.txs.get_mut(slot).and_then(Option::as_mut) {
                tx.state = TxState::Ready;
                self.ready.push_back(slot);
            }
        }
    }

    // ------------------------------------------------------------------
    // Warm-up and reporting
    // ------------------------------------------------------------------

    fn end_warmup(&mut self) {
        let now = self.queue.now();
        self.warmup_done = true;
        self.measure_start = now;
        self.response.reset();
        self.response_hist.reset();
        self.per_type.clear();
        self.completed = 0;
        self.aborts = 0;
        self.nvem_busy = 0.0;
        self.cpus.reset_stats(now);
        for u in &mut self.units {
            u.unit.reset_stats();
            u.controllers.reset_stats(now);
            u.disks.reset_stats(now);
        }
        self.bufmgr.reset_stats();
        self.lockmgr.reset_stats();
        self.active_tw = TimeWeighted::new();
        self.active_tw.record(now, self.active_count as f64);
        self.inputq_tw = TimeWeighted::new();
        self.inputq_tw.record(now, self.input_queue.len() as f64);
    }

    fn build_report(mut self) -> SimulationReport {
        let now = self.queue.now();
        let measured = (now - self.measure_start).max(1e-9);
        self.active_tw.record(now, self.active_count as f64);
        self.inputq_tw.record(now, self.input_queue.len() as f64);

        let cpu_stats = self.cpus.stats(now);
        let response_time = if self.response.count() > 0 {
            ResponseTimeStats {
                count: self.response.count(),
                mean: self.response.mean().unwrap_or(0.0),
                std_dev: self.response.std_dev().unwrap_or(0.0),
                min: self.response.min().unwrap_or(0.0),
                max: self.response.max().unwrap_or(0.0),
                p95: self.response_hist.quantile(0.95).unwrap_or(0.0),
            }
        } else {
            ResponseTimeStats::empty()
        };
        let mut per_type: Vec<TxTypeReport> = self
            .per_type
            .iter()
            .map(|(ty, tally)| TxTypeReport {
                tx_type: *ty,
                count: tally.count(),
                mean_response: tally.mean().unwrap_or(0.0),
            })
            .collect();
        per_type.sort_by_key(|t| t.tx_type);

        let disk_units = self
            .units
            .iter_mut()
            .map(|u| {
                let dstats = u.disks.stats(now);
                let cstats = u.controllers.stats(now);
                DiskUnitReport {
                    name: u.unit.name().to_string(),
                    disk_utilization: dstats.utilization,
                    controller_utilization: cstats.utilization,
                    avg_disk_wait: dstats.avg_wait,
                    stats: u.unit.stats(),
                }
            })
            .collect();

        let nvem_capacity = self.config.nvem.num_servers.max(1) as f64;
        SimulationReport {
            arrival_rate_tps: self.config.arrival_rate_tps,
            completed: self.completed,
            aborts: self.aborts,
            measured_time_ms: measured,
            throughput_tps: self.completed as f64 / (measured / 1000.0),
            response_time,
            per_type,
            cpu_utilization: cpu_stats.utilization,
            nvem_utilization: (self.nvem_busy / (measured * nvem_capacity)).min(1.0),
            avg_active_transactions: self.active_tw.mean().unwrap_or(0.0),
            avg_input_queue: self.inputq_tw.mean().unwrap_or(0.0),
            buffer: self.bufmgr.stats().clone(),
            locks: self.lockmgr.stats(),
            disk_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{
        debit_credit_config, debit_credit_workload, DebitCreditStorage,
    };

    fn quick_config(storage: DebitCreditStorage, tps: f64) -> SimulationConfig {
        let mut c = debit_credit_config(storage, tps);
        c.warmup_ms = 300.0;
        c.measure_ms = 1_500.0;
        c
    }

    #[test]
    fn disk_based_debit_credit_completes_transactions() {
        let config = quick_config(DebitCreditStorage::Disk, 50.0);
        let report = Simulation::new(config, debit_credit_workload(100)).run();
        assert!(report.completed > 20, "completed {}", report.completed);
        // Disk-based response time: ~2 disk I/Os + log I/O + CPU ≈ 40+ ms.
        assert!(
            report.response_time.mean > 20.0,
            "mean {}",
            report.response_time.mean
        );
        assert!(report.cpu_utilization > 0.0 && report.cpu_utilization < 1.0);
        assert!(report.throughput_tps > 20.0);
    }

    #[test]
    fn nvem_resident_debit_credit_is_cpu_bound_and_fast() {
        let config = quick_config(DebitCreditStorage::NvemResident, 50.0);
        let report = Simulation::new(config, debit_credit_workload(100)).run();
        assert!(report.completed > 20);
        // NVEM-resident: response time close to the pure CPU path length (5 ms).
        assert!(
            report.response_time.mean < 15.0,
            "mean {}",
            report.response_time.mean
        );
        assert!(report.nvem_utilization > 0.0);
    }

    #[test]
    fn write_buffer_halves_disk_based_response_time() {
        // Use a small main-memory buffer and a higher rate so the buffer
        // reaches steady state (victim write-backs) within the short run.
        let configure = |storage| {
            let mut c = quick_config(storage, 150.0);
            c.buffer.mm_buffer_pages = 300;
            c.warmup_ms = 1_000.0;
            c.measure_ms = 2_500.0;
            c
        };
        let disk = Simulation::new(
            configure(DebitCreditStorage::Disk),
            debit_credit_workload(100),
        )
        .run();
        let wb = Simulation::new(
            configure(DebitCreditStorage::DiskWithNvemWriteBuffer),
            debit_credit_workload(100),
        )
        .run();
        assert!(
            disk.buffer.dirty_evictions > 0,
            "disk-based run should reach steady state with dirty evictions"
        );
        assert!(
            wb.response_time.mean < disk.response_time.mean * 0.75,
            "write buffer {} vs disk {}",
            wb.response_time.mean,
            disk.response_time.mean
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = Simulation::new(
            quick_config(DebitCreditStorage::Ssd, 80.0),
            debit_credit_workload(100),
        )
        .run();
        let b = Simulation::new(
            quick_config(DebitCreditStorage::Ssd, 80.0),
            debit_credit_workload(100),
        )
        .run();
        assert_eq!(a.completed, b.completed);
        assert!((a.response_time.mean - b.response_time.mean).abs() < 1e-9);
        assert_eq!(a.buffer.references(), b.buffer.references());
    }

    #[test]
    fn single_log_disk_saturates_at_high_rates() {
        // With one 5 ms log disk, ~200 TPS is the maximum log rate; at 300 TPS
        // the input queue grows and response times explode (Fig. 4.1).
        let mut config =
            crate::presets::log_allocation_config(crate::presets::LogVariant::SingleDisk, 300.0);
        config.warmup_ms = 200.0;
        config.measure_ms = 2_000.0;
        let report = Simulation::new(config, debit_credit_workload(100)).run();
        let log_unit = &report.disk_units[1];
        assert!(
            log_unit.disk_utilization > 0.9,
            "log disk utilization {}",
            log_unit.disk_utilization
        );
        assert!(report.throughput_tps < 260.0);
    }
}
