//! The I/O request lifecycle against the pluggable [`StorageDevice`] models.
//!
//! An I/O is issued by asking the target device for an
//! [`storage::IoDecision`] (which service stages the request must pass
//! through); the stages are then executed against the device's controller
//! and disk-server resources so queueing is modelled faithfully.  Completion
//! wakes the waiting transaction, notifies the buffer manager about
//! asynchronous writes, releases group-commit batches and spawns background
//! destages.
//!
//! Requests live in the engine's [`IoArena`](super::arena::IoArena): the
//! `u32` request id carried by every `IoStage` event and resource token is a
//! plain slot index, so the per-event lookups here never hash.
//!
//! [`StorageDevice`]: storage::StorageDevice

use bufmgr::PageOp;
use dbmodel::{PageId, WorkloadGenerator};
use simkernel::resource::Acquire;
use storage::{IoKind, ServiceStage, SubmitOutcome};

use super::iorequest::{HeldResource, IoRequest};
use super::transaction::{MicroOp, TxState};
use super::{Ev, Flow, Simulation};

impl<W: WorkloadGenerator> Simulation<W> {
    /// Translates buffer-manager page operations into engine micro operations,
    /// charging the per-I/O CPU overhead and the synchronous NVEM transfer
    /// costs.
    pub(super) fn convert_page_ops(&mut self, ops: &[PageOp]) -> Vec<MicroOp> {
        let cm = self.config.cm;
        let nvem_cost = self.config.nvem.synchronous_cost(cm.mips);
        let mut out = Vec::with_capacity(ops.len() * 2);
        for op in ops {
            match *op {
                PageOp::NvemTransfer { .. } => {
                    out.push(MicroOp::CpuBurst {
                        ms: nvem_cost,
                        nvem: true,
                    });
                }
                PageOp::UnitRead { unit, page } => {
                    out.push(self.io_overhead_burst());
                    out.push(MicroOp::IssueIo {
                        unit,
                        kind: IoKind::Read,
                        page,
                        wait: true,
                        notify: false,
                        log_wb: false,
                    });
                }
                PageOp::UnitWrite { unit, page } => {
                    out.push(self.io_overhead_burst());
                    out.push(MicroOp::IssueIo {
                        unit,
                        kind: IoKind::Write,
                        page,
                        wait: true,
                        notify: false,
                        log_wb: false,
                    });
                }
                PageOp::UnitWriteAsync { unit, page } => {
                    out.push(self.io_overhead_burst());
                    out.push(MicroOp::IssueIo {
                        unit,
                        kind: IoKind::Write,
                        page,
                        wait: false,
                        notify: true,
                        log_wb: false,
                    });
                }
            }
        }
        out
    }

    /// Asks the device for its service decision, registers the request and
    /// starts its first stage; returns the request id.  Every I/O — whether
    /// a transaction waits on it or not — goes through here.  `node` is the
    /// computing module whose buffer manager issued the request (buffer
    /// notifications are routed back to it).
    #[allow(clippy::too_many_arguments)]
    fn start_io(
        &mut self,
        node: usize,
        unit: usize,
        kind: IoKind,
        page: PageId,
        waiter: Option<usize>,
        notify: bool,
        log_wb: bool,
    ) -> u32 {
        let decision = self.units[unit].device.request(kind, page);
        let mut io = IoRequest::new(unit, page, decision.foreground, waiter)
            .with_background(decision.background)
            .for_node(node);
        if notify {
            io = io.with_bufmgr_notification();
        }
        if log_wb {
            io = io.with_log_wb();
        }
        let io_id = self.ios.insert(io);
        self.advance_io(io_id);
        io_id
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn op_issue_io(
        &mut self,
        slot: usize,
        unit: usize,
        kind: IoKind,
        page: PageId,
        wait: bool,
        notify: bool,
        log_wb: bool,
    ) -> Flow {
        // I/O is issued by the buffer pool of the *executing* node (the
        // partition owner while a shared-nothing reference runs shipped), so
        // completion notifications must route back to that pool.
        let node = self.exec_node_of(slot);
        // Synchronous reads go through the unit's request scheduler when one
        // is configured; writes (and the notify/log_wb bookkeeping that only
        // writes carry) keep the direct FCFS path.
        if kind == IoKind::Read && wait && self.units[unit].scheduler.is_some() {
            debug_assert!(
                !notify && !log_wb,
                "scheduled reads carry no write bookkeeping"
            );
            self.txs.tx_mut(slot).state = TxState::WaitingIo;
            let outcome = self.units[unit]
                .scheduler
                .as_mut()
                .expect("checked above")
                .submit(page, slot);
            match outcome {
                SubmitOutcome::JoinedInflight(io_id) => {
                    // The page is already being read: park this waiter on the
                    // in-flight request's completion fan-out.
                    self.ios
                        .get_mut(io_id)
                        .expect("scheduler tracks only live requests")
                        .group_waiters
                        .push(slot);
                }
                SubmitOutcome::Queued => self.drain_scheduler(node, unit),
            }
            return Flow::Blocked;
        }
        self.start_io(node, unit, kind, page, wait.then_some(slot), notify, log_wb);
        if wait {
            self.txs.tx_mut(slot).state = TxState::WaitingIo;
            Flow::Blocked
        } else {
            Flow::Continue
        }
    }

    /// Dispatches every batch the unit's scheduler is willing to release
    /// (one per free disk-server slot).  The batch leader pays the device's
    /// full service decision; each merged member adds only its page
    /// transmission on top — that is the whole point of merging — but the
    /// device model is still asked for a decision *per member page*, so
    /// controller-cache state and per-unit counters evolve exactly as if
    /// the pages had been requested individually.  Background stages
    /// (destages of absorbed victims) are preserved for every member.
    pub(super) fn drain_scheduler(&mut self, node: usize, unit: usize) {
        loop {
            let Some(batch) = self.units[unit]
                .scheduler
                .as_mut()
                .and_then(|s| s.next_batch())
            else {
                return;
            };
            let mut stages = Vec::new();
            let mut background = Vec::new();
            for (i, &page) in batch.pages.iter().enumerate() {
                let decision = self.units[unit].device.request(IoKind::Read, page);
                if i == 0 {
                    stages = decision.foreground;
                    background = decision.background;
                } else {
                    stages.push(ServiceStage::Transmission(decision.transmission_time()));
                    background.extend(decision.background);
                }
            }
            let mut io = IoRequest::new(unit, batch.pages[0], stages, None)
                .with_background(background)
                .for_node(node)
                .into_scheduled();
            io.group_waiters = batch.waiters.clone();
            let io_id = self.ios.insert(io);
            self.units[unit]
                .scheduler
                .as_mut()
                .expect("scheduler present while draining")
                .register_inflight(io_id, &batch);
            self.advance_io(io_id);
        }
    }

    /// Issues an I/O that is not tied to a single waiting transaction (used
    /// for checkpoint log writes); returns the request id.
    pub(super) fn issue_detached_io(&mut self, unit: usize, kind: IoKind, page: PageId) -> u32 {
        self.start_io(0, unit, kind, page, None, false, false)
    }

    /// Issues the shared log write of a group-commit batch with its member
    /// slots already parked on it.  Attaching the waiters *before* the first
    /// stage runs means even a synchronously completing request wakes the
    /// batch correctly (a late attach could alias a recycled arena slot).
    pub(super) fn issue_group_commit_io(&mut self, unit: usize, page: PageId, members: Vec<usize>) {
        let decision = self.units[unit].device.request(IoKind::Write, page);
        let mut io = IoRequest::new(unit, page, decision.foreground, None)
            .with_background(decision.background);
        io.group_waiters = members;
        let io_id = self.ios.insert(io);
        self.advance_io(io_id);
    }

    pub(super) fn advance_io(&mut self, io_id: u32) {
        let now = self.queue.now();
        let (unit, next_stage) = {
            let io = self.ios.get_mut(io_id).expect("live io request");
            (io.unit, io.pop_stage())
        };
        match next_stage {
            None => self.complete_io(io_id),
            Some(ServiceStage::Controller(t)) => {
                {
                    let io = self.ios.get_mut(io_id).expect("live io request");
                    io.held = Some(HeldResource::Controller);
                    io.pending_service = t;
                }
                if self.units[unit].controllers.acquire(now, u64::from(io_id)) == Acquire::Granted {
                    self.sched_in(t, Ev::IoStage(io_id));
                }
            }
            Some(ServiceStage::Disk(t)) => {
                {
                    let io = self.ios.get_mut(io_id).expect("live io request");
                    io.held = Some(HeldResource::Disk);
                    io.pending_service = t;
                }
                if self.units[unit].disks.acquire(now, u64::from(io_id)) == Acquire::Granted {
                    self.sched_in(t, Ev::IoStage(io_id));
                }
            }
            Some(ServiceStage::Transmission(t)) => {
                self.ios.get_mut(io_id).expect("live io request").held = None;
                self.sched_in(t, Ev::IoStage(io_id));
            }
        }
    }

    pub(super) fn handle_io_stage(&mut self, io_id: u32) {
        let now = self.queue.now();
        let held_info = self.ios.get(io_id).map(|io| (io.held, io.unit));
        if let Some((Some(held), unit)) = held_info {
            let granted = match held {
                HeldResource::Controller => self.units[unit].controllers.release(now),
                HeldResource::Disk => self.units[unit].disks.release(now),
            };
            if let Some(next_io) = granted {
                let next_io = next_io as u32;
                let service = self
                    .ios
                    .get(next_io)
                    .map(|io| io.pending_service)
                    .unwrap_or(0.0);
                self.sched_in(service, Ev::IoStage(next_io));
            }
            if let Some(io) = self.ios.get_mut(io_id) {
                io.held = None;
            }
        }
        self.advance_io(io_id);
    }

    fn complete_io(&mut self, io_id: u32) {
        let io = self.ios.remove(io_id);
        if io.is_destage {
            self.units[io.unit].device.destage_complete(io.page);
        }
        if io.notify_bufmgr {
            self.nodes[io.node].bufmgr.async_write_complete(io.page);
        }
        if io.log_wb {
            // Every completion must match an earlier occupancy increment in
            // `op_log_write`; an underflow means the write-buffer accounting
            // is broken and must surface instead of being clamped away.
            debug_assert!(
                self.log_wb_pending > 0,
                "NVEM log write-buffer occupancy underflow: completion without reservation"
            );
            if let Some(next) = self.log_wb_pending.checked_sub(1) {
                self.log_wb_pending = next;
            }
        }
        // A completed checkpoint log write contributes its measured latency
        // (including queueing) to the checkpoint overhead.
        if let Some(issued) = io.checkpoint_issued_at {
            if let Some(rec) = self.recovery.as_mut() {
                rec.checkpoint_overhead_ms += self.queue.now() - issued;
            }
        }
        if !io.background.is_empty() {
            let bg = IoRequest::new(io.unit, io.page, io.background, None)
                .for_node(io.node)
                .into_destage();
            let bg_id = self.ios.insert(bg);
            self.advance_io(bg_id);
        }
        // A scheduler-dispatched batch frees its service slot, admits any
        // speculative member pages into the issuing node's buffer pool and
        // lets the scheduler release the next batch.
        if io.scheduled {
            let done = self.units[io.unit]
                .scheduler
                .as_mut()
                .and_then(|s| s.complete(io_id));
            if let Some(done) = done {
                for (page, (node, partition)) in done.prefetched {
                    self.finish_prefetch(node, partition, page);
                }
            }
            self.drain_scheduler(io.node, io.unit);
        }
        if let Some(slot) = io.waiter {
            if let Some(tx) = self.txs.get_mut(slot) {
                tx.state = TxState::Ready;
                self.ready.push_back(slot);
            }
        }
        // Wake a whole group-commit batch parked on this log write.
        if !io.group_waiters.is_empty() {
            self.wake_slots(&io.group_waiters);
        }
    }

    /// Routes a completed speculative read into the issuing node's buffer
    /// pool.  Admission never evicts dirty pages
    /// ([`bufmgr::BufferManager::admit_prefetched`]); under an active
    /// coherence protocol an admitted copy is registered in the
    /// page → holders index and version-stamped exactly like a demand
    /// fetch, so later remote commits invalidate it correctly.
    fn finish_prefetch(&mut self, node: usize, partition: usize, page: PageId) {
        let admit = self.nodes[node].bufmgr.admit_prefetched(partition, page);
        if admit != bufmgr::PrefetchAdmit::Admitted {
            return;
        }
        if self.coherence_active() {
            self.note_holder(node, page);
            self.stamp_fetch(node, page);
        }
    }
}
