//! The engine's future event list, over either kernel.
//!
//! [`KernelQueue`] is the one seam between the simulation handlers and the
//! event kernel: the sequential calendar ([`simkernel::EventQueue`], the
//! default and the byte-identity oracle) or the sharded conservative-
//! lookahead kernel ([`simkernel::ShardedEventQueue`], selected by
//! [`crate::config::ParallelismParams::kernel_threads`] `>= 2`).
//!
//! Both variants expose the identical clock / schedule / pop contract —
//! events pop in ascending `(time, seq)` with the same clamp semantics — so
//! the handlers cannot observe which kernel is running; the shard id passed
//! to the schedule calls is routing advice that the sequential kernel
//! ignores (see [`super::Simulation::shard_of`] for the routing rules).

use simkernel::time::SimTime;
use simkernel::{EventQueue, ScheduledEvent, ShardedEventQueue};

use super::Ev;

/// The engine-facing future event list: sequential or sharded.
pub(super) enum KernelQueue {
    /// The sequential calendar queue (kernel_threads <= 1).
    Single(EventQueue<Ev>),
    /// The sharded conservative-lookahead kernel; the coordinator half lives
    /// here, the shard calendars live on the worker threads spawned by
    /// [`super::Simulation::run_events_sharded`].
    Sharded(ShardedEventQueue<Ev>),
}

impl KernelQueue {
    /// Current simulated time (the time of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        match self {
            KernelQueue::Single(q) => q.now(),
            KernelQueue::Sharded(q) => q.now(),
        }
    }

    /// Schedules `payload` at absolute time `at` on `shard` (ignored by the
    /// sequential kernel).
    #[inline]
    pub fn schedule_at(&mut self, shard: usize, at: SimTime, payload: Ev) {
        match self {
            KernelQueue::Single(q) => q.schedule_at(at, payload),
            KernelQueue::Sharded(q) => q.schedule_at(shard, at, payload),
        }
    }

    /// Schedules `payload` after `delay` ms (relative to the global clock)
    /// on `shard` (ignored by the sequential kernel).
    #[inline]
    pub fn schedule_in(&mut self, shard: usize, delay: SimTime, payload: Ev) {
        match self {
            KernelQueue::Single(q) => q.schedule_in(delay, payload),
            KernelQueue::Sharded(q) => q.schedule_in(shard, delay, payload),
        }
    }

    /// Pops the globally next event and advances the clock.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent<Ev>> {
        match self {
            KernelQueue::Single(q) => q.pop(),
            KernelQueue::Sharded(q) => q.pop(),
        }
    }

    /// Total number of events ever popped (the event count of a finished
    /// run).
    #[inline]
    pub fn popped_total(&self) -> u64 {
        match self {
            KernelQueue::Single(q) => q.popped_total(),
            KernelQueue::Sharded(q) => q.popped_total(),
        }
    }

    /// Synchronization rounds run by the sharded kernel (0 for the
    /// sequential kernel); diagnostic.
    #[inline]
    pub fn rounds_total(&self) -> u64 {
        match self {
            KernelQueue::Single(_) => 0,
            KernelQueue::Sharded(q) => q.rounds_total(),
        }
    }
}
