//! Slab arenas for the engine's hot per-event state.
//!
//! The seed engine kept in-flight I/O requests in a `HashMap<u64, IoRequest>`
//! and re-allocated a fresh [`Transaction`] (with its micro-operation deque)
//! for every arrival.  Both sit on the per-event hot path, so this module
//! replaces them with dense slab arenas:
//!
//! * [`IoArena`] — in-flight I/O requests under stable `u32` ids: the id *is*
//!   the slot index, so the per-event lookups in the I/O path are plain `Vec`
//!   indexing.  Freed slots are recycled LIFO.
//! * [`TxArena`] — transaction slots.  A completed transaction's carcass
//!   stays in place and is *reused* by the next arrival on the slot, so its
//!   micro-operation deque's capacity survives and steady-state arrivals
//!   allocate nothing.
//! * [`TemplateTable`] — the shared transaction-template table.  The SOURCE
//!   interns each generated template once; the input queue and the
//!   transaction slots hold `u32` indices instead of owning (and moving)
//!   reference strings, and per-template derived data (update flag, distinct
//!   written pages) is computed exactly once instead of at every commit.
//!
//! Slot recycling is deterministic (LIFO free lists, no hashing), and no
//! arena id ever reaches the lock manager — the lock manager keeps the
//! globally unique transaction ids whose numeric order defines its wake-up
//! order.

use dbmodel::{PageId, PartitionMap, TransactionTemplate};
use simkernel::time::SimTime;

use super::iorequest::IoRequest;
use super::transaction::Transaction;

/// In-flight I/O requests under stable `u32` ids.
///
/// An id stays valid until the request completes ([`IoArena::remove`]); every
/// live request is referenced by exactly one pending event *or* one resource
/// queue position, so recycled slots can never be reached through a stale id.
#[derive(Default)]
pub(crate) struct IoArena {
    slots: Vec<Option<IoRequest>>,
    free: Vec<u32>,
}

impl IoArena {
    /// Registers a request and returns its id.
    pub fn insert(&mut self, io: IoRequest) -> u32 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(io);
                id
            }
            None => {
                self.slots.push(Some(io));
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// The live request `id`, if any.
    #[inline]
    pub fn get(&self, id: u32) -> Option<&IoRequest> {
        self.slots.get(id as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the live request `id`, if any.
    #[inline]
    pub fn get_mut(&mut self, id: u32) -> Option<&mut IoRequest> {
        self.slots.get_mut(id as usize).and_then(Option::as_mut)
    }

    /// Completes request `id`, freeing its slot for reuse.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn remove(&mut self, id: u32) -> IoRequest {
        let io = self.slots[id as usize].take().expect("live io request");
        self.free.push(id);
        io
    }

    /// Iterates the live requests (diagnostics and warm-up resets).
    #[cfg(test)]
    pub fn live(&self) -> impl Iterator<Item = &IoRequest> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates the live requests mutably (end-of-warm-up reset).
    pub fn live_mut(&mut self) -> impl Iterator<Item = &mut IoRequest> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }
}

/// Transaction slots with carcass reuse.
///
/// Mirrors the seed's `Vec<Option<Transaction>> + free_slots + slot_nodes`
/// triple, but a released slot keeps its [`Transaction`] in place so the next
/// arrival on the slot reuses the allocation.  Because the carcass survives
/// release, its `node` field doubles as the seed's `slot_nodes` side table:
/// late events can still route to the right node's resources.
#[derive(Default)]
pub(crate) struct TxArena {
    slots: Vec<Transaction>,
    live: Vec<bool>,
    free: Vec<usize>,
}

impl TxArena {
    /// The live transaction in `slot`, or `None` for freed/unknown slots
    /// (late events referencing a completed transaction).
    #[cfg(test)]
    pub fn get(&self, slot: usize) -> Option<&Transaction> {
        self.live
            .get(slot)
            .copied()
            .unwrap_or(false)
            .then(|| &self.slots[slot])
    }

    /// Mutable access to the live transaction in `slot`, or `None`.
    #[inline]
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut Transaction> {
        if self.live.get(slot).copied().unwrap_or(false) {
            Some(&mut self.slots[slot])
        } else {
            None
        }
    }

    /// The live transaction in `slot`.
    ///
    /// # Panics
    /// Panics if the slot is free.
    #[inline]
    pub fn tx(&self, slot: usize) -> &Transaction {
        assert!(self.live[slot], "live transaction");
        &self.slots[slot]
    }

    /// Mutable access to the live transaction in `slot`.
    ///
    /// # Panics
    /// Panics if the slot is free.
    #[inline]
    pub fn tx_mut(&mut self, slot: usize) -> &mut Transaction {
        assert!(self.live[slot], "live transaction");
        &mut self.slots[slot]
    }

    /// True if `slot` holds a live transaction.
    #[inline]
    pub fn is_live(&self, slot: usize) -> bool {
        self.live.get(slot).copied().unwrap_or(false)
    }

    /// The node that last owned `slot` (valid even after release: the
    /// carcass stays in place and its `node` field is only rewritten at the
    /// next activation).
    #[cfg(test)]
    pub fn node_of(&self, slot: usize) -> usize {
        self.slots[slot].node
    }

    /// The node `slot`'s transaction currently executes at (the function-ship
    /// target while a shared-nothing call is outstanding; equal to
    /// [`TxArena::node_of`] otherwise).  Like `node_of`, valid after release.
    #[inline]
    pub fn exec_node_of(&self, slot: usize) -> usize {
        self.slots[slot].exec_node
    }

    /// Admits a transaction, reusing a freed slot (and its carcass's
    /// allocations) when one exists.  Returns the slot.
    pub fn activate(&mut self, id: u64, node: usize, template: u32, arrival: SimTime) -> usize {
        match self.free.pop() {
            Some(slot) => {
                debug_assert!(!self.live[slot]);
                self.slots[slot].reuse(id, node, template, arrival);
                self.live[slot] = true;
                slot
            }
            None => {
                self.slots
                    .push(Transaction::new(id, node, template, arrival));
                self.live.push(true);
                self.slots.len() - 1
            }
        }
    }

    /// Releases `slot` for reuse.  The carcass stays in place.
    pub fn release(&mut self, slot: usize) {
        debug_assert!(self.live[slot]);
        self.live[slot] = false;
        self.free.push(slot);
    }
}

/// One interned transaction template with its derived per-template data.
pub(crate) struct TemplateEntry {
    /// The reference string.
    pub template: TransactionTemplate,
    /// Distinct `(partition, page)` pairs written, sorted; computed once at
    /// interning instead of at every FORCE / invalidation / redo use.
    pub written_pages: Vec<(usize, PageId)>,
    /// Shared nothing: owning node per object reference (parallel to
    /// `template.refs`), hashed once at interning instead of at every
    /// execution (and re-execution after a deadlock restart).  Empty under
    /// data sharing.
    pub ref_owners: Vec<usize>,
    /// Shared nothing: distinct owners of `written_pages` (sorted) — the
    /// candidate participants of the commit exchange.  Empty under data
    /// sharing.
    pub written_owners: Vec<usize>,
    /// Whether any reference writes.
    pub is_update: bool,
}

/// The shared transaction-template table.
#[derive(Default)]
pub(crate) struct TemplateTable {
    entries: Vec<TemplateEntry>,
    free: Vec<u32>,
}

impl TemplateTable {
    /// Interns a generated template, precomputing its derived data (written
    /// pages, and — when a shared-nothing `map` is given — the owner per
    /// reference and the distinct owners of the written pages).  Returns
    /// the table index; freed entries (and their derived-data buffers) are
    /// reused.
    pub fn insert(&mut self, template: TransactionTemplate, map: Option<&PartitionMap>) -> u32 {
        match self.free.pop() {
            Some(id) => {
                let entry = &mut self.entries[id as usize];
                entry.template = template;
                entry.is_update = entry.template.is_update();
                Self::collect_written_pages(&entry.template, &mut entry.written_pages);
                Self::collect_owners(
                    &entry.template,
                    &entry.written_pages,
                    map,
                    &mut entry.ref_owners,
                    &mut entry.written_owners,
                );
                id
            }
            None => {
                let is_update = template.is_update();
                let mut written_pages = Vec::new();
                Self::collect_written_pages(&template, &mut written_pages);
                let mut ref_owners = Vec::new();
                let mut written_owners = Vec::new();
                Self::collect_owners(
                    &template,
                    &written_pages,
                    map,
                    &mut ref_owners,
                    &mut written_owners,
                );
                self.entries.push(TemplateEntry {
                    template,
                    written_pages,
                    ref_owners,
                    written_owners,
                    is_update,
                });
                (self.entries.len() - 1) as u32
            }
        }
    }

    /// The interned entry `id`.
    #[inline]
    pub fn entry(&self, id: u32) -> &TemplateEntry {
        &self.entries[id as usize]
    }

    /// Releases entry `id` for reuse.
    pub fn free(&mut self, id: u32) {
        self.free.push(id);
    }

    fn collect_written_pages(template: &TransactionTemplate, out: &mut Vec<(usize, PageId)>) {
        out.clear();
        out.extend(
            template
                .refs
                .iter()
                .filter(|r| r.mode.is_write())
                .map(|r| (r.partition, r.page)),
        );
        out.sort_unstable_by_key(|(p, page)| (*p, page.0));
        out.dedup();
    }

    fn collect_owners(
        template: &TransactionTemplate,
        written_pages: &[(usize, PageId)],
        map: Option<&PartitionMap>,
        ref_owners: &mut Vec<usize>,
        written_owners: &mut Vec<usize>,
    ) {
        ref_owners.clear();
        written_owners.clear();
        let Some(map) = map else {
            return;
        };
        ref_owners.extend(template.refs.iter().map(|r| map.owner_of(r.page)));
        written_owners.extend(written_pages.iter().map(|&(_, page)| map.owner_of(page)));
        written_owners.sort_unstable();
        written_owners.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{AccessMode, ObjectId, ObjectRef};
    use storage::ServiceStage;

    #[test]
    fn io_arena_recycles_slots_lifo() {
        let mut arena = IoArena::default();
        let mk = || IoRequest::new(0, PageId(1), vec![ServiceStage::Disk(1.0)], None);
        let a = arena.insert(mk());
        let b = arena.insert(mk());
        assert_ne!(a, b);
        arena.remove(a);
        assert!(arena.get(a).is_none());
        assert!(arena.get(b).is_some());
        let c = arena.insert(mk());
        assert_eq!(c, a, "freed slot must be reused LIFO");
        assert_eq!(arena.live().count(), 2);
    }

    #[test]
    fn tx_arena_reuses_carcasses_and_remembers_nodes() {
        let mut arena = TxArena::default();
        let s0 = arena.activate(1, 2, 0, 0.0);
        assert!(arena.is_live(s0));
        assert_eq!(arena.node_of(s0), 2);
        arena
            .tx_mut(s0)
            .micro
            .push_back(super::super::transaction::MicroOp::Complete);
        arena.release(s0);
        assert!(!arena.is_live(s0));
        assert!(arena.get(s0).is_none());
        // The node routing survives release (late events).
        assert_eq!(arena.node_of(s0), 2);
        let s1 = arena.activate(2, 0, 3, 5.0);
        assert_eq!(s1, s0, "carcass must be reused");
        let tx = arena.tx(s1);
        assert_eq!((tx.id, tx.node, tx.template, tx.arrival), (2, 0, 3, 5.0));
        assert!(tx.micro.is_empty(), "reuse must clear the micro queue");
    }

    #[test]
    fn template_table_precomputes_written_pages() {
        let template = TransactionTemplate {
            tx_type: 0,
            refs: vec![
                ObjectRef {
                    partition: 1,
                    page: PageId(5),
                    object: ObjectId(50),
                    mode: AccessMode::Write,
                },
                ObjectRef {
                    partition: 0,
                    page: PageId(9),
                    object: ObjectId(90),
                    mode: AccessMode::Read,
                },
                ObjectRef {
                    partition: 1,
                    page: PageId(5),
                    object: ObjectId(51),
                    mode: AccessMode::Write,
                },
            ],
        };
        let mut table = TemplateTable::default();
        let id = table.insert(template, None);
        let entry = table.entry(id);
        assert!(entry.is_update);
        assert_eq!(entry.written_pages, vec![(1, PageId(5))]);
        assert!(entry.ref_owners.is_empty(), "no owners under data sharing");
        assert!(entry.written_owners.is_empty());
        table.free(id);
        let read_only = TransactionTemplate {
            tx_type: 1,
            refs: vec![ObjectRef {
                partition: 0,
                page: PageId(1),
                object: ObjectId(1),
                mode: AccessMode::Read,
            }],
        };
        let id2 = table.insert(read_only, None);
        assert_eq!(id2, id, "freed entry must be reused");
        let entry = table.entry(id2);
        assert!(!entry.is_update);
        assert!(entry.written_pages.is_empty());
    }

    #[test]
    fn template_table_interns_shared_nothing_owners() {
        let mk_ref = |page: u64, write: bool| ObjectRef {
            partition: 0,
            page: PageId(page),
            object: ObjectId(page),
            mode: if write {
                AccessMode::Write
            } else {
                AccessMode::Read
            },
        };
        // Range map over 4 pages × 2 nodes: pages 0-1 → node 0, 2-3 → node 1.
        let map = PartitionMap::range(2, 1, 4);
        let template = TransactionTemplate {
            tx_type: 0,
            refs: vec![mk_ref(0, false), mk_ref(2, true), mk_ref(3, true)],
        };
        let mut table = TemplateTable::default();
        let id = table.insert(template, Some(&map));
        let entry = table.entry(id);
        assert_eq!(entry.ref_owners, vec![0, 1, 1]);
        assert_eq!(entry.written_owners, vec![1], "distinct owners, deduped");
        // Recycled entries recompute (and clear) the owner buffers.
        table.free(id);
        let id2 = table.insert(
            TransactionTemplate {
                tx_type: 0,
                refs: vec![mk_ref(1, false)],
            },
            None,
        );
        assert_eq!(id2, id);
        assert!(table.entry(id2).ref_owners.is_empty());
        assert!(table.entry(id2).written_owners.is_empty());
    }
}
