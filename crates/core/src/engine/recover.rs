//! The event-driven side of the crash-recovery subsystem: redo-record
//! bookkeeping at commit, fuzzy checkpoints, and the simulated
//! crash-and-restart pass.
//!
//! The pure data structures (redo log, LSNs, checkpoint accounting) live in
//! [`crate::recovery`]; the dirty-page tables live with the per-node buffer
//! managers ([`bufmgr::DirtyPageTable`]).  Everything here is inert unless
//! the recovery subsystem is active (checkpointing enabled via
//! [`crate::config::RecoveryParams`], and/or a crash requested via
//! [`Simulation::simulate_crash_at`]) — an inactive run performs no redo
//! bookkeeping at all and is bit-for-bit identical to an engine without the
//! subsystem.
//!
//! **Restart model.**  After a crash the system is empty: no transactions,
//! cold buffers, a cleared lock table.  Restart is therefore modelled as a
//! single sequential pass — there is no queueing competition — that pays
//!
//! 1. one read per log page of the redo tail (everything after the last
//!    checkpoint's redo boundary) against the configured log device, or at
//!    NVEM speed when the tail is NVEM-resident
//!    ([`crate::config::LogTruncation`]),
//! 2. a redo-apply CPU burst per record whose update was actually lost
//!    (present in a dirty-page table at the crash), and
//! 3. one read of each lost page from its home location — through the same
//!    [`storage::StorageDevice`] models the steady-state run uses, with the
//!    reads prefetched in parallel across each unit's disk servers (the scan
//!    knows all needed pages in advance; only the log itself is inherently
//!    sequential) and planned by the same scheduler policy as steady-state
//!    reads ([`storage::scheduler::plan_reads`]: with coalescing enabled,
//!    adjacent redo pages share one seek) — plus a lock re-acquisition
//!    covering the redone pages.

use std::collections::HashMap;

use dbmodel::{AccessMode, ObjectId, ObjectRef, PageId, WorkloadGenerator};
use simkernel::time::instr_time;
use storage::IoKind;

use bufmgr::PageLocation;

use crate::config::{LogAllocation, LogTruncation};
use crate::metrics::RestartReport;
use crate::recovery::{Lsn, RedoRecord};

use super::{Ev, Simulation};

/// Transaction id the restart pass locks under (real ids start at 1).
const RESTART_TX: u64 = 0;

impl<W: WorkloadGenerator> Simulation<W> {
    /// Appends one redo record per page written by the committing
    /// transaction in `slot` and registers the pages in the owning node's
    /// dirty-page table.  No-op while the recovery subsystem is inactive.
    ///
    /// Called at commit completion, when the commit log record is durable —
    /// a crash never replays a transaction whose log write was still in
    /// flight.  The dirty-page table skips pages whose content is already
    /// non-volatile (FORCE writes ran just before; an eviction may have
    /// written the page back while the log write was in flight), so under
    /// FORCE restart has nothing to redo.
    pub(super) fn record_redo(&mut self, slot: usize) {
        if self.recovery.is_none() {
            return;
        }
        let (node, template) = {
            let tx = self.txs.tx(slot);
            (tx.node, tx.template)
        };
        let rec = self.recovery.as_mut().expect("recovery runtime");
        for &(partition, page) in &self.templates.entry(template).written_pages {
            let lsn = rec.redo.append(node, partition, page);
            self.nodes[node]
                .bufmgr
                .note_committed_update(partition, page, lsn);
            self.nodes[node].redo_records += 1;
        }
    }

    /// Takes a fuzzy checkpoint: advances the redo boundary to the oldest
    /// committed-but-unpropagated update over all nodes, truncates the redo
    /// log before it and writes one checkpoint record to the log allocation
    /// (contending with commit log writes).  Dirty pages are *not* flushed.
    pub(super) fn handle_checkpoint(&mut self) {
        let now = self.queue.now();
        let min_rec_lsn: Option<Lsn> = self
            .nodes
            .iter()
            .filter_map(|n| n.bufmgr.dirty_page_table().min_rec_lsn())
            .min();
        {
            let Some(rec) = self.recovery.as_mut() else {
                return;
            };
            let redo_start = min_rec_lsn.unwrap_or_else(|| rec.redo.next_lsn());
            rec.redo_start_lsn = redo_start;
            rec.records_truncated += rec.redo.truncate_before(redo_start);
            rec.checkpoints_taken += 1;
        }
        // The checkpoint record itself: a synchronous NVEM store for
        // NVEM-resident logs and for logs going through the NVEM write
        // buffer (the record is durable the moment it reaches the
        // non-volatile buffer, exactly like an absorbed commit log write),
        // otherwise a real (detached) log-device write whose measured
        // latency becomes checkpoint overhead on completion.
        match self.config.log_allocation {
            LogAllocation::Nvem | LogAllocation::DiskUnitViaNvemWriteBuffer(_) => {
                let cost = self.config.nvem.synchronous_cost(self.config.cm.mips);
                let rec = self.recovery.as_mut().expect("recovery runtime");
                rec.checkpoint_overhead_ms += cost;
            }
            LogAllocation::DiskUnit(unit) => {
                let page = self.next_log_page();
                let io_id = self.issue_detached_io(unit, IoKind::Write, page);
                // The request carries its issue time itself; completion
                // charges the measured latency as checkpoint overhead.
                if let Some(io) = self.ios.get_mut(io_id) {
                    io.checkpoint_issued_at = Some(now);
                }
            }
        }
        let next = now + self.config.recovery.checkpoint_interval_ms;
        let horizon = self.crash_at.unwrap_or(self.end_time);
        if next < horizon {
            self.sched_at(next, Ev::Checkpoint);
        }
    }

    /// The crash happened: discard all volatile state and compute the redo
    /// pass.  Returns the restart report for [`super::Simulation::run`].
    pub(super) fn perform_restart(&mut self) -> RestartReport {
        let crash_time = self.queue.now();
        let cm = self.config.cm;
        let nvem_cost = self.config.nvem.synchronous_cost(cm.mips);
        let io_cpu = instr_time(cm.instr_io, cm.mips);
        let apply_cpu = instr_time(cm.instr_or, cm.mips);

        // Freeze the steady-state device and lock statistics before the redo
        // pass drives the same models: the report's measurement-interval
        // sections must not include restart work.
        self.crash_stats = Some(super::CrashStatsSnapshot {
            devices: self.units.iter().map(|u| u.device.stats()).collect(),
            scheduler: self
                .units
                .iter()
                .map(|u| u.scheduler.as_ref().map(|s| s.stats()))
                .collect(),
            locks: self.lockmgr.stats(),
            global_locks: self.lockmgr.global_stats(),
        });

        // Every lock held by an in-flight transaction dies with the system.
        let locks_released_at_crash = self.lockmgr.crash_reset();

        // Union of the per-node dirty-page tables: the pages whose committed
        // updates existed only in volatile main memory.
        let mut lost: HashMap<PageId, Lsn> = HashMap::new();
        for node in &self.nodes {
            // analyzer: allow(hash-iter): folded into a per-page min, order-independent
            for (page, lsn) in node.bufmgr.dirty_page_table().iter() {
                lost.entry(page)
                    .and_modify(|l| *l = (*l).min(lsn))
                    .or_insert(lsn);
            }
        }
        let dirty_pages_at_crash = lost.len() as u64;

        // The redo tail: everything after the last checkpoint's boundary.
        let (records, log_pages_read) = {
            let rec = self.recovery.as_ref().expect("crash needs recovery state");
            let records: Vec<RedoRecord> = rec
                .redo
                .records_since(rec.redo_start_lsn)
                .copied()
                .collect();
            let pages = rec.redo.pages_for(records.len() as u64);
            (records, pages)
        };
        let redo_records = records.len() as u64;

        let mut restart_ms = 0.0;

        // 1. Read the log tail, sequentially (restart is the only activity).
        //    An NVEM-resident tail is read at NVEM speed; a device-resident
        //    tail pays the device model per page.  The most recently written
        //    log page ids sit just above `next_log_page`, so a cached log
        //    device sees the same recency the steady-state run produced.
        let tail_on_nvem = self.config.recovery.log_truncation == LogTruncation::NvemResident
            || self.config.log_allocation == LogAllocation::Nvem;
        if tail_on_nvem {
            restart_ms += nvem_cost * log_pages_read as f64;
        } else if let LogAllocation::DiskUnit(unit)
        | LogAllocation::DiskUnitViaNvemWriteBuffer(unit) = self.config.log_allocation
        {
            for i in 0..log_pages_read {
                let page = PageId(self.next_log_page.wrapping_add(1 + i));
                restart_ms += io_cpu
                    + self.units[unit]
                        .device
                        .request(IoKind::Read, page)
                        .foreground_service_time();
            }
        }

        // 2./3. Replay: records whose page carries a lost committed update
        // (recovery LSN at or below the record's LSN) are applied; the page
        // itself is re-read once from its home location.
        let is_lost = |r: &RedoRecord| lost.get(&r.page).is_some_and(|&rec_lsn| r.lsn >= rec_lsn);
        let applied_records = records.iter().filter(|r| is_lost(r)).count() as u64;
        restart_ms += apply_cpu * applied_records as f64;

        let mut redo_pages: Vec<(usize, PageId)> = records
            .iter()
            .filter(|r| is_lost(r))
            .map(|r| (r.partition, r.page))
            .collect();
        redo_pages.sort_unstable_by_key(|(partition, page)| (*partition, page.0));
        redo_pages.dedup();

        // Unlike the log (read sequentially in LSN order), the page re-reads
        // are known in advance from the scan and prefetch in parallel across
        // each unit's disk servers: the elapsed time per unit is the summed
        // service time divided by its disk count.  The per-I/O CPU overhead
        // stays serial (one restart CPU drives the redo pass).  The service
        // time itself comes from the shared scheduler planning
        // ([`storage::scheduler::plan_reads`]): without coalescing it is the
        // plain per-page sum the restart pass always paid, with coalescing
        // adjacent redo pages share one seek exactly like steady-state reads.
        let mut data_pages_read = 0u64;
        let mut unit_pages: Vec<Vec<PageId>> = vec![Vec::new(); self.units.len()];
        for &(partition, page) in &redo_pages {
            match self.config.buffer.policy(partition).location {
                // Main-memory-resident pages are rebuilt from the log alone.
                PageLocation::MainMemoryResident => {}
                PageLocation::NvemResident => {
                    restart_ms += nvem_cost;
                    data_pages_read += 1;
                }
                PageLocation::DiskUnit(unit) => {
                    restart_ms += io_cpu;
                    unit_pages[unit].push(page);
                    data_pages_read += 1;
                }
            }
        }
        for (unit, pages) in unit_pages.iter().enumerate() {
            if pages.is_empty() {
                continue;
            }
            let service = storage::scheduler::plan_reads(
                &self.config.io_scheduler,
                self.units[unit].device.as_mut(),
                pages,
            );
            restart_ms += service / self.config.devices[unit].num_disks() as f64;
        }

        // 4. Re-acquire (and afterwards release) the locks covering the
        // redone pages through the global lock service, so new work admitted
        // during a real restart could not observe half-replayed pages.
        let mut locks_reacquired = 0u64;
        for &(partition, page) in &redo_pages {
            let obj = ObjectRef {
                partition,
                page,
                object: ObjectId(page.0),
                mode: AccessMode::Write,
            };
            if self.lockmgr.needs_lock(&obj) {
                let home = self.lockmgr.home_node();
                let _ = self.lockmgr.acquire(home, RESTART_TX, &obj);
                locks_reacquired += 1;
            }
        }
        let woken = self.lockmgr.release_all(RESTART_TX);
        debug_assert!(woken.is_empty(), "no live transaction can wait at restart");

        RestartReport {
            crash_time_ms: crash_time,
            restart_ms,
            redo_records,
            log_pages_read,
            data_pages_read,
            dirty_pages_at_crash,
            locks_released_at_crash,
            locks_reacquired,
        }
    }
}
