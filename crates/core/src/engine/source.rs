//! The SOURCE: transaction arrivals and MPL admission control.
//!
//! Transactions arrive in an open Poisson stream; at most `cm.mpl`
//! transactions are active at once and excess arrivals wait in the input
//! queue (admission control).  A slot freed at commit immediately admits the
//! oldest waiting transaction.

use dbmodel::{TransactionTemplate, WorkloadGenerator};
use simkernel::time::{instr_time, interarrival_ms, SimTime};

use super::transaction::{MicroOp, Transaction};
use super::{Ev, Simulation};

impl<W: WorkloadGenerator> Simulation<W> {
    pub(super) fn handle_arrival(&mut self) {
        let now = self.queue.now();
        if self.stop_arrivals {
            return;
        }
        // Schedule the next arrival of the Poisson process.
        let gap = self
            .arrival_rng
            .exponential(interarrival_ms(self.config.arrival_rate_tps));
        if now + gap < self.end_time {
            self.queue.schedule_in(gap, Ev::Arrival);
        }
        // Generate the transaction.
        match self.workload.next_transaction(&mut self.workload_rng) {
            Some(template) => {
                if self.active_count < self.config.cm.mpl {
                    self.activate(template, now);
                } else {
                    self.input_queue.push_back((template, now));
                    self.inputq_tw.record(now, self.input_queue.len() as f64);
                }
            }
            None => {
                // Trace exhausted (non-cycling replay): no further arrivals.
                self.stop_arrivals = true;
            }
        }
    }

    /// Admits a transaction: assigns a slot, queues its BOT processing and
    /// marks it ready.
    pub(super) fn activate(&mut self, template: TransactionTemplate, arrival: SimTime) {
        let now = self.queue.now();
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let mut tx = Transaction::new(id, template, arrival);
        let bot = instr_time(
            self.service_rng.exponential(self.config.cm.instr_bot),
            self.config.cm.mips,
        );
        tx.micro.push_back(MicroOp::CpuBurst {
            ms: bot,
            nvem: false,
        });
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.txs[s] = Some(tx);
                s
            }
            None => {
                self.txs.push(Some(tx));
                self.txs.len() - 1
            }
        };
        self.id_to_slot.insert(id, slot);
        self.active_count += 1;
        self.active_tw.record(now, self.active_count as f64);
        self.ready.push_back(slot);
    }

    /// Admits the oldest transaction waiting in the input queue, if any
    /// (called when a commit frees an MPL slot).
    pub(super) fn admit_next(&mut self) {
        let now = self.queue.now();
        if let Some((template, arrival)) = self.input_queue.pop_front() {
            self.inputq_tw.record(now, self.input_queue.len() as f64);
            self.activate(template, arrival);
        }
    }
}
