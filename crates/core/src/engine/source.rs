//! The SOURCE: transaction arrivals, node assignment and MPL admission
//! control.
//!
//! Transactions arrive in an open Poisson stream and are assigned to the
//! computing modules round robin (the assignment consumes no randomness, so a
//! single-node run draws the exact same streams as the pre-data-sharing
//! engine).  At most `cm.mpl` transactions are active per node at once and
//! excess arrivals wait in the owning node's input queue (admission control).
//! A slot freed at commit immediately admits the oldest transaction waiting
//! at that node.
//!
//! Generated templates are interned into the engine's shared
//! [`TemplateTable`](super::arena::TemplateTable) on arrival; the input
//! queues and transaction slots only carry `u32` indices.

#[cfg(test)]
use dbmodel::TransactionTemplate;
use dbmodel::WorkloadGenerator;
use simkernel::time::{instr_time, SimTime};

use super::transaction::MicroOp;
use super::{Ev, Simulation};

impl<W: WorkloadGenerator> Simulation<W> {
    pub(super) fn handle_arrival(&mut self) {
        let now = self.queue.now();
        if self.stop_arrivals {
            return;
        }
        // Schedule the next arrival of the (possibly time-varying) Poisson
        // process.
        let gap = self.next_arrival_gap(now);
        if now + gap < self.end_time {
            self.sched_in(gap, Ev::Arrival);
        }
        // Generate the transaction and assign it to a node.
        match self.workload.next_transaction(&mut self.workload_rng) {
            Some(template) => {
                let template = self.templates.insert(template, self.partition_map.as_ref());
                let node = self.next_arrival_node;
                self.next_arrival_node = (self.next_arrival_node + 1) % self.num_nodes();
                if self.nodes[node].active_count < self.config.cm.mpl {
                    self.activate_interned(node, template, now);
                } else {
                    self.nodes[node].input_queue.push_back((template, now));
                    self.total_queued += 1;
                    self.record_input_queue(node, now);
                }
            }
            None => {
                // Trace exhausted (non-cycling replay): no further arrivals.
                self.stop_arrivals = true;
            }
        }
    }

    /// Admits a transaction at `node` from an un-interned template (test and
    /// direct-manipulation entry point).
    #[cfg(test)]
    pub(super) fn activate(
        &mut self,
        node: usize,
        template: TransactionTemplate,
        arrival: SimTime,
    ) {
        let template = self.templates.insert(template, self.partition_map.as_ref());
        self.activate_interned(node, template, arrival);
    }

    /// Admits a transaction at `node`: assigns a slot (reusing a completed
    /// transaction's carcass when one is free), queues its BOT processing and
    /// marks it ready.
    pub(super) fn activate_interned(&mut self, node: usize, template: u32, arrival: SimTime) {
        let now = self.queue.now();
        let id = self.next_tx_id;
        self.next_tx_id += 1;
        let bot = instr_time(
            self.service_rng.exponential(self.config.cm.instr_bot),
            self.config.cm.mips,
        );
        let slot = self.txs.activate(id, node, template, arrival);
        self.txs.tx_mut(slot).micro.push_back(MicroOp::CpuBurst {
            ms: bot,
            nvem: false,
        });
        self.id_to_slot.insert(id, slot);
        self.nodes[node].active_count += 1;
        self.total_active += 1;
        self.active_tw.record(now, self.total_active as f64);
        let node_active = self.nodes[node].active_count;
        self.nodes[node].active_tw.record(now, node_active as f64);
        self.ready.push_back(slot);
    }

    /// Admits the oldest transaction waiting in `node`'s input queue, if any
    /// (called when a commit frees an MPL slot on that node).
    pub(super) fn admit_next(&mut self, node: usize) {
        let now = self.queue.now();
        if let Some((template, arrival)) = self.nodes[node].input_queue.pop_front() {
            debug_assert!(self.total_queued > 0, "input-queue counter underflow");
            self.total_queued -= 1;
            self.record_input_queue(node, now);
            self.activate_interned(node, template, arrival);
        }
    }

    /// Records the aggregate and per-node input-queue lengths after a change
    /// at `node`.
    pub(super) fn record_input_queue(&mut self, node: usize, now: SimTime) {
        self.inputq_tw.record(now, self.total_queued as f64);
        let len = self.nodes[node].input_queue.len();
        self.nodes[node].inputq_tw.record(now, len as f64);
    }
}
