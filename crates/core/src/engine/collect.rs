//! Statistics collection: warm-up reset, per-completion recording and the
//! final report (aggregate plus one [`NodeReport`] per computing module).

use dbmodel::WorkloadGenerator;
use simkernel::stats::{Tally, TimeWeighted};
use simkernel::time::SimTime;

use simkernel::sketch::QuantileSketch;

use crate::metrics::{
    DeviceReport, IoSchedulerReport, NodeReport, RecoveryReport, ResponseTimeStats, RestartReport,
    SimulationReport, TailLatencyReport, TxTypeReport,
};

use super::Simulation;

impl<W: WorkloadGenerator> Simulation<W> {
    /// Records the completion of a transaction on `node` (no-op during
    /// warm-up).
    pub(super) fn record_completion(
        &mut self,
        now: SimTime,
        node: usize,
        arrival: SimTime,
        tx_type: usize,
    ) {
        if !self.warmup_done {
            return;
        }
        let resp = now - arrival;
        self.response.record(resp);
        self.response_hist.record(resp);
        let slot = match self.per_type.binary_search_by_key(&tx_type, |(ty, _)| *ty) {
            Ok(i) => i,
            Err(i) => {
                self.per_type.insert(i, (tx_type, Tally::new()));
                i
            }
        };
        self.per_type[slot].1.record(resp);
        self.completed += 1;
        self.nodes[node].response.record(resp);
        self.nodes[node].response_sketch.insert(resp);
        self.nodes[node].completed += 1;
    }

    /// End of the warm-up interval: reset every statistic without touching
    /// the simulation state (buffers, caches, queues keep their contents).
    pub(super) fn end_warmup(&mut self) {
        let now = self.queue.now();
        self.warmup_done = true;
        self.measure_start = now;
        self.response.reset();
        self.response_hist.reset();
        self.per_type.clear();
        self.completed = 0;
        self.aborts = 0;
        self.log_group_writes = 0;
        self.nvem_busy = 0.0;
        for u in &mut self.units {
            u.device.reset_stats();
            u.controllers.reset_stats(now);
            u.disks.reset_stats(now);
            if let Some(s) = u.scheduler.as_mut() {
                s.reset_stats();
            }
        }
        self.lockmgr.reset_stats();
        self.shipping = crate::metrics::ShippingReport::empty(self.nodes.len());
        self.coherence_stats = crate::metrics::CoherenceReport::empty();
        if let Some(rec) = self.recovery.as_mut() {
            rec.reset_stats();
            // Forget the issue stamps of in-flight checkpoint writes: their
            // (partly pre-warm-up) latency must not leak into the measured
            // checkpoint overhead.
            for io in self.ios.live_mut() {
                io.checkpoint_issued_at = None;
            }
        }
        for node in &mut self.nodes {
            node.cpus.reset_stats(now);
            node.bufmgr.reset_stats();
            node.completed = 0;
            node.aborts = 0;
            node.remote_lock_requests = 0;
            node.redo_records = 0;
            node.response.reset();
            node.response_sketch.reset();
            node.active_tw = TimeWeighted::new();
            node.active_tw.record(now, node.active_count as f64);
            node.inputq_tw = TimeWeighted::new();
            node.inputq_tw.record(now, node.input_queue.len() as f64);
        }
        self.active_tw = TimeWeighted::new();
        self.active_tw.record(now, self.total_active as f64);
        self.inputq_tw = TimeWeighted::new();
        self.inputq_tw.record(now, self.total_queued as f64);
    }

    /// Assembles the final report at the end of the run (or at the crash,
    /// in which case `restart` carries the redo-pass result).
    pub(super) fn build_report(mut self, restart: Option<RestartReport>) -> SimulationReport {
        let now = self.queue.now();
        let measured = (now - self.measure_start).max(1e-9);
        self.active_tw.record(now, self.total_active as f64);
        self.inputq_tw.record(now, self.total_queued as f64);

        let response_time = if self.response.count() > 0 {
            ResponseTimeStats {
                count: self.response.count(),
                mean: self.response.mean().unwrap_or(0.0),
                std_dev: self.response.std_dev().unwrap_or(0.0),
                min: self.response.min().unwrap_or(0.0),
                max: self.response.max().unwrap_or(0.0),
                p95: self.response_hist.quantile(0.95).unwrap_or(0.0),
            }
        } else {
            ResponseTimeStats::empty()
        };
        // Kept sorted by type at insertion, so the report order needs no
        // extra sort; only types that completed ever get an entry.
        let per_type: Vec<TxTypeReport> = self
            .per_type
            .iter()
            .map(|(ty, tally)| TxTypeReport {
                tx_type: *ty,
                count: tally.count(),
                mean_response: tally.mean().unwrap_or(0.0),
            })
            .collect();

        // Fold the per-node, per-partition prefetch counters onto the disk
        // unit each partition lives on: the scheduler issued the speculative
        // reads, but whether they paid off is only known at the buffer pools.
        let mut unit_prefetch_hits = vec![0u64; self.units.len()];
        let mut unit_prefetch_wasted = vec![0u64; self.units.len()];
        if self.config.io_scheduler.enabled() {
            for node in &self.nodes {
                let hits = node.bufmgr.prefetch_hits();
                let wasted = node.bufmgr.prefetch_wasted();
                for partition in 0..hits.len().max(wasted.len()) {
                    let location = self.config.buffer.policy(partition).location;
                    if let bufmgr::PageLocation::DiskUnit(unit) = location {
                        unit_prefetch_hits[unit] += hits.get(partition).copied().unwrap_or(0);
                        unit_prefetch_wasted[unit] += wasted.get(partition).copied().unwrap_or(0);
                    }
                }
            }
        }

        // After a crash, the device and lock counters frozen at the crash
        // instant are reported instead of the live ones, so the restart
        // pass's reads and lock re-acquisitions stay out of the steady-state
        // sections (they appear in the `RestartReport`).
        let crash_stats = self.crash_stats.as_ref();
        let devices = self
            .units
            .iter_mut()
            .enumerate()
            .map(|(i, u)| {
                let dstats = u.disks.stats(now);
                let cstats = u.controllers.stats(now);
                DeviceReport {
                    name: u.device.name().to_string(),
                    disk_utilization: dstats.utilization,
                    controller_utilization: cstats.utilization,
                    avg_disk_wait: dstats.avg_wait,
                    stats: crash_stats
                        .map(|s| s.devices[i])
                        .unwrap_or_else(|| u.device.stats()),
                    scheduler: u.scheduler.as_ref().map(|s| {
                        let stats = crash_stats
                            .and_then(|cs| cs.scheduler[i])
                            .unwrap_or_else(|| s.stats());
                        IoSchedulerReport {
                            mean_queue_depth: stats.mean_queue_depth(),
                            coalesced: stats.coalesced,
                            merged_adjacent: stats.merged_adjacent,
                            prefetch_issued: stats.prefetch_issued,
                            prefetch_hits: unit_prefetch_hits[i],
                            prefetch_wasted: unit_prefetch_wasted[i],
                        }
                    }),
                }
            })
            .collect();

        // Per-node breakdown plus the aggregates derived from it: the
        // aggregate buffer statistics sum over the node-local pools and the
        // aggregate CPU utilization averages the (identically sized) per-node
        // CPU complexes, so a single-node run reports exactly the values of
        // its one node.
        let mut buffer = bufmgr::BufferStats::new(self.config.buffer.partitions.len());
        let mut cpu_utilization = 0.0;
        let mut nodes_report = Vec::with_capacity(self.nodes.len());
        for (id, node) in self.nodes.iter_mut().enumerate() {
            let cpu_stats = node.cpus.stats(now);
            cpu_utilization += cpu_stats.utilization;
            node.active_tw.record(now, node.active_count as f64);
            node.inputq_tw.record(now, node.input_queue.len() as f64);
            buffer.absorb(node.bufmgr.stats());
            nodes_report.push(NodeReport {
                node: id,
                completed: node.completed,
                aborts: node.aborts,
                throughput_tps: node.completed as f64 / (measured / 1000.0),
                mean_response_ms: node.response.mean().unwrap_or(0.0),
                cpu_utilization: cpu_stats.utilization,
                avg_active_transactions: node.active_tw.mean().unwrap_or(0.0),
                avg_input_queue: node.inputq_tw.mean().unwrap_or(0.0),
                remote_lock_requests: node.remote_lock_requests,
                redo_records: node.redo_records,
                buffer: node.bufmgr.stats().clone(),
            });
        }
        cpu_utilization /= self.nodes.len() as f64;

        let recovery = self.recovery.as_ref().map(|rec| RecoveryReport {
            checkpoints_taken: rec.checkpoints_taken,
            checkpoint_overhead_ms: rec.checkpoint_overhead_ms,
            redo_log_records: self.nodes.iter().map(|n| n.redo_records).sum(),
            log_records_truncated: rec.records_truncated,
            records_per_log_page: rec.redo.records_per_page(),
            restart,
        });

        // The shipping section exists exactly for shared-nothing runs;
        // data-sharing reports omit it (and render byte-identically to
        // reports from before the shared-nothing mode).
        let shipping = self.partition_map.is_some().then(|| self.shipping.clone());

        // The coherence section exists exactly for non-default protocol /
        // transfer combinations; default broadcast/disk-reread reports omit
        // it (and render byte-identically to pre-protocol-option reports).
        let coherence =
            (!self.config.coherence.is_default_protocol()).then_some(self.coherence_stats);

        // The tail-latency section exists exactly for shaped workloads
        // (non-constant schedule and/or hot-spot skew); unshaped reports
        // omit it and render byte-identically to pre-workload-engine
        // reports.  The cluster-wide sketch is the merge of the per-node
        // sketches — the cross-shard aggregation path the sketch exists for.
        let tail = self.config.workload.is_active().then(|| {
            let mut merged = QuantileSketch::default();
            for node in &self.nodes {
                merged.merge(&node.response_sketch);
            }
            TailLatencyReport::from_sketch(&merged)
        });

        let nvem_capacity = self.config.nvem.num_servers.max(1) as f64;
        SimulationReport {
            arrival_rate_tps: self.config.arrival_rate_tps,
            completed: self.completed,
            aborts: self.aborts,
            log_group_writes: self.log_group_writes,
            measured_time_ms: measured,
            throughput_tps: self.completed as f64 / (measured / 1000.0),
            response_time,
            per_type,
            cpu_utilization,
            nvem_utilization: (self.nvem_busy / (measured * nvem_capacity)).min(1.0),
            avg_active_transactions: self.active_tw.mean().unwrap_or(0.0),
            avg_input_queue: self.inputq_tw.mean().unwrap_or(0.0),
            buffer,
            locks: self
                .crash_stats
                .as_ref()
                .map(|s| s.locks)
                .unwrap_or_else(|| self.lockmgr.stats()),
            global_locks: self
                .crash_stats
                .as_ref()
                .map(|s| s.global_locks)
                .unwrap_or_else(|| self.lockmgr.global_stats()),
            recovery,
            coherence,
            shipping,
            tail,
            devices,
            nodes: nodes_report,
        }
    }
}
