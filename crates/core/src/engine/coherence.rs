//! Cross-node buffer coherence for the data-sharing architecture.
//!
//! Multiple computing modules buffering pages of the shared database must
//! not serve stale copies after another node commits an update.  Two
//! protocols are modelled (selected by
//! [`CoherenceParams`](crate::config::CoherenceParams)):
//!
//! * **Broadcast invalidation** (default, the paper's §3.2 behaviour): a
//!   committed update drops the stale copies of its written pages from every
//!   other node's buffer pool at commit time.  Instead of broadcasting to
//!   all nodes, the engine consults a page → holders index — a bitmask of
//!   the nodes that may hold a buffered copy (or a dirty-page-table entry) —
//!   so the fan-out touches only actual holders.  The index is a
//!   *conservative superset*: bits are set on every buffer fetch, never
//!   cleared on eviction, and pruned lazily during commit fan-out.  That is
//!   safe because [`bufmgr::BufferManager::invalidate_page`] on a node
//!   without a copy and without a dirty-page-table entry is a complete
//!   no-op; debug builds assert exactly this for every node outside the
//!   mask, proving the index path equivalent to the broadcast it replaced.
//!
//! * **On-request validation**: commit only bumps a global per-page version
//!   number (no messages to other nodes); each node stamps its buffered
//!   copy with the version it fetched.  A reference that finds its copy's
//!   stamp behind the global version discards the copy, pays a validation
//!   message round trip, and re-fetches — turning the stale hit into a miss.
//!   A fresh hit costs nothing extra (the check piggybacks on the lock
//!   request's message).  Superseded dirty-page-table entries at other
//!   holders are cleared *eagerly at the remote commit* (pure local
//!   bookkeeping — no invalidation message is modelled, and the stale
//!   buffer copies themselves still wait for their next reference), so a
//!   fuzzy checkpoint between the commit and that reference records the
//!   true redo boundary rather than a superseded one.
//!
//! Orthogonally, **direct page transfer** replaces the disk re-read of a
//! miss whose page is currently buffered at another node with a modelled
//! message round trip plus a memory-to-memory copy burst from that donor
//! node (falling back to the disk read when no node holds a current copy).

use std::time::Instant;

use bufmgr::PageOp;
use dbmodel::{PageId, WorkloadGenerator};
use simkernel::time::instr_time;

use crate::config::{CoherenceProtocol, PageTransfer};

use super::transaction::MicroOp;
use super::Simulation;

impl<W: WorkloadGenerator> Simulation<W> {
    /// True when cross-node coherence exists at all: several computing
    /// modules buffer pages of the *shared* database.  Shared-nothing runs
    /// cache a page only at its owner, so no stale copy can ever exist.
    pub(super) fn coherence_active(&self) -> bool {
        self.nodes.len() > 1 && self.partition_map.is_none()
    }

    /// Registers `node` as a possible holder of `page` (called on every
    /// buffer fetch while coherence is active).  Node counts are capped at
    /// 64 by config validation, so one `u64` bitmask per page suffices.
    pub(super) fn note_holder(&mut self, node: usize, page: PageId) {
        *self.holders.entry(page).or_insert(0) |= 1u64 << node;
    }

    /// Commit-time coherence fan-out for the update transaction committing
    /// on `node` with template `template`: invalidates the written pages'
    /// holders (broadcast protocol) or bumps their global versions
    /// (on-request validation).  No-op on single-node and shared-nothing
    /// runs.  The wall-clock time spent here feeds the kernel profile's
    /// commit-fan-out accounting.
    pub(super) fn commit_coherence(&mut self, node: usize, template: u32, is_update: bool) {
        if !is_update || !self.coherence_active() {
            return;
        }
        // analyzer: allow(wall-clock): feeds KernelProfile only, never the report
        let t0 = Instant::now();
        let num_written = self.templates.entry(template).written_pages.len();
        match self.config.coherence.protocol {
            CoherenceProtocol::BroadcastInvalidate => {
                for idx in 0..num_written {
                    let (_, page) = self.templates.entry(template).written_pages[idx];
                    self.invalidate_holders(node, page);
                }
            }
            CoherenceProtocol::OnRequestValidate => {
                for idx in 0..num_written {
                    let (_, page) = self.templates.entry(template).written_pages[idx];
                    let version = self.page_versions.entry(page).or_insert(0);
                    *version += 1;
                    let version = *version;
                    // The committer's own copy is the new version.
                    self.node_versions[node].insert(page, version);
                    // Other holders' pending redo entries for the page are
                    // superseded by this commit; clear them eagerly (no
                    // message — version bumps are local bookkeeping) so
                    // checkpoints between now and the holders' next
                    // references record the true redo boundary.  The buffered
                    // copies stay: they are caught by validate_reference.
                    let mut pending =
                        self.holders.get(&page).copied().unwrap_or(0) & !(1u64 << node);
                    while pending != 0 {
                        let other = pending.trailing_zeros() as usize;
                        pending &= pending - 1;
                        self.nodes[other].bufmgr.clear_superseded_dpt(page);
                    }
                }
            }
        }
        self.fanout_ns += t0.elapsed().as_nanos() as u64;
        self.fanout_commits += 1;
    }

    /// Drops the stale copies of `page` from every holder other than the
    /// committing node, pruning holder bits that turn out to hold nothing
    /// any more.  Debug builds verify the index against the full broadcast:
    /// every node outside the mask must experience `invalidate_page` as a
    /// no-op (no buffered copy, no dirty-page-table entry).
    fn invalidate_holders(&mut self, committer: usize, page: PageId) {
        let Some(mask) = self.holders.get(&page).copied() else {
            // No node ever fetched the page — nothing can hold it.  (The
            // committer itself fetched it, so this arm is unreachable in
            // practice; keep it as the defensive equivalent of an empty
            // broadcast.)
            debug_assert!(
                self.nodes.iter().all(|rt| !rt.bufmgr.holds_page(page)),
                "page {page:?} held by a node missing from the holders index"
            );
            return;
        };
        #[cfg(debug_assertions)]
        for (other, rt) in self.nodes.iter().enumerate() {
            if mask & (1u64 << other) == 0 {
                debug_assert!(
                    !rt.bufmgr.holds_page(page),
                    "node {other} holds page {page:?} but its holder bit is unset: \
                     the index fan-out would diverge from a broadcast"
                );
            }
        }
        let mut remaining = mask;
        let mut pending = mask & !(1u64 << committer);
        while pending != 0 {
            let other = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            self.nodes[other].bufmgr.invalidate_page(page);
            // Lazy pruning: the bit stays only while something invalidation
            // could still reach remains (e.g. an NVEM entry spared because
            // of an in-flight write-back).
            if !self.nodes[other].bufmgr.holds_page(page) {
                remaining &= !(1u64 << other);
            }
        }
        if remaining != mask {
            self.holders.insert(page, remaining);
        }
    }

    /// On-request validation check for a reference to `page` on `node`,
    /// *before* the buffer lookup.  When the node's buffered copy is stale
    /// (its stamp is behind the global version), the copy is discarded —
    /// the lookup that follows will miss and re-fetch — and the validation
    /// message round trip to charge is returned.
    pub(super) fn validate_reference(&mut self, node: usize, page: PageId) -> Option<f64> {
        if self.config.coherence.protocol != CoherenceProtocol::OnRequestValidate
            || !self.coherence_active()
        {
            return None;
        }
        let global = self.page_versions.get(&page).copied().unwrap_or(0);
        if global == 0 {
            return None; // never updated by anyone: every copy is current
        }
        let bufmgr = &self.nodes[node].bufmgr;
        if !bufmgr.mm_contains(page) && !bufmgr.nvem_contains(page) {
            return None; // no copy: a plain miss, nothing to validate
        }
        let stamp = self.node_versions[node].get(&page).copied().unwrap_or(0);
        if stamp >= global {
            return None; // current copy: the check piggybacks on the lock message
        }
        self.nodes[node].bufmgr.discard_stale_copy(page);
        let round_trip = 2.0 * self.config.coherence.transfer_msg_ms;
        self.coherence_stats.stale_validations += 1;
        self.coherence_stats.validation_delay_ms += round_trip;
        Some(round_trip)
    }

    /// Stamps `node`'s freshly fetched copy of `page` with the current
    /// global version (on-request validation only; pages nobody ever
    /// updated stay unstamped — absent means version 0, matching the
    /// absent global entry).
    pub(super) fn stamp_fetch(&mut self, node: usize, page: PageId) {
        if self.config.coherence.protocol != CoherenceProtocol::OnRequestValidate {
            return;
        }
        let global = self.page_versions.get(&page).copied().unwrap_or(0);
        if global > 0 {
            self.node_versions[node].insert(page, global);
        }
    }

    /// Converts the page operations of a buffer miss like
    /// [`Simulation::convert_page_ops`], but — when direct page transfer is
    /// configured and a donor node holds a current copy of `target` — the
    /// disk read of `target` is replaced by a request/response message
    /// round trip plus a memory-to-memory copy burst.  Eviction write-backs
    /// and other operations keep their positions; with no donor (or under
    /// disk re-read) the conversion is unchanged and the fallback is
    /// counted.
    pub(super) fn convert_page_ops_with_transfer(
        &mut self,
        requester: usize,
        target: PageId,
        ops: &[PageOp],
    ) -> Vec<MicroOp> {
        if self.config.coherence.page_transfer != PageTransfer::DirectTransfer {
            return self.convert_page_ops(ops);
        }
        let target_read =
            |op: &PageOp| matches!(op, PageOp::UnitRead { page, .. } if *page == target);
        if !ops.iter().any(target_read) {
            // NVEM-resident pages (and pure eviction traffic) have no disk
            // read to replace; only disk re-reads are transfer candidates.
            return self.convert_page_ops(ops);
        }
        if self.direct_transfer_donor(requester, target).is_none() {
            self.coherence_stats.transfer_fallback_reads += 1;
            return self.convert_page_ops(ops);
        }
        let coherence = self.config.coherence;
        let round_trip = 2.0 * coherence.transfer_msg_ms;
        let copy_ms = instr_time(coherence.transfer_copy_instr, self.config.cm.mips);
        self.coherence_stats.direct_transfers += 1;
        self.coherence_stats.transfer_delay_ms += round_trip;
        let mut out = Vec::with_capacity(ops.len() * 2);
        for op in ops {
            if target_read(op) {
                // Request to the donor, page copy back: one message round
                // trip, then the CPU copies the page into the local frame.
                out.push(MicroOp::RemoteDelay { ms: round_trip });
                out.push(MicroOp::CpuBurst {
                    ms: copy_ms,
                    nvem: false,
                });
            } else {
                out.extend(self.convert_page_ops(std::slice::from_ref(op)));
            }
        }
        out
    }

    /// Picks the donor node for a direct cache-to-cache transfer of `page`
    /// to `requester`: the lowest-numbered other holder with a current copy
    /// (main-memory frame or fully destaged NVEM entry; under on-request
    /// validation additionally stamped with the current global version).
    /// Returns `None` when no such node exists — the miss then falls back
    /// to its disk re-read.
    fn direct_transfer_donor(&self, requester: usize, page: PageId) -> Option<usize> {
        let validate = self.config.coherence.protocol == CoherenceProtocol::OnRequestValidate;
        let global = if validate {
            self.page_versions.get(&page).copied().unwrap_or(0)
        } else {
            0
        };
        let mut pending = self.holders.get(&page).copied().unwrap_or(0) & !(1u64 << requester);
        while pending != 0 {
            let node = pending.trailing_zeros() as usize;
            pending &= pending - 1;
            if !self.nodes[node].bufmgr.has_current_copy(page) {
                continue;
            }
            if validate && global > 0 {
                let stamp = self.node_versions[node].get(&page).copied().unwrap_or(0);
                if stamp < global {
                    continue;
                }
            }
            return Some(node);
        }
        None
    }
}
