//! In-flight I/O requests.
//!
//! An I/O request carries the remaining service stages decided by the disk
//! unit (controller → disk → transmission), the transaction waiting for it (if
//! any), and the follow-up work to perform on completion (waking the waiter,
//! releasing a group-commit batch, notifying the buffer manager about an
//! asynchronous write, spawning the background destage of an absorbed write).
//!
//! Requests live in the engine's [`IoArena`]; the stage list is stored as the
//! device-produced `Vec` plus a cursor (no per-request deque conversion).
//!
//! [`IoArena`]: super::arena::IoArena

use dbmodel::PageId;
use simkernel::time::SimTime;
use storage::ServiceStage;

/// Which of the unit's resources the request currently holds (or waits for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeldResource {
    /// A controller of the unit.
    Controller,
    /// A disk server of the unit.
    Disk,
}

/// One in-flight I/O request.
#[derive(Debug)]
pub(crate) struct IoRequest {
    /// The disk unit serving the request.
    pub unit: usize,
    /// The node whose buffer manager issued the request (routes buffer
    /// notifications in data-sharing runs; 0 in a single-node run).
    pub node: usize,
    /// The page concerned.
    pub page: PageId,
    /// Transaction slot waiting for the foreground part, if any.
    pub waiter: Option<usize>,
    /// Foreground stages as decided by the device.
    stages: Vec<ServiceStage>,
    /// Index of the next stage in `stages` (already-served prefix).
    next_stage: usize,
    /// Background stages to run after the foreground completes (destage of an
    /// absorbed write).
    pub background: Vec<ServiceStage>,
    /// Transaction slots of a group-commit batch parked on this log write.
    pub group_waiters: Vec<usize>,
    /// Tell the buffer manager when this (asynchronous) write completes.
    pub notify_bufmgr: bool,
    /// Decrement the engine's log-write-buffer occupancy on completion.
    pub log_wb: bool,
    /// This request *is* a background destage; completion updates the disk
    /// unit's cache state.
    pub is_destage: bool,
    /// The request was dispatched by the unit's [`storage::RequestScheduler`]
    /// (possibly carrying a whole merged batch); completion must report back
    /// to the scheduler to free its service slot and trigger the next
    /// dispatch.
    pub scheduled: bool,
    /// Issue time of a checkpoint log record; on completion the measured
    /// latency (including queueing) is charged as checkpoint overhead.
    pub checkpoint_issued_at: Option<SimTime>,
    /// Resource currently held (or queued for).
    pub held: Option<HeldResource>,
    /// Service time of the stage waiting for a resource grant.
    pub pending_service: SimTime,
}

impl IoRequest {
    /// Creates a request from a stage list.
    pub fn new(
        unit: usize,
        page: PageId,
        stages: Vec<ServiceStage>,
        waiter: Option<usize>,
    ) -> Self {
        Self {
            unit,
            node: 0,
            page,
            waiter,
            stages,
            next_stage: 0,
            background: Vec::new(),
            group_waiters: Vec::new(),
            notify_bufmgr: false,
            log_wb: false,
            is_destage: false,
            scheduled: false,
            checkpoint_issued_at: None,
            held: None,
            pending_service: 0.0,
        }
    }

    /// Advances to (and returns) the next remaining foreground stage.
    #[inline]
    pub fn pop_stage(&mut self) -> Option<ServiceStage> {
        let stage = self.stages.get(self.next_stage).copied();
        if stage.is_some() {
            self.next_stage += 1;
        }
        stage
    }

    /// Number of foreground stages not yet served.
    #[cfg(test)]
    pub fn remaining_stages(&self) -> usize {
        self.stages.len() - self.next_stage
    }

    /// Attaches background (destage) stages.
    pub fn with_background(mut self, background: Vec<ServiceStage>) -> Self {
        self.background = background;
        self
    }

    /// Sets the issuing node.
    pub fn for_node(mut self, node: usize) -> Self {
        self.node = node;
        self
    }

    /// Marks the request as an asynchronous write the buffer manager tracks.
    pub fn with_bufmgr_notification(mut self) -> Self {
        self.notify_bufmgr = true;
        self
    }

    /// Marks the request as a log write going through the NVEM write buffer.
    pub fn with_log_wb(mut self) -> Self {
        self.log_wb = true;
        self
    }

    /// Marks the request as a background destage.
    pub fn into_destage(mut self) -> Self {
        self.is_destage = true;
        self
    }

    /// Marks the request as dispatched by the unit's request scheduler.
    pub fn into_scheduled(mut self) -> Self {
        self.scheduled = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_flags() {
        let mut io = IoRequest::new(2, PageId(7), vec![ServiceStage::Disk(5.0)], Some(3))
            .with_background(vec![ServiceStage::Disk(5.0)])
            .with_bufmgr_notification()
            .with_log_wb()
            .for_node(1);
        assert_eq!(io.unit, 2);
        assert_eq!(io.node, 1);
        assert_eq!(io.waiter, Some(3));
        assert_eq!(io.remaining_stages(), 1);
        assert_eq!(io.background.len(), 1);
        assert!(io.notify_bufmgr);
        assert!(io.log_wb);
        assert!(!io.is_destage);
        assert!(!io.scheduled);
        assert!(io.group_waiters.is_empty());
        assert_eq!(io.checkpoint_issued_at, None);
        assert_eq!(io.pop_stage(), Some(ServiceStage::Disk(5.0)));
        assert_eq!(io.remaining_stages(), 0);
        assert_eq!(io.pop_stage(), None);
        let destage = IoRequest::new(0, PageId(1), vec![], None).into_destage();
        assert!(destage.is_destage);
        assert!(destage.waiter.is_none());
        let scheduled = IoRequest::new(0, PageId(1), vec![], None).into_scheduled();
        assert!(scheduled.scheduled);
    }
}
