//! Commit processing: logging, FORCE/NOFORCE and group commit.
//!
//! Commit has two phases.  Phase 1 writes the commit log record — to NVEM,
//! to a log device, or to a log device through the NVEM write buffer — and,
//! under FORCE, writes every modified database page.  Phase 2 releases all
//! locks, records the response time and frees the MPL slot.
//!
//! **Group commit** (`cm.group_commit_size > 1`): committing transactions
//! whose log lives on a device join an open batch instead of writing their
//! own log page.  The batch is flushed as a *single* device write when it
//! reaches the configured size or when the oldest member has waited
//! `cm.group_commit_timeout_ms`; all members resume when that write
//! completes.  This trades a small commit latency for a large reduction in
//! log-device traffic, lifting the single-log-disk throughput ceiling of
//! Fig. 4.1.  The batch members are parked on the group log write's own
//! [`IoRequest`](super::iorequest::IoRequest) until it completes.

use dbmodel::{PageId, WorkloadGenerator};
use storage::IoKind;

use crate::config::LogAllocation;

use super::transaction::{MicroOp, TxState};
use super::{Ev, Flow, Simulation};

impl<W: WorkloadGenerator> Simulation<W> {
    pub(super) fn op_log_write(&mut self, slot: usize) -> Flow {
        let cm = self.config.cm;
        let nvem_cost = self.config.nvem.synchronous_cost(cm.mips);
        let ops = match self.config.log_allocation {
            LogAllocation::Nvem => {
                vec![MicroOp::CpuBurst {
                    ms: nvem_cost,
                    nvem: true,
                }]
            }
            LogAllocation::DiskUnit(unit) => {
                if cm.group_commit_size > 1 {
                    // Each member still pays its own per-I/O CPU overhead
                    // (the DBMS issues a log request per transaction); only
                    // the device write is shared by the batch.
                    vec![self.io_overhead_burst(), MicroOp::JoinCommitGroup { unit }]
                } else {
                    let page = self.next_log_page();
                    vec![
                        self.io_overhead_burst(),
                        MicroOp::IssueIo {
                            unit,
                            kind: IoKind::Write,
                            page,
                            wait: true,
                            notify: false,
                            log_wb: false,
                        },
                    ]
                }
            }
            LogAllocation::DiskUnitViaNvemWriteBuffer(unit) => {
                let capacity = self.config.buffer.nvem_write_buffer_pages;
                if self.log_wb_pending < capacity {
                    // Absorbed by the NVEM write buffer: the transaction only
                    // waits for the NVEM transfer; the disk is updated
                    // asynchronously.
                    self.log_wb_pending += 1;
                    let page = self.next_log_page();
                    vec![
                        MicroOp::CpuBurst {
                            ms: nvem_cost,
                            nvem: true,
                        },
                        self.io_overhead_burst(),
                        MicroOp::IssueIo {
                            unit,
                            kind: IoKind::Write,
                            page,
                            wait: false,
                            notify: false,
                            log_wb: true,
                        },
                    ]
                } else if cm.group_commit_size > 1 {
                    // Write buffer saturated: the overflow writes are
                    // synchronous device log writes, so group commit batches
                    // them exactly like plain device-resident logs.
                    vec![self.io_overhead_burst(), MicroOp::JoinCommitGroup { unit }]
                } else {
                    // Write buffer saturated: synchronous log write.
                    let page = self.next_log_page();
                    vec![
                        self.io_overhead_burst(),
                        MicroOp::IssueIo {
                            unit,
                            kind: IoKind::Write,
                            page,
                            wait: true,
                            notify: false,
                            log_wb: false,
                        },
                    ]
                }
            }
        };
        self.txs.tx_mut(slot).push_ops_front(ops);
        Flow::Continue
    }

    pub(super) fn next_log_page(&mut self) -> PageId {
        // Log pages live in a reserved id range far above any database page.
        let page = PageId(self.next_log_page);
        debug_assert!(self.next_log_page > 0, "log page id space exhausted");
        self.next_log_page -= 1;
        page
    }

    // ------------------------------------------------------------------
    // Group commit
    // ------------------------------------------------------------------

    /// Adds the committing transaction in `slot` to the open group-commit
    /// batch for the log device `unit`, flushing the batch when it is full.
    pub(super) fn join_commit_group(&mut self, slot: usize, unit: usize) -> Flow {
        self.txs.tx_mut(slot).state = TxState::WaitingIo;
        self.commit_group.push(slot);
        self.commit_group_unit = unit;
        if self.commit_group.len() >= self.config.cm.group_commit_size {
            self.flush_commit_group();
        } else if self.commit_group.len() == 1 {
            // First member: arm the flush timeout for this batch.
            self.sched_in(
                self.config.cm.group_commit_timeout_ms,
                Ev::GroupCommitFlush(self.commit_group_seq),
            );
        }
        Flow::Blocked
    }

    /// Timeout path: flush the batch with sequence number `seq` if it is
    /// still the open one (otherwise it was already flushed when it filled).
    pub(super) fn handle_group_commit_flush(&mut self, seq: u64) {
        if seq != self.commit_group_seq || self.commit_group.is_empty() {
            return;
        }
        self.flush_commit_group();
    }

    /// Writes one log page for the whole open batch and parks the members on
    /// the write's request until it completes.
    fn flush_commit_group(&mut self) {
        let unit = self.commit_group_unit;
        let members = std::mem::take(&mut self.commit_group);
        self.commit_group_seq += 1;
        if members.is_empty() {
            return;
        }
        self.log_group_writes += 1;
        let page = self.next_log_page();
        // The members ride on the write's request itself, attached before
        // its first stage runs, so even a synchronously completing write
        // wakes the whole batch.
        self.issue_group_commit_io(unit, page, members);
    }

    pub(super) fn wake_slots(&mut self, slots: &[usize]) {
        for &slot in slots {
            if let Some(tx) = self.txs.get_mut(slot) {
                tx.state = TxState::Ready;
                self.ready.push_back(slot);
            }
        }
    }

    /// Number of group log writes currently in flight (test diagnostic).
    #[cfg(test)]
    pub(super) fn group_writes_in_flight(&self) -> usize {
        self.ios
            .live()
            .filter(|io| !io.group_waiters.is_empty())
            .count()
    }

    // ------------------------------------------------------------------
    // FORCE and completion
    // ------------------------------------------------------------------

    pub(super) fn op_force_pages(&mut self, slot: usize) -> Flow {
        let node = self.txs.tx(slot).node;
        let template = self.txs.tx(slot).template;
        let mut page_ops = Vec::new();
        for &(partition, page) in &self.templates.entry(template).written_pages {
            page_ops.extend(self.nodes[node].bufmgr.force_page(partition, page));
        }
        let ops = self.convert_page_ops(&page_ops);
        self.txs.tx_mut(slot).push_ops_front(ops);
        Flow::Continue
    }

    pub(super) fn op_complete(&mut self, slot: usize) -> Flow {
        // Crash recovery: the transaction's commit log record is durable by
        // now (the log write — own or group — completed before this micro
        // operation ran), so this is the instant its redo records exist for
        // a crash.  Pages already propagated (FORCE writes, an eviction
        // while the log write was in flight) are skipped by the dirty-page
        // table.  No-op while the recovery subsystem is inactive.
        self.record_redo(slot);
        let now = self.queue.now();
        let (tx_id, node, arrival, template) = {
            let tx = self.txs.tx(slot);
            (tx.id, tx.node, tx.arrival, tx.template)
        };
        let entry = self.templates.entry(template);
        let tx_type = entry.template.tx_type;
        let is_update = entry.is_update;
        // Data sharing: a committed update invalidates stale copies of the
        // written pages in the *other* holders' buffer pools (via the
        // page → holders index) or, under on-request validation, bumps the
        // pages' global versions.  Stale copies are dropped without a
        // write-back even when dirty (NOFORCE): the committing node holds
        // the current version and propagates it itself, so only the latest
        // owner ever writes the page.  Shared nothing needs no coherence at
        // all: a page is only ever cached at its owner (remote references
        // go through the owner's pool), so no stale copy can exist.
        self.commit_coherence(node, template, is_update);
        // Phase 2 of commit: release all locks and wake waiters.  Release
        // messages to the global lock service are asynchronous — the
        // committer does not wait for them.
        let woken = self.lockmgr.release_all(tx_id);
        self.wake_lock_waiters(&woken);

        // Statistics.
        self.record_completion(now, node, arrival, tx_type);

        // Free the slot (the carcass stays for reuse) and the template entry.
        self.id_to_slot.remove(&tx_id);
        self.txs.release(slot);
        self.templates.free(template);
        debug_assert!(
            self.nodes[node].active_count > 0 && self.total_active > 0,
            "active-transaction counter underflow"
        );
        self.nodes[node].active_count -= 1;
        self.total_active -= 1;
        self.active_tw.record(now, self.total_active as f64);
        let node_active = self.nodes[node].active_count;
        self.nodes[node].active_tw.record(now, node_active as f64);

        // Admit the node's next waiting transaction, if any.
        self.admit_next(node);
        Flow::Finished
    }
}
