//! The sharded parallel kernel: event-to-shard routing and the scoped
//! worker-thread run path.
//!
//! # Shard ownership
//!
//! The future event list is sharded **per simulated node**: shard `n` holds
//! the pending events whose handler will run in the context of node `n`'s
//! computing module.  Routing is *advice*, not semantics — the coordinator
//! re-merges every shard into one global `(time, seq)` order before any
//! handler runs, so a different routing changes which worker maintains an
//! event's calendar entry but never the simulated outcome:
//!
//! * `CpuDone` / `MsgDone` / `RemoteDone` — the transaction's current
//!   execution node (for shipped shared-nothing calls: the owner node the
//!   call was shipped to),
//! * `IoStage` — the storage unit's slot, folded over the shard count (the
//!   storage complex is shared by all nodes; spreading by unit keeps the
//!   per-shard calendars balanced on I/O-bound configurations),
//! * control events (`Arrival`, `EndWarmup`, `EndRun`, `Checkpoint`,
//!   `Crash`) and the global group-commit flush — shard 0, next to the
//!   global lock service's home node.
//!
//! # Why handlers stay on the coordinator
//!
//! Handlers execute *serially*, in exactly the sequential kernel's global
//! event order, on the coordinator thread; the workers parallelize the
//! future-event-list maintenance (calendar inserts, bounded drains, horizon
//! tracking) between handler executions.  This is a deliberate consequence
//! of the byte-identity oracle: the engine draws service, arrival and
//! workload randomness from three *shared* streams in global event order,
//! and accumulates `f64` statistics in global completion order — executing
//! handlers concurrently would have to re-partition those streams and
//! re-associate those sums, changing every report bit.  The horizon protocol
//! (see [`simkernel::shard`]) makes the merge safe for any lookahead, so
//! determinism holds for every thread count.

use dbmodel::WorkloadGenerator;
use simkernel::time::safe_min;
use simkernel::ShardedEventQueue;

use super::kqueue::KernelQueue;
use super::{Ev, Simulation};

impl<W: WorkloadGenerator> Simulation<W> {
    /// The shard (node) whose calendar holds `ev`; see the module docs for
    /// the ownership rules.
    #[inline]
    pub(super) fn shard_of(&self, ev: &Ev) -> usize {
        match *ev {
            Ev::CpuDone(slot) | Ev::MsgDone(slot) | Ev::RemoteDone(slot) => self.exec_node_of(slot),
            Ev::IoStage(io_id) => {
                let unit = self.ios.get(io_id).map_or(0, |io| io.unit);
                unit % self.nodes.len()
            }
            Ev::Arrival
            | Ev::GroupCommitFlush(_)
            | Ev::Checkpoint
            | Ev::Crash
            | Ev::EndWarmup
            | Ev::EndRun => 0,
        }
    }

    /// Schedules `ev` at absolute time `at` on its owning shard.
    #[inline]
    pub(super) fn sched_at(&mut self, at: simkernel::SimTime, ev: Ev) {
        let shard = self.shard_of(&ev);
        self.queue.schedule_at(shard, at, ev);
    }

    /// Schedules `ev` after `delay` ms on its owning shard.
    #[inline]
    pub(super) fn sched_in(&mut self, delay: simkernel::SimTime, ev: Ev) {
        let shard = self.shard_of(&ev);
        self.queue.schedule_in(shard, delay, ev);
    }

    /// The conservative lookahead (simulated ms) of this run's
    /// synchronization rounds: the configured/derived window
    /// ([`crate::config::SimulationConfig::lookahead_ms`]), tightened by the
    /// global lock service's own message-endpoint contribution when it
    /// models one.  Purely a wall-clock tuning knob — results are identical
    /// for any value.
    fn kernel_lookahead_ms(&self) -> simkernel::SimTime {
        let configured = self.config.lookahead_ms();
        match self.lockmgr.lookahead_contribution_ms() {
            Some(lock_rt) if self.config.parallelism.lookahead_ms <= 0.0 => {
                safe_min(configured, lock_rt.max(0.05))
            }
            _ => configured,
        }
    }

    /// Runs the event loop on the sharded kernel: one shard calendar per
    /// node, maintained by `workers` scoped threads, handlers executing
    /// serially on this thread in the sequential kernel's exact global
    /// order.
    pub(super) fn run_events_sharded(&mut self, workers: usize) {
        let shards = self.nodes.len();
        debug_assert!(workers >= 2 && workers <= shards);
        let lookahead = self.kernel_lookahead_ms();
        let (coordinator, runners) = ShardedEventQueue::new(shards, workers, lookahead);
        self.queue = KernelQueue::Sharded(coordinator);
        let guard = match &self.queue {
            KernelQueue::Sharded(q) => q.shutdown_guard(),
            KernelQueue::Single(_) => unreachable!("queue was just replaced"),
        };
        std::thread::scope(|s| {
            // The guard signals shutdown when this scope's closure exits —
            // normally or by unwind — so the scope can always join.
            let _guard = guard;
            for runner in runners {
                s.spawn(move || runner.run());
            }
            self.seed_initial_events();
            self.run_event_loop();
        });
    }
}
