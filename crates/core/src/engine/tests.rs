//! Engine-level tests: end-to-end runs of small configurations.

use storage::NvemDeviceParams;

use crate::config::LogAllocation;
use crate::presets::{
    data_sharing_config, debit_credit_config, debit_credit_workload, DebitCreditStorage, LOG_UNIT,
};

use super::Simulation;
use crate::config::SimulationConfig;

fn quick_config(storage: DebitCreditStorage, tps: f64) -> SimulationConfig {
    let mut c = debit_credit_config(storage, tps);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    c
}

#[test]
fn disk_based_debit_credit_completes_transactions() {
    let config = quick_config(DebitCreditStorage::Disk, 50.0);
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 20, "completed {}", report.completed);
    // Disk-based response time: ~2 disk I/Os + log I/O + CPU ≈ 40+ ms.
    assert!(
        report.response_time.mean > 20.0,
        "mean {}",
        report.response_time.mean
    );
    assert!(report.cpu_utilization > 0.0 && report.cpu_utilization < 1.0);
    assert!(report.throughput_tps > 20.0);
}

#[test]
fn nvem_resident_debit_credit_is_cpu_bound_and_fast() {
    let config = quick_config(DebitCreditStorage::NvemResident, 50.0);
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 20);
    // NVEM-resident: response time close to the pure CPU path length (5 ms).
    assert!(
        report.response_time.mean < 15.0,
        "mean {}",
        report.response_time.mean
    );
    assert!(report.nvem_utilization > 0.0);
}

#[test]
fn write_buffer_halves_disk_based_response_time() {
    // Use a small main-memory buffer and a higher rate so the buffer
    // reaches steady state (victim write-backs) within the short run.
    let configure = |storage| {
        let mut c = quick_config(storage, 150.0);
        c.buffer.mm_buffer_pages = 300;
        c.warmup_ms = 1_000.0;
        c.measure_ms = 2_500.0;
        c
    };
    let disk = Simulation::new(
        configure(DebitCreditStorage::Disk),
        debit_credit_workload(100),
    )
    .run();
    let wb = Simulation::new(
        configure(DebitCreditStorage::DiskWithNvemWriteBuffer),
        debit_credit_workload(100),
    )
    .run();
    assert!(
        disk.buffer.dirty_evictions > 0,
        "disk-based run should reach steady state with dirty evictions"
    );
    assert!(
        wb.response_time.mean < disk.response_time.mean * 0.75,
        "write buffer {} vs disk {}",
        wb.response_time.mean,
        disk.response_time.mean
    );
}

#[test]
fn deterministic_for_fixed_seed() {
    let a = Simulation::new(
        quick_config(DebitCreditStorage::Ssd, 80.0),
        debit_credit_workload(100),
    )
    .run();
    let b = Simulation::new(
        quick_config(DebitCreditStorage::Ssd, 80.0),
        debit_credit_workload(100),
    )
    .run();
    assert_eq!(a.completed, b.completed);
    assert!((a.response_time.mean - b.response_time.mean).abs() < 1e-9);
    assert_eq!(a.buffer.references(), b.buffer.references());
}

#[test]
fn single_log_disk_saturates_at_high_rates() {
    // With one 5 ms log disk, ~200 TPS is the maximum log rate; at 300 TPS
    // the input queue grows and response times explode (Fig. 4.1).
    let mut config =
        crate::presets::log_allocation_config(crate::presets::LogVariant::SingleDisk, 300.0);
    config.warmup_ms = 200.0;
    config.measure_ms = 2_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    let log_unit = &report.devices[1];
    assert!(
        log_unit.disk_utilization > 0.9,
        "log disk utilization {}",
        log_unit.disk_utilization
    );
    assert!(report.throughput_tps < 260.0);
}

#[test]
fn group_commit_lifts_the_single_log_disk_ceiling() {
    // Same saturated single-log-disk configuration as above, but with group
    // commit batching up to 8 committers per log page write: the log-disk
    // bottleneck disappears and throughput approaches the arrival rate.
    let make = |group: usize| {
        let mut c =
            crate::presets::log_allocation_config(crate::presets::LogVariant::SingleDisk, 300.0);
        c.warmup_ms = 500.0;
        c.measure_ms = 3_000.0;
        c.cm.group_commit_size = group;
        c.cm.group_commit_timeout_ms = 2.0;
        c
    };
    let single = Simulation::new(make(1), debit_credit_workload(100)).run();
    let grouped = Simulation::new(make(8), debit_credit_workload(100)).run();
    assert_eq!(single.log_group_writes, 0);
    assert!(grouped.log_group_writes > 0, "group commit never batched");
    assert!(
        grouped.throughput_tps > single.throughput_tps * 1.2,
        "group {} vs single {}",
        grouped.throughput_tps,
        single.throughput_tps
    );
    // Fewer log-device writes than completed transactions: batching worked.
    assert!(
        grouped.devices[LOG_UNIT].stats.writes < grouped.completed,
        "log writes {} vs completed {}",
        grouped.devices[LOG_UNIT].stats.writes,
        grouped.completed
    );
}

#[test]
fn group_commit_batches_write_buffer_overflow_log_writes() {
    // With a 1-page NVEM write buffer at 300 TPS the buffer saturates and
    // log writes overflow to synchronous disk writes; group commit must
    // batch those overflows too.
    let mut config = debit_credit_config(DebitCreditStorage::DiskWithNvemWriteBuffer, 300.0);
    config.warmup_ms = 300.0;
    config.measure_ms = 2_000.0;
    config.buffer.nvem_write_buffer_pages = 1;
    config.cm.group_commit_size = 8;
    config.cm.group_commit_timeout_ms = 2.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 100);
    assert!(
        report.log_group_writes > 0,
        "overflow log writes were not batched"
    );
}

#[test]
fn single_node_report_carries_one_matching_node_entry() {
    let config = quick_config(DebitCreditStorage::Disk, 50.0);
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert_eq!(report.nodes.len(), 1);
    let node = &report.nodes[0];
    assert_eq!(node.node, 0);
    assert_eq!(node.completed, report.completed);
    assert_eq!(node.aborts, report.aborts);
    assert!((node.throughput_tps - report.throughput_tps).abs() < 1e-9);
    assert!((node.mean_response_ms - report.response_time.mean).abs() < 1e-9);
    assert!((node.cpu_utilization - report.cpu_utilization).abs() < 1e-12);
    assert!((node.avg_active_transactions - report.avg_active_transactions).abs() < 1e-9);
    assert_eq!(node.buffer, report.buffer);
    // A single node exchanges no lock messages and sees no invalidations.
    assert_eq!(node.remote_lock_requests, 0);
    assert_eq!(report.remote_lock_requests(), 0);
    assert_eq!(report.invalidations(), 0);
    assert_eq!(report.global_locks.messages, 0);
    assert_eq!(report.global_locks.local_requests, report.locks.requests);
}

#[test]
fn multi_node_run_shares_storage_and_scales_work_across_nodes() {
    let mut config = data_sharing_config(4, 200.0);
    config.warmup_ms = 500.0;
    config.measure_ms = 4_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert_eq!(report.nodes.len(), 4);
    // Round-robin assignment spreads the load: every node completes work.
    for node in &report.nodes {
        assert!(node.completed > 0, "node {} completed nothing", node.node);
    }
    assert_eq!(
        report.nodes.iter().map(|n| n.completed).sum::<u64>(),
        report.completed
    );
    // Nodes 1..3 pay remote lock messages; node 0 hosts the lock service.
    assert_eq!(report.nodes[0].remote_lock_requests, 0);
    for node in &report.nodes[1..] {
        assert!(node.remote_lock_requests > 0, "node {}", node.node);
    }
    assert_eq!(
        report.global_locks.remote_requests,
        report.nodes.iter().map(|n| n.remote_lock_requests).sum()
    );
    assert_eq!(
        report.global_locks.messages,
        2 * report.global_locks.remote_requests
    );
    // The hot BRANCH/TELLER pages are written on every node, so commits must
    // invalidate stale copies in the other nodes' pools.
    assert!(report.invalidations() > 0);
    // The aggregate buffer statistics sum the per-node pools.
    assert_eq!(
        report.buffer.references(),
        report
            .nodes
            .iter()
            .map(|n| n.buffer.references())
            .sum::<u64>()
    );
}

#[test]
fn multi_node_same_seed_same_report() {
    let make = || {
        let mut c = data_sharing_config(3, 150.0);
        c.warmup_ms = 300.0;
        c.measure_ms = 2_000.0;
        c
    };
    let a = Simulation::new(make(), debit_credit_workload(100)).run();
    let b = Simulation::new(make(), debit_credit_workload(100)).run();
    assert_eq!(a, b);
    assert_eq!(a.nodes.len(), 3);
}

#[test]
fn shared_log_disk_and_lock_messages_cap_multi_node_scaling() {
    // 4 nodes at 4× the per-node rate: the CPU complex scales linearly but
    // the single shared log disk (~200 TPS ceiling) does not, so throughput
    // stays well below the offered 400 TPS while a 4-log-disk baseline keeps
    // up.  This is the data-sharing analogue of Fig. 4.1's log bottleneck.
    let sharing = {
        let mut c = data_sharing_config(4, 400.0);
        c.warmup_ms = 500.0;
        c.measure_ms = 3_000.0;
        Simulation::new(c, debit_credit_workload(100)).run()
    };
    assert!(
        sharing.devices[LOG_UNIT].disk_utilization > 0.9,
        "shared log disk utilization {}",
        sharing.devices[LOG_UNIT].disk_utilization
    );
    assert!(
        sharing.throughput_tps < 300.0,
        "throughput {} should be capped by the shared log disk",
        sharing.throughput_tps
    );
}

#[test]
fn nvem_log_device_topology_is_pure_config() {
    // The paper's log variants are disk-based or synchronous NVEM; with the
    // pluggable device layer an *NVEM server device* in the log slot is just
    // configuration.  The log write then queues at the NVEM servers instead
    // of paying a disk access, so the run behaves like the fast log variants.
    let mut config = crate::presets::nvem_log_device_config(150.0);
    config.warmup_ms = 300.0;
    config.measure_ms = 1_500.0;
    assert_eq!(config.devices[LOG_UNIT], NvemDeviceParams::default().into());
    assert_eq!(config.log_allocation, LogAllocation::DiskUnit(LOG_UNIT));
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 50);
    // All log writes were absorbed by the NVEM device.
    assert!(report.devices[LOG_UNIT].stats.writes > 0);
    assert_eq!(
        report.devices[LOG_UNIT].stats.writes,
        report.devices[LOG_UNIT].stats.absorbed_writes
    );
    assert_eq!(report.devices[LOG_UNIT].disk_utilization, 0.0);
    // And the response time stays far below the disk-log configuration.
    let disk_log = Simulation::new(
        quick_config(DebitCreditStorage::Disk, 150.0),
        debit_credit_workload(100),
    )
    .run();
    assert!(report.response_time.mean < disk_log.response_time.mean);
}
