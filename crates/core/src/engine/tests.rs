//! Engine-level tests: end-to-end runs of small configurations, plus direct
//! regression tests against the commit-path internals (group commit,
//! cross-node invalidation, log write-buffer accounting).

use dbmodel::{AccessMode, ObjectId, ObjectRef, PageId, TransactionTemplate};
use storage::{IoKind, IoSchedulerParams, NvemDeviceParams};

use bufmgr::PageOp;

use crate::config::{CoherenceParams, LogAllocation, RecoveryParams};
use crate::presets::{
    data_sharing_config, debit_credit_config, debit_credit_workload, recovery_config,
    shared_nothing_config, DebitCreditStorage, LOG_UNIT,
};

use super::iorequest::IoRequest;
use super::transaction::{MicroOp, TxState};
use super::{Ev, Flow, Simulation};
use crate::config::SimulationConfig;
use crate::metrics::SimulationReport;

fn quick_config(storage: DebitCreditStorage, tps: f64) -> SimulationConfig {
    let mut c = debit_credit_config(storage, tps);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    c
}

/// A single-reference update transaction touching `page` of partition 0
/// (for tests that drive the commit path by hand).
fn write_template(page: u64) -> TransactionTemplate {
    TransactionTemplate {
        tx_type: 0,
        refs: vec![ObjectRef {
            partition: 0,
            page: PageId(page),
            object: ObjectId(page),
            mode: AccessMode::Write,
        }],
    }
}

#[test]
fn disk_based_debit_credit_completes_transactions() {
    let config = quick_config(DebitCreditStorage::Disk, 50.0);
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 20, "completed {}", report.completed);
    // Disk-based response time: ~2 disk I/Os + log I/O + CPU ≈ 40+ ms.
    assert!(
        report.response_time.mean > 20.0,
        "mean {}",
        report.response_time.mean
    );
    assert!(report.cpu_utilization > 0.0 && report.cpu_utilization < 1.0);
    assert!(report.throughput_tps > 20.0);
}

#[test]
fn nvem_resident_debit_credit_is_cpu_bound_and_fast() {
    let config = quick_config(DebitCreditStorage::NvemResident, 50.0);
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 20);
    // NVEM-resident: response time close to the pure CPU path length (5 ms).
    assert!(
        report.response_time.mean < 15.0,
        "mean {}",
        report.response_time.mean
    );
    assert!(report.nvem_utilization > 0.0);
}

#[test]
fn write_buffer_halves_disk_based_response_time() {
    // Use a small main-memory buffer and a higher rate so the buffer
    // reaches steady state (victim write-backs) within the short run.
    let configure = |storage| {
        let mut c = quick_config(storage, 150.0);
        c.buffer.mm_buffer_pages = 300;
        c.warmup_ms = 1_000.0;
        c.measure_ms = 2_500.0;
        c
    };
    let disk = Simulation::new(
        configure(DebitCreditStorage::Disk),
        debit_credit_workload(100),
    )
    .run();
    let wb = Simulation::new(
        configure(DebitCreditStorage::DiskWithNvemWriteBuffer),
        debit_credit_workload(100),
    )
    .run();
    assert!(
        disk.buffer.dirty_evictions > 0,
        "disk-based run should reach steady state with dirty evictions"
    );
    assert!(
        wb.response_time.mean < disk.response_time.mean * 0.75,
        "write buffer {} vs disk {}",
        wb.response_time.mean,
        disk.response_time.mean
    );
}

#[test]
fn deterministic_for_fixed_seed() {
    let a = Simulation::new(
        quick_config(DebitCreditStorage::Ssd, 80.0),
        debit_credit_workload(100),
    )
    .run();
    let b = Simulation::new(
        quick_config(DebitCreditStorage::Ssd, 80.0),
        debit_credit_workload(100),
    )
    .run();
    assert_eq!(a.completed, b.completed);
    assert!((a.response_time.mean - b.response_time.mean).abs() < 1e-9);
    assert_eq!(a.buffer.references(), b.buffer.references());
}

#[test]
fn single_log_disk_saturates_at_high_rates() {
    // With one 5 ms log disk, ~200 TPS is the maximum log rate; at 300 TPS
    // the input queue grows and response times explode (Fig. 4.1).
    let mut config =
        crate::presets::log_allocation_config(crate::presets::LogVariant::SingleDisk, 300.0);
    config.warmup_ms = 200.0;
    config.measure_ms = 2_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    let log_unit = &report.devices[1];
    assert!(
        log_unit.disk_utilization > 0.9,
        "log disk utilization {}",
        log_unit.disk_utilization
    );
    assert!(report.throughput_tps < 260.0);
}

#[test]
fn group_commit_lifts_the_single_log_disk_ceiling() {
    // Same saturated single-log-disk configuration as above, but with group
    // commit batching up to 8 committers per log page write: the log-disk
    // bottleneck disappears and throughput approaches the arrival rate.
    let make = |group: usize| {
        let mut c =
            crate::presets::log_allocation_config(crate::presets::LogVariant::SingleDisk, 300.0);
        c.warmup_ms = 500.0;
        c.measure_ms = 3_000.0;
        c.cm.group_commit_size = group;
        c.cm.group_commit_timeout_ms = 2.0;
        c
    };
    let single = Simulation::new(make(1), debit_credit_workload(100)).run();
    let grouped = Simulation::new(make(8), debit_credit_workload(100)).run();
    assert_eq!(single.log_group_writes, 0);
    assert!(grouped.log_group_writes > 0, "group commit never batched");
    assert!(
        grouped.throughput_tps > single.throughput_tps * 1.2,
        "group {} vs single {}",
        grouped.throughput_tps,
        single.throughput_tps
    );
    // Fewer log-device writes than completed transactions: batching worked.
    assert!(
        grouped.devices[LOG_UNIT].stats.writes < grouped.completed,
        "log writes {} vs completed {}",
        grouped.devices[LOG_UNIT].stats.writes,
        grouped.completed
    );
}

#[test]
fn group_commit_batches_write_buffer_overflow_log_writes() {
    // With a 1-page NVEM write buffer at 300 TPS the buffer saturates and
    // log writes overflow to synchronous disk writes; group commit must
    // batch those overflows too.
    let mut config = debit_credit_config(DebitCreditStorage::DiskWithNvemWriteBuffer, 300.0);
    config.warmup_ms = 300.0;
    config.measure_ms = 2_000.0;
    config.buffer.nvem_write_buffer_pages = 1;
    config.cm.group_commit_size = 8;
    config.cm.group_commit_timeout_ms = 2.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 100);
    assert!(
        report.log_group_writes > 0,
        "overflow log writes were not batched"
    );
}

#[test]
fn single_node_report_carries_one_matching_node_entry() {
    let config = quick_config(DebitCreditStorage::Disk, 50.0);
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert_eq!(report.nodes.len(), 1);
    let node = &report.nodes[0];
    assert_eq!(node.node, 0);
    assert_eq!(node.completed, report.completed);
    assert_eq!(node.aborts, report.aborts);
    assert!((node.throughput_tps - report.throughput_tps).abs() < 1e-9);
    assert!((node.mean_response_ms - report.response_time.mean).abs() < 1e-9);
    assert!((node.cpu_utilization - report.cpu_utilization).abs() < 1e-12);
    assert!((node.avg_active_transactions - report.avg_active_transactions).abs() < 1e-9);
    assert_eq!(node.buffer, report.buffer);
    // A single node exchanges no lock messages and sees no invalidations.
    assert_eq!(node.remote_lock_requests, 0);
    assert_eq!(report.remote_lock_requests(), 0);
    assert_eq!(report.invalidations(), 0);
    assert_eq!(report.global_locks.messages, 0);
    assert_eq!(report.global_locks.local_requests, report.locks.requests);
}

#[test]
fn multi_node_run_shares_storage_and_scales_work_across_nodes() {
    let mut config = data_sharing_config(4, 200.0);
    config.warmup_ms = 500.0;
    config.measure_ms = 4_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert_eq!(report.nodes.len(), 4);
    // Round-robin assignment spreads the load: every node completes work.
    for node in &report.nodes {
        assert!(node.completed > 0, "node {} completed nothing", node.node);
    }
    assert_eq!(
        report.nodes.iter().map(|n| n.completed).sum::<u64>(),
        report.completed
    );
    // Nodes 1..3 pay remote lock messages; node 0 hosts the lock service.
    assert_eq!(report.nodes[0].remote_lock_requests, 0);
    for node in &report.nodes[1..] {
        assert!(node.remote_lock_requests > 0, "node {}", node.node);
    }
    assert_eq!(
        report.global_locks.remote_requests,
        report.nodes.iter().map(|n| n.remote_lock_requests).sum()
    );
    assert_eq!(
        report.global_locks.messages,
        2 * report.global_locks.remote_requests
    );
    // The hot BRANCH/TELLER pages are written on every node, so commits must
    // invalidate stale copies in the other nodes' pools.
    assert!(report.invalidations() > 0);
    // The aggregate buffer statistics sum the per-node pools.
    assert_eq!(
        report.buffer.references(),
        report
            .nodes
            .iter()
            .map(|n| n.buffer.references())
            .sum::<u64>()
    );
}

#[test]
fn multi_node_same_seed_same_report() {
    let make = || {
        let mut c = data_sharing_config(3, 150.0);
        c.warmup_ms = 300.0;
        c.measure_ms = 2_000.0;
        c
    };
    let a = Simulation::new(make(), debit_credit_workload(100)).run();
    let b = Simulation::new(make(), debit_credit_workload(100)).run();
    assert_eq!(a, b);
    assert_eq!(a.nodes.len(), 3);
}

#[test]
fn shared_log_disk_and_lock_messages_cap_multi_node_scaling() {
    // 4 nodes at 4× the per-node rate: the CPU complex scales linearly but
    // the single shared log disk (~200 TPS ceiling) does not, so throughput
    // stays well below the offered 400 TPS while a 4-log-disk baseline keeps
    // up.  This is the data-sharing analogue of Fig. 4.1's log bottleneck.
    let sharing = {
        let mut c = data_sharing_config(4, 400.0);
        c.warmup_ms = 500.0;
        c.measure_ms = 3_000.0;
        Simulation::new(c, debit_credit_workload(100)).run()
    };
    assert!(
        sharing.devices[LOG_UNIT].disk_utilization > 0.9,
        "shared log disk utilization {}",
        sharing.devices[LOG_UNIT].disk_utilization
    );
    assert!(
        sharing.throughput_tps < 300.0,
        "throughput {} should be capped by the shared log disk",
        sharing.throughput_tps
    );
}

// ---------------------------------------------------------------------------
// Shared nothing (function shipping)
// ---------------------------------------------------------------------------

#[test]
fn shared_nothing_ships_remote_references_and_needs_no_coherence() {
    let mut config = shared_nothing_config(4, 200.0);
    config.warmup_ms = 500.0;
    config.measure_ms = 4_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert_eq!(report.nodes.len(), 4);
    assert!(report.completed > 100, "completed {}", report.completed);
    for node in &report.nodes {
        assert!(node.completed > 0, "node {} completed nothing", node.node);
        // Locking is node-local: nobody messages a global lock service.
        assert_eq!(node.remote_lock_requests, 0);
    }
    assert_eq!(report.global_locks.remote_requests, 0);
    assert_eq!(report.global_locks.messages, 0);
    // A page is only ever cached at its owner: no invalidation traffic.
    assert_eq!(report.invalidations(), 0);
    let shipping = report.shipping.as_ref().expect("shipping section present");
    // Hash declustering + round-robin routing: ≈ 3/4 of the references are
    // remote at 4 nodes.
    let frac = shipping.remote_access_fraction();
    assert!(
        (0.6..0.9).contains(&frac),
        "remote access fraction {frac} should be ≈ 0.75 at 4 nodes"
    );
    assert!(shipping.remote_calls > 0);
    assert_eq!(
        shipping.per_node_remote_calls.iter().sum::<u64>(),
        shipping.remote_calls,
        "per-node remote calls must sum to the aggregate"
    );
    // Every shipped reference exchanges a call and a reply; commits add
    // their two-phase exchanges on top.
    assert!(shipping.commit_exchanges > 0);
    assert!(shipping.commit_participants >= shipping.commit_exchanges);
    assert!(
        shipping.messages >= 2 * shipping.remote_calls,
        "messages {} vs remote calls {}",
        shipping.messages,
        shipping.remote_calls
    );
    assert!(shipping.total_message_delay_ms > 0.0);
    assert!(shipping.remote_cpu_ms > 0.0);
}

#[test]
fn shared_nothing_single_node_degenerates_to_data_sharing() {
    // With one node every page is owned locally: no calls are shipped and
    // the run must be identical to the centralized (data-sharing) system —
    // the report differs only by the (all-zero-remote) shipping section.
    let make = |shared_nothing: bool| {
        let mut c = if shared_nothing {
            shared_nothing_config(1, 80.0)
        } else {
            data_sharing_config(1, 80.0)
        };
        c.warmup_ms = 300.0;
        c.measure_ms = 2_000.0;
        Simulation::new(c, debit_credit_workload(100)).run()
    };
    let sharing = make(false);
    let mut nothing = make(true);
    let shipping = nothing.shipping.take().expect("shipping section present");
    assert_eq!(shipping.remote_calls, 0);
    assert_eq!(shipping.messages, 0);
    assert_eq!(shipping.commit_exchanges, 0);
    assert!(shipping.local_refs > 0);
    assert_eq!(
        nothing, sharing,
        "single-node shared nothing must match the centralized system"
    );
}

#[test]
fn shared_nothing_same_seed_same_report() {
    let make = || {
        let mut c = shared_nothing_config(3, 150.0);
        c.warmup_ms = 300.0;
        c.measure_ms = 2_000.0;
        Simulation::new(c, debit_credit_workload(100)).run()
    };
    let a = make();
    let b = make();
    assert_eq!(a, b, "same seed must reproduce the shared-nothing report");
    assert!(a.shipping.is_some());
}

#[test]
fn shared_nothing_range_scheme_ships_too() {
    let mut config = shared_nothing_config(2, 120.0);
    config.partitioning = crate::config::PartitioningParams::range(8);
    config.warmup_ms = 300.0;
    config.measure_ms = 2_000.0;
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 50);
    let shipping = report.shipping.as_ref().expect("shipping section");
    assert!(
        shipping.remote_calls > 0,
        "range declustering never shipped"
    );
    assert!(report.remote_access_fraction() > 0.1);
}

#[test]
fn shared_nothing_partitions_the_log_and_avoids_the_shared_log_ceiling() {
    // The data-sharing analogue test above shows 4 nodes at 400 TPS capped
    // by the single shared log disk; the shared-nothing preset partitions
    // the log (one disk per node) and keeps up with the offered load at the
    // price of function-shipping messages.
    let run = |shared_nothing: bool| {
        let mut c = if shared_nothing {
            shared_nothing_config(4, 400.0)
        } else {
            data_sharing_config(4, 400.0)
        };
        c.warmup_ms = 500.0;
        c.measure_ms = 3_000.0;
        Simulation::new(c, debit_credit_workload(100)).run()
    };
    let nothing = run(true);
    let sharing = run(false);
    assert!(
        nothing.throughput_tps > 1.2 * sharing.throughput_tps,
        "shared nothing {} TPS should beat the log-capped data sharing {} TPS",
        nothing.throughput_tps,
        sharing.throughput_tps
    );
    assert!(
        nothing.devices[LOG_UNIT].disk_utilization < 0.9,
        "the partitioned log must not saturate, got {}",
        nothing.devices[LOG_UNIT].disk_utilization
    );
}

#[test]
#[should_panic(expected = "data-sharing architecture")]
fn shared_nothing_crash_simulation_is_rejected() {
    let mut c = shared_nothing_config(2, 100.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 2_000.0;
    let _ = Simulation::new(c, debit_credit_workload(100)).simulate_crash_at(1_000.0);
}

// ---------------------------------------------------------------------------
// Commit-path regression tests (direct engine manipulation)
// ---------------------------------------------------------------------------

#[test]
fn stale_group_commit_timeout_is_a_noop_and_never_flushes_a_newer_batch() {
    let mut c = quick_config(DebitCreditStorage::Disk, 50.0);
    c.cm.group_commit_size = 2;
    c.cm.group_commit_timeout_ms = 2.0;
    let mut sim = Simulation::new(c, debit_credit_workload(200));
    for page in 1..=3 {
        sim.activate(0, write_template(page), 0.0);
    }
    // Slot 0 opens batch seq 0 (arming its flush timeout), slot 1 fills it:
    // the batch is size-flushed and the sequence number advances.
    let seq0 = sim.commit_group_seq;
    assert_eq!(sim.join_commit_group(0, LOG_UNIT), Flow::Blocked);
    assert_eq!(sim.commit_group.len(), 1);
    assert_eq!(sim.join_commit_group(1, LOG_UNIT), Flow::Blocked);
    assert_eq!(sim.commit_group_seq, seq0 + 1);
    assert!(sim.commit_group.is_empty());
    assert_eq!(
        sim.group_writes_in_flight(),
        1,
        "one group log write in flight"
    );
    // Slot 2 opens the next batch (seq 1).
    assert_eq!(sim.join_commit_group(2, LOG_UNIT), Flow::Blocked);
    assert_eq!(sim.commit_group.len(), 1);
    // The stale timeout of the size-flushed batch seq 0 arrives now: it must
    // neither flush the newer batch early nor disturb the in-flight write.
    sim.handle_group_commit_flush(seq0);
    assert_eq!(sim.commit_group.len(), 1, "newer batch flushed early");
    assert_eq!(sim.group_writes_in_flight(), 1);
    // The newer batch's own timeout flushes it ...
    sim.handle_group_commit_flush(seq0 + 1);
    assert!(sim.commit_group.is_empty());
    assert_eq!(sim.group_writes_in_flight(), 2);
    // ... and a late duplicate timeout for it is a no-op as well.
    sim.handle_group_commit_flush(seq0 + 1);
    assert_eq!(sim.group_writes_in_flight(), 2);
    assert_eq!(sim.log_group_writes, 2);
}

#[test]
fn commit_invalidation_skips_the_committing_node_and_counts_once() {
    let mut c = data_sharing_config(3, 60.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    let mut sim = Simulation::new(c, debit_credit_workload(200));
    // Page 42 is buffered on every node; node 0 holds the freshly written
    // (dirty) copy of its committing transaction, nodes 1 and 2 hold stale
    // clean copies.  Direct bufmgr pokes bypass `buffer_fetch`, so the
    // holders index must be told by hand — exactly the invariant the
    // commit-time equivalence debug_assert enforces.
    for node in 0..3 {
        sim.nodes[node]
            .bufmgr
            .reference_page(0, PageId(42), node == 0);
        sim.note_holder(node, PageId(42));
    }
    sim.activate(0, write_template(42), 0.0);
    assert_eq!(sim.op_complete(0), Flow::Finished);
    // The committing node must keep its own just-written copy ...
    assert!(
        sim.nodes[0].bufmgr.mm_contains(PageId(42)),
        "committing node invalidated its own just-written copy"
    );
    // ... the other nodes must lose theirs ...
    assert!(!sim.nodes[1].bufmgr.mm_contains(PageId(42)));
    assert!(!sim.nodes[2].bufmgr.mm_contains(PageId(42)));
    // ... and each dropped copy is counted exactly once, on the node that
    // lost it (so the aggregate sum over nodes cannot double-count).
    assert_eq!(sim.nodes[0].bufmgr.stats().invalidations, 0);
    assert_eq!(sim.nodes[1].bufmgr.stats().invalidations, 1);
    assert_eq!(sim.nodes[2].bufmgr.stats().invalidations, 1);
    let total: u64 = sim
        .nodes
        .iter()
        .map(|n| n.bufmgr.stats().invalidations)
        .sum();
    assert_eq!(total, 2);
}

// ---------------------------------------------------------------------------
// Coherence protocols: holders index, on-request validation, direct transfer
// ---------------------------------------------------------------------------

#[test]
fn holders_index_matches_broadcast_on_randomized_multi_node_configs() {
    // Debug builds assert, at every commit fan-out, that each node outside
    // the holders mask would experience the old broadcast's
    // `invalidate_page` as a complete no-op — so simply *running* a spread
    // of multi-node shapes under the default protocol proves the index path
    // equivalent to the broadcast it replaced (any divergence panics).
    for (nodes, tps, seed) in [
        (2, 120.0, 7),
        (3, 180.0, 11),
        (5, 250.0, 23),
        (8, 320.0, 42),
    ] {
        let mut c = data_sharing_config(nodes, tps);
        c.warmup_ms = 300.0;
        c.measure_ms = 1_500.0;
        c.seed = seed;
        let report = Simulation::new(c, debit_credit_workload(100)).run();
        assert!(
            report.invalidations() > 0,
            "{nodes}-node run exercised no invalidations"
        );
        assert!(
            report.coherence.is_none(),
            "default protocol must not render a coherence section"
        );
    }
}

#[test]
fn duplicate_written_pages_intern_once_and_invalidate_once() {
    // A transaction writing the same page through two references must
    // intern one `written_pages` entry and invalidate each holder once.
    let mut c = data_sharing_config(2, 60.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    let mut sim = Simulation::new(c, debit_credit_workload(200));
    sim.nodes[1].bufmgr.reference_page(0, PageId(42), false);
    sim.note_holder(1, PageId(42));
    let mut template = write_template(42);
    template.refs.push(template.refs[0]);
    sim.activate(0, template, 0.0);
    let interned = sim.txs.tx(0).template;
    assert_eq!(
        sim.templates.entry(interned).written_pages,
        vec![(0, PageId(42))],
        "duplicate written pages must deduplicate at intern time"
    );
    sim.nodes[0].bufmgr.reference_page(0, PageId(42), true);
    sim.note_holder(0, PageId(42));
    assert_eq!(sim.op_complete(0), Flow::Finished);
    assert_eq!(sim.nodes[1].bufmgr.stats().invalidations, 1);
}

#[test]
fn on_request_validation_defers_invalidation_to_the_reference() {
    let mut c = data_sharing_config(3, 60.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    c.coherence = CoherenceParams::on_request_validate();
    let mut sim = Simulation::new(c, debit_credit_workload(200));
    for node in 0..3 {
        sim.nodes[node]
            .bufmgr
            .reference_page(0, PageId(42), node == 0);
        sim.note_holder(node, PageId(42));
    }
    sim.activate(0, write_template(42), 0.0);
    assert_eq!(sim.op_complete(0), Flow::Finished);
    // Commit sent nothing: the other nodes keep their (now stale) copies.
    assert!(sim.nodes[1].bufmgr.mm_contains(PageId(42)));
    assert!(sim.nodes[2].bufmgr.mm_contains(PageId(42)));
    assert_eq!(sim.nodes[1].bufmgr.stats().invalidations, 0);
    // The next reference validates: node 1's stamp (absent = version 0) is
    // behind the bumped global version, so the copy is discarded and the
    // validation round trip is charged — the stale hit became a miss.
    let delay = sim.validate_reference(1, PageId(42));
    assert_eq!(delay, Some(2.0 * sim.config.coherence.transfer_msg_ms));
    assert!(!sim.nodes[1].bufmgr.mm_contains(PageId(42)));
    assert_eq!(sim.nodes[1].bufmgr.stats().invalidations, 1);
    assert_eq!(sim.coherence_stats.stale_validations, 1);
    // The committer stamped its own copy with the new version: current.
    assert_eq!(sim.validate_reference(0, PageId(42)), None);
    assert!(sim.nodes[0].bufmgr.mm_contains(PageId(42)));
    // A node without any buffered copy has nothing to validate.
    assert_eq!(sim.validate_reference(2, PageId(43)), None);
}

#[test]
fn on_request_validation_eagerly_clears_superseded_dpt_entries() {
    let mut c = data_sharing_config(3, 60.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    c.coherence = CoherenceParams::on_request_validate();
    let mut sim = Simulation::new(c, debit_credit_workload(200));
    // Node 1 buffered page 42 dirty and has an unpropagated committed
    // update of its own: a dirty-page-table entry pinning the redo boundary.
    sim.nodes[1].bufmgr.reference_page(0, PageId(42), true);
    sim.note_holder(1, PageId(42));
    sim.nodes[1].bufmgr.note_committed_update(0, PageId(42), 7);
    assert_eq!(
        sim.nodes[1].bufmgr.dirty_page_table().rec_lsn(PageId(42)),
        Some(7)
    );
    let clears_before = sim.nodes[1].bufmgr.dpt_only_clears();
    // Node 0 commits a newer update to the page.
    sim.nodes[0].bufmgr.reference_page(0, PageId(42), true);
    sim.note_holder(0, PageId(42));
    sim.activate(0, write_template(42), 0.0);
    assert_eq!(sim.op_complete(0), Flow::Finished);
    // Node 1's superseded redo entry is gone at the commit — not deferred
    // to the next reference — so a checkpoint taken now records the true
    // redo boundary...
    assert_eq!(
        sim.nodes[1].bufmgr.dirty_page_table().rec_lsn(PageId(42)),
        None
    );
    assert_eq!(sim.nodes[1].bufmgr.dpt_only_clears(), clears_before + 1);
    // ...but the stale buffered copy stays (no invalidation message is
    // modelled); it is discarded only by the reference-time version check.
    assert!(sim.nodes[1].bufmgr.mm_contains(PageId(42)));
    assert_eq!(sim.nodes[1].bufmgr.stats().invalidations, 0);
    assert!(sim.validate_reference(1, PageId(42)).is_some());
    assert!(!sim.nodes[1].bufmgr.mm_contains(PageId(42)));
}

#[test]
fn direct_transfer_replaces_the_disk_reread_when_a_donor_holds_the_page() {
    let mut c = data_sharing_config(2, 60.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    c.coherence = CoherenceParams::broadcast().with_direct_transfer();
    let mut sim = Simulation::new(c, debit_credit_workload(200));
    // Node 1 holds a current copy of page 42; node 0 misses on it.
    sim.nodes[1].bufmgr.reference_page(0, PageId(42), false);
    sim.note_holder(1, PageId(42));
    let read = vec![PageOp::UnitRead {
        unit: 0,
        page: PageId(42),
    }];
    let ops = sim.convert_page_ops_with_transfer(0, PageId(42), &read);
    assert_eq!(
        ops.len(),
        2,
        "message round trip + memory copy, no disk I/O"
    );
    assert!(matches!(ops[0], MicroOp::RemoteDelay { .. }));
    assert!(matches!(ops[1], MicroOp::CpuBurst { nvem: false, .. }));
    assert_eq!(sim.coherence_stats.direct_transfers, 1);
    // No node holds page 43: the conversion falls back to the disk read.
    let read = vec![PageOp::UnitRead {
        unit: 0,
        page: PageId(43),
    }];
    let ops = sim.convert_page_ops_with_transfer(0, PageId(43), &read);
    assert!(matches!(ops.last(), Some(MicroOp::IssueIo { .. })));
    assert_eq!(sim.coherence_stats.transfer_fallback_reads, 1);
    // Eviction write-backs travelling with the miss keep their positions.
    sim.nodes[1].bufmgr.reference_page(0, PageId(44), false);
    sim.note_holder(1, PageId(44));
    let mixed = vec![
        PageOp::UnitWrite {
            unit: 0,
            page: PageId(9),
        },
        PageOp::UnitRead {
            unit: 0,
            page: PageId(44),
        },
    ];
    let ops = sim.convert_page_ops_with_transfer(0, PageId(44), &mixed);
    assert!(matches!(ops[0], MicroOp::CpuBurst { .. })); // I/O overhead
    assert!(matches!(ops[1], MicroOp::IssueIo { .. })); // the write-back
    assert!(matches!(ops[2], MicroOp::RemoteDelay { .. }));
    assert!(matches!(ops[3], MicroOp::CpuBurst { .. }));
}

#[test]
fn on_request_validate_with_direct_transfer_reports_protocol_activity() {
    let mut c = data_sharing_config(3, 200.0);
    c.warmup_ms = 500.0;
    c.measure_ms = 3_000.0;
    c.coherence = CoherenceParams::on_request_validate().with_direct_transfer();
    let report = Simulation::new(c, debit_credit_workload(100)).run();
    let coh = report
        .coherence
        .expect("non-default combination renders the coherence section");
    // The hot BRANCH/TELLER pages are written on every node, so stale hits
    // (validated and discarded at reference time) and donor-served misses
    // both occur in steady state.
    assert!(coh.stale_validations > 0, "no stale hit was ever validated");
    assert!(coh.validation_delay_ms > 0.0);
    assert!(coh.direct_transfers > 0, "no miss was donor-served");
    assert!(coh.transfer_delay_ms > 0.0);
    assert!(
        report.invalidations() >= coh.stale_validations,
        "stale discards must count as buffer invalidations"
    );
    assert!(report.completed > 0);
}

#[test]
fn every_coherence_combination_is_deterministic_and_matches_across_kernels() {
    // Same seed ⇒ byte-identical report for each protocol × transfer
    // combination, and the sharded kernel must agree with the sequential
    // oracle byte for byte.
    let combos = [
        CoherenceParams::broadcast(),
        CoherenceParams::broadcast().with_direct_transfer(),
        CoherenceParams::on_request_validate(),
        CoherenceParams::on_request_validate().with_direct_transfer(),
    ];
    for coherence in combos {
        let make = |threads: usize| {
            let mut c = data_sharing_config(3, 150.0);
            c.warmup_ms = 300.0;
            c.measure_ms = 1_500.0;
            c.coherence = coherence;
            c.parallelism.kernel_threads = threads;
            c
        };
        let a = Simulation::new(make(0), debit_credit_workload(100)).run();
        let b = Simulation::new(make(0), debit_credit_workload(100)).run();
        let sharded = Simulation::new(make(2), debit_credit_workload(100)).run();
        assert_eq!(
            format!("{a:#?}"),
            format!("{b:#?}"),
            "{coherence:?} is not deterministic"
        );
        assert_eq!(
            format!("{a:#?}"),
            format!("{sharded:#?}"),
            "{coherence:?} diverges under the sharded kernel"
        );
        assert_eq!(a.coherence.is_some(), !coherence.is_default_protocol());
    }
}

#[test]
fn lru_k1_report_is_byte_identical_to_the_default_lru() {
    let make = |k: usize| {
        let mut c = quick_config(DebitCreditStorage::Disk, 150.0);
        c.buffer.mm_buffer_pages = 300; // small pool: steady-state evictions
        c.buffer = c.buffer.clone().with_lru_k(k);
        c
    };
    let baseline =
        Simulation::new(quick_config_with_small_pool(), debit_credit_workload(100)).run();
    let k1 = Simulation::new(make(1), debit_credit_workload(100)).run();
    assert_eq!(
        format!("{baseline:#?}"),
        format!("{k1:#?}"),
        "explicit K = 1 must be byte-identical to the default LRU chain"
    );
    // K = 2 is a different replacement policy but stays deterministic.
    let k2a = Simulation::new(make(2), debit_credit_workload(100)).run();
    let k2b = Simulation::new(make(2), debit_credit_workload(100)).run();
    assert_eq!(format!("{k2a:#?}"), format!("{k2b:#?}"));
    assert!(k2a.completed > 0);
    assert!(k2a.buffer.mm_evictions > 0, "small pool must evict");
}

fn quick_config_with_small_pool() -> SimulationConfig {
    let mut c = quick_config(DebitCreditStorage::Disk, 150.0);
    c.buffer.mm_buffer_pages = 300;
    c
}

// ---------------------------------------------------------------------------
// Device I/O request scheduler: coalescing, elevator batching, prefetch
// ---------------------------------------------------------------------------

fn scheduler_params(coalesce: bool, elevator: bool, prefetch_depth: u32) -> IoSchedulerParams {
    IoSchedulerParams {
        coalesce,
        elevator,
        prefetch_depth,
        aging_bound: 16,
    }
}

/// A read-only transaction touching `len` consecutive pages of partition 0
/// starting at `start` — the ascending miss run that arms sequential
/// prefetch.
fn sequential_read_template(start: u64, len: u64) -> TransactionTemplate {
    TransactionTemplate {
        tx_type: 0,
        refs: (0..len)
            .map(|i| ObjectRef {
                partition: 0,
                page: PageId(start + i),
                object: ObjectId(start + i),
                mode: AccessMode::Read,
            })
            .collect(),
    }
}

#[test]
fn every_io_scheduler_combination_is_deterministic_and_matches_across_kernels() {
    // Same seed ⇒ byte-identical report for each scheduler policy
    // combination, and the sharded kernel must agree with the sequential
    // oracle byte for byte (scheduler submit/dispatch runs inside the
    // serial event handlers, so sharding must not reorder it).
    let combos = [
        scheduler_params(true, false, 0),
        scheduler_params(false, true, 0),
        scheduler_params(true, true, 0),
        scheduler_params(true, true, 4),
        scheduler_params(false, false, 4),
    ];
    for params in combos {
        let make = |threads: usize| {
            let mut c = data_sharing_config(3, 150.0);
            c.warmup_ms = 300.0;
            c.measure_ms = 1_500.0;
            c.buffer.mm_buffer_pages = 300; // small pools: real disk reads
            c.io_scheduler = params;
            c.parallelism.kernel_threads = threads;
            c
        };
        let a = Simulation::new(make(0), debit_credit_workload(100)).run();
        let b = Simulation::new(make(0), debit_credit_workload(100)).run();
        let sharded = Simulation::new(make(2), debit_credit_workload(100)).run();
        assert_eq!(
            format!("{a:#?}"),
            format!("{b:#?}"),
            "{params:?} is not deterministic"
        );
        assert_eq!(
            format!("{a:#?}"),
            format!("{sharded:#?}"),
            "{params:?} diverges under the sharded kernel"
        );
        assert!(
            a.devices.iter().all(|d| d.scheduler.is_some()),
            "an enabled policy must render the scheduler section on every unit"
        );
        assert!(a.completed > 0);
    }
}

#[test]
fn a_disabled_scheduler_leaves_the_report_without_a_scheduler_section() {
    let report = Simulation::new(
        quick_config(DebitCreditStorage::Disk, 50.0),
        debit_credit_workload(100),
    )
    .run();
    assert!(report.devices.iter().all(|d| d.scheduler.is_none()));
    assert!(
        !format!("{report:#?}").contains("scheduler"),
        "default config must render byte-identically to pre-scheduler reports"
    );
}

#[test]
fn coalesced_read_completion_wakes_every_joined_waiter() {
    let mut c = quick_config(DebitCreditStorage::Disk, 50.0);
    c.io_scheduler.coalesce = true;
    let mut sim = Simulation::new(c, debit_credit_workload(200));
    for _ in 0..3 {
        sim.activate(0, write_template(7), 0.0);
    }
    // Three synchronous reads of the same page: the first dispatches, the
    // other two join its in-flight request instead of paying for their own.
    for slot in 0..3 {
        assert_eq!(
            sim.op_issue_io(slot, 0, IoKind::Read, PageId(7), true, false, false),
            Flow::Blocked
        );
    }
    let stats = sim.units[0].scheduler.as_ref().expect("enabled").stats();
    assert_eq!(stats.coalesced, 2, "two of the three reads must coalesce");
    assert_eq!(sim.ios.live().count(), 1, "one physical request in flight");
    let waiters = sim
        .ios
        .live()
        .next()
        .expect("live io")
        .group_waiters
        .clone();
    assert_eq!(waiters, vec![0, 1, 2]);
    // Drive only the I/O stages to completion: every joined waiter must be
    // woken by the single completion fan-out.
    while let Some(event) = sim.queue.pop() {
        if let Ev::IoStage(io_id) = event.payload {
            sim.handle_io_stage(io_id);
        }
    }
    assert_eq!(sim.ios.live().count(), 0);
    for slot in 0..3 {
        assert_eq!(sim.txs.tx(slot).state, TxState::Ready, "slot {slot} asleep");
    }
}

#[test]
fn an_ascending_miss_run_triggers_prefetch_and_later_references_hit() {
    let mut c = quick_config(DebitCreditStorage::Disk, 50.0);
    c.io_scheduler = scheduler_params(true, false, 4);
    let mut sim = Simulation::new(c, debit_credit_workload(200));
    // Four consecutive pages, far from the debit-credit hot set: the second
    // miss forms an ascending run of 2 and read-ahead covers the rest.
    sim.activate(0, sequential_read_template(5_000, 4), 0.0);
    sim.process_ready();
    sim.run_event_loop();
    let prefetch_issued: u64 = sim
        .units
        .iter()
        .filter_map(|u| u.scheduler.as_ref())
        .map(|s| s.stats().prefetch_issued)
        .sum();
    assert!(
        prefetch_issued >= 2,
        "an ascending run must arm read-ahead (issued {prefetch_issued})"
    );
    let hits: u64 = sim.nodes[0].bufmgr.prefetch_hits().iter().sum();
    assert!(
        hits >= 1,
        "later references of the run must hit prefetched frames (hits {hits})"
    );
}

#[test]
fn log_wb_completion_decrements_occupancy() {
    let mut sim = Simulation::new(
        quick_config(DebitCreditStorage::Disk, 50.0),
        debit_credit_workload(200),
    );
    sim.log_wb_pending = 2;
    // An empty stage list completes immediately on advance.
    let io_id = sim
        .ios
        .insert(IoRequest::new(0, PageId(7), vec![], None).with_log_wb());
    sim.advance_io(io_id);
    assert_eq!(sim.log_wb_pending, 1);
}

#[test]
#[should_panic(expected = "write-buffer occupancy underflow")]
fn log_wb_underflow_is_surfaced_in_debug_builds() {
    let mut sim = Simulation::new(
        quick_config(DebitCreditStorage::Disk, 50.0),
        debit_credit_workload(200),
    );
    assert_eq!(sim.log_wb_pending, 0);
    // A log write-buffer completion without a matching reservation is an
    // accounting bug and must assert instead of clamping silently.
    let io_id = sim
        .ios
        .insert(IoRequest::new(0, PageId(8), vec![], None).with_log_wb());
    sim.advance_io(io_id);
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

/// Runs a short recovery configuration and crashes it at 1.5 s (mid
/// measurement interval).
fn quick_crash(force: bool, nvem_log: bool, interval_ms: f64) -> SimulationReport {
    let mut c = recovery_config(force, nvem_log, interval_ms, 120.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    Simulation::new(c, debit_credit_workload(100))
        .simulate_crash_at(1_500.0)
        .run()
}

#[test]
fn crash_and_restart_reports_recovery_metrics() {
    let report = quick_crash(false, false, 0.0);
    assert!(report.completed > 50, "completed {}", report.completed);
    assert!((report.measured_time_ms - 1_200.0).abs() < 1e-6);
    let rec = report.recovery.as_ref().expect("recovery section present");
    assert_eq!(rec.checkpoints_taken, 0);
    assert!(rec.redo_log_records > 0);
    assert_eq!(rec.records_per_log_page, 8); // 4096 / 512
    let restart = rec.restart.as_ref().expect("restart section present");
    assert!((restart.crash_time_ms - 1_500.0).abs() < 1e-9);
    assert!(restart.restart_ms > 0.0);
    assert!(restart.redo_records > 0);
    assert!(restart.log_pages_read > 1);
    assert!(restart.dirty_pages_at_crash > 0);
    assert!(restart.data_pages_read > 0);
    assert!(restart.locks_released_at_crash > 0);
    assert!(restart.locks_reacquired > 0);
    // The per-node redo records sum to the aggregate.
    assert_eq!(
        report.nodes.iter().map(|n| n.redo_records).sum::<u64>(),
        rec.redo_log_records
    );
}

#[test]
fn checkpoints_truncate_the_log_and_cost_overhead() {
    let without = quick_crash(true, false, 0.0);
    let with = quick_crash(true, false, 400.0);
    let rec = with.recovery.as_ref().unwrap();
    assert!(
        rec.checkpoints_taken >= 2,
        "{} checkpoints",
        rec.checkpoints_taken
    );
    assert!(rec.checkpoint_overhead_ms > 0.0);
    assert!(rec.log_records_truncated > 0);
    // Under FORCE every committed update is propagated at commit, so the
    // dirty-page tables stay empty and each checkpoint advances the redo
    // boundary to the log's end: the redo tail at the crash is a fraction of
    // the un-checkpointed one.
    let redo_with = rec.restart.as_ref().unwrap().redo_records;
    let redo_without = without
        .recovery
        .as_ref()
        .unwrap()
        .restart
        .as_ref()
        .unwrap()
        .redo_records;
    assert!(
        redo_with * 2 < redo_without,
        "checkpoints should bound the redo tail: {redo_with} vs {redo_without}"
    );
}

#[test]
fn force_restart_is_a_pure_log_scan() {
    let report = quick_crash(true, false, 0.0);
    let restart = report.recovery.as_ref().unwrap().restart.as_ref().unwrap();
    // FORCE propagates at commit: nothing is lost, nothing is re-read.
    assert_eq!(restart.dirty_pages_at_crash, 0);
    assert_eq!(restart.data_pages_read, 0);
    assert_eq!(restart.locks_reacquired, 0);
    assert!(restart.log_pages_read > 0);
    let noforce = quick_crash(false, false, 0.0);
    let noforce_restart = noforce.recovery.as_ref().unwrap().restart.as_ref().unwrap();
    assert!(
        restart.restart_ms < noforce_restart.restart_ms,
        "FORCE restart {} ms vs NOFORCE restart {} ms",
        restart.restart_ms,
        noforce_restart.restart_ms
    );
}

#[test]
fn nvem_resident_log_shortens_restart() {
    let disk = quick_crash(false, false, 0.0);
    let nvem = quick_crash(false, true, 0.0);
    assert!(
        nvem.restart_ms() < disk.restart_ms(),
        "NVEM log restart {} ms vs disk log restart {} ms",
        nvem.restart_ms(),
        disk.restart_ms()
    );
}

#[test]
fn recovery_is_deterministic_for_fixed_seed_and_crash_point() {
    let a = quick_crash(false, false, 300.0);
    let b = quick_crash(false, false, 300.0);
    assert_eq!(
        a, b,
        "same seed + same crash point must reproduce the report"
    );
}

#[test]
fn disabled_recovery_reports_nothing_and_stays_deterministic() {
    let make = || {
        let mut c = quick_config(DebitCreditStorage::Disk, 80.0);
        c.recovery = RecoveryParams::disabled();
        Simulation::new(c, debit_credit_workload(100)).run()
    };
    let a = make();
    assert!(a.recovery.is_none(), "inactive recovery must not report");
    assert!(a.nodes.iter().all(|n| n.redo_records == 0));
    assert_eq!(a, make());
}

#[test]
fn multi_node_crash_replays_every_nodes_redo_records() {
    let mut c = data_sharing_config(2, 120.0);
    c.warmup_ms = 300.0;
    c.measure_ms = 1_500.0;
    c.recovery = RecoveryParams::noforce(500.0);
    let report = Simulation::new(c, debit_credit_workload(100))
        .simulate_crash_at(1_500.0)
        .run();
    let rec = report.recovery.as_ref().expect("recovery section");
    assert_eq!(report.nodes.len(), 2);
    for node in &report.nodes {
        assert!(node.redo_records > 0, "node {} logged nothing", node.node);
    }
    assert_eq!(
        report.nodes.iter().map(|n| n.redo_records).sum::<u64>(),
        rec.redo_log_records
    );
    let restart = rec.restart.as_ref().expect("restart section");
    assert!(restart.redo_records > 0);
    assert!(restart.restart_ms > 0.0);
}

#[test]
#[should_panic(expected = "crash point")]
fn crash_point_outside_the_measurement_interval_is_rejected() {
    let c = quick_config(DebitCreditStorage::Disk, 50.0);
    let _ = Simulation::new(c, debit_credit_workload(100)).simulate_crash_at(100.0);
}

#[test]
fn nvem_log_device_topology_is_pure_config() {
    // The paper's log variants are disk-based or synchronous NVEM; with the
    // pluggable device layer an *NVEM server device* in the log slot is just
    // configuration.  The log write then queues at the NVEM servers instead
    // of paying a disk access, so the run behaves like the fast log variants.
    let mut config = crate::presets::nvem_log_device_config(150.0);
    config.warmup_ms = 300.0;
    config.measure_ms = 1_500.0;
    assert_eq!(config.devices[LOG_UNIT], NvemDeviceParams::default().into());
    assert_eq!(config.log_allocation, LogAllocation::DiskUnit(LOG_UNIT));
    let report = Simulation::new(config, debit_credit_workload(100)).run();
    assert!(report.completed > 50);
    // All log writes were absorbed by the NVEM device.
    assert!(report.devices[LOG_UNIT].stats.writes > 0);
    assert_eq!(
        report.devices[LOG_UNIT].stats.writes,
        report.devices[LOG_UNIT].stats.absorbed_writes
    );
    assert_eq!(report.devices[LOG_UNIT].disk_utilization, 0.0);
    // And the response time stays far below the disk-log configuration.
    let disk_log = Simulation::new(
        quick_config(DebitCreditStorage::Disk, 150.0),
        debit_credit_workload(100),
    )
    .run();
    assert!(report.response_time.mean < disk_log.response_time.mean);
}
