//! CPU burst scheduling.
//!
//! Transactions share the CPU servers of the node they *execute* on (an FCFS
//! multi-server resource per computing module) — their home node, except
//! while a shared-nothing transaction runs function-shipped at a partition
//! owner.  A burst either starts immediately or queues; when a burst
//! finishes, the freed CPU is handed to the oldest queued burst of the same
//! node and the finished transaction re-enters the ready queue.

use dbmodel::WorkloadGenerator;
use simkernel::resource::Acquire;
use simkernel::time::{instr_time, SimTime};

use super::transaction::{MicroOp, TxState};
use super::{Ev, Flow, Simulation};

impl<W: WorkloadGenerator> Simulation<W> {
    pub(super) fn op_cpu_burst(&mut self, slot: usize, ms: SimTime, nvem: bool) -> Flow {
        let now = self.queue.now();
        if nvem {
            self.nvem_busy += self.config.nvem.access_time;
        }
        let node = {
            let tx = self.txs.tx_mut(slot);
            tx.pending_burst = ms;
            tx.pending_burst_nvem = nvem;
            tx.exec_node
        };
        match self.nodes[node].cpus.acquire(now, slot as u64) {
            Acquire::Granted => {
                self.txs.tx_mut(slot).state = TxState::RunningCpu;
                self.sched_in(ms, Ev::CpuDone(slot));
            }
            Acquire::Queued => {
                self.txs.tx_mut(slot).state = TxState::WaitingCpu;
            }
        }
        Flow::Blocked
    }

    pub(super) fn handle_cpu_done(&mut self, slot: usize) {
        let now = self.queue.now();
        // The burst ran (and the freed CPU lives) at the executing node,
        // which cannot have changed while the transaction held the CPU.
        let node = self.exec_node_of(slot);
        // Free the CPU and hand it to the node's next queued burst, if any.
        if let Some(next) = self.nodes[node].cpus.release(now) {
            let nslot = next as usize;
            if let Some(tx) = self.txs.get_mut(nslot) {
                tx.state = TxState::RunningCpu;
                let burst = tx.pending_burst;
                self.sched_in(burst, Ev::CpuDone(nslot));
            }
        }
        if let Some(tx) = self.txs.get_mut(slot) {
            tx.state = TxState::Ready;
            self.ready.push_back(slot);
        }
    }

    /// A CPU burst covering the operating-system/DBMS overhead of one I/O.
    pub(super) fn io_overhead_burst(&mut self) -> MicroOp {
        let cm = self.config.cm;
        MicroOp::CpuBurst {
            ms: instr_time(self.service_rng.exponential(cm.instr_io), cm.mips),
            nvem: false,
        }
    }
}
