//! Per-transaction execution state.
//!
//! A transaction progresses through BOT processing, its object references
//! (CPU burst → lock request → buffer fetch with possible I/O), and commit
//! processing (EOT burst, log write, FORCE writes, lock release).  The engine
//! drives this as a queue of *micro operations*; whenever the queue runs dry
//! the transaction's phase generates the next batch.
//!
//! The transaction does not own its reference string: `template` indexes the
//! engine's shared [`TemplateTable`], which also carries the per-template
//! derived data (update flag, distinct written pages).
//!
//! [`TemplateTable`]: super::arena::TemplateTable

use std::collections::VecDeque;

use dbmodel::PageId;
use simkernel::time::SimTime;
use storage::IoKind;

/// One step of a transaction that the engine knows how to execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum MicroOp {
    /// Acquire a CPU, stay busy for `ms` milliseconds, release.  `nvem` marks
    /// bursts that represent a synchronous NVEM page transfer (for NVEM
    /// utilization accounting).
    CpuBurst { ms: SimTime, nvem: bool },
    /// Issue an I/O at disk unit `unit`.  With `wait` the transaction blocks
    /// until the foreground part completes; with `notify` the buffer manager
    /// is informed when the (asynchronous) write finishes.  `log_wb` marks
    /// asynchronous log writes going through the NVEM write buffer.
    IssueIo {
        unit: usize,
        kind: IoKind,
        page: PageId,
        wait: bool,
        notify: bool,
        log_wb: bool,
    },
    /// Request the lock for object reference `ref_idx`.
    Lock { ref_idx: usize },
    /// Pure delay of `ms` (the message round trip of a remote request to the
    /// global lock service in a data-sharing configuration).
    RemoteDelay { ms: SimTime },
    /// Shared nothing: ship execution to `node` (one-way message of the
    /// configured `remote_msg_ms`).  The transaction blocks until
    /// [`Ev::RemoteDone`](super::Ev) delivers the message; subsequent micro
    /// operations (CPU bursts, lock requests, buffer fetches, I/O) run at
    /// `node` until the next `RemoteCall` ships execution elsewhere (the
    /// reply leg ships it back home).
    RemoteCall { node: usize },
    /// Shared nothing: the two-phase commit exchange with `participants`
    /// remote owner nodes — one prepare round trip (the prepare/vote
    /// messages to all participants travel in parallel) followed by
    /// asynchronous commit messages the committer does not wait for.
    CommitExchange { participants: u32 },
    /// Write the commit log record (resolved against the log allocation).
    LogWrite,
    /// Join the open group-commit batch for log device `unit` and block
    /// until the batch's shared log write completes.
    JoinCommitGroup { unit: usize },
    /// FORCE strategy: write all pages modified by the transaction.
    ForcePages,
    /// Finish the transaction: release locks, record statistics, free the slot.
    Complete,
}

/// Coarse execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxPhase {
    /// The transaction still has to perform object reference `next_ref` (BOT
    /// processing happens before reference 0).
    BeforeAccess { next_ref: usize },
    /// All commit-time micro operations have been queued.
    Committing,
}

/// What the transaction is currently waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TxState {
    /// Ready to execute the next micro operation.
    Ready,
    /// Queued at the CPU resource.
    WaitingCpu,
    /// Currently holding a CPU (a `CpuDone` event is scheduled).
    RunningCpu,
    /// Blocked on a lock request.
    WaitingLock,
    /// Waiting for a synchronous I/O to complete.
    WaitingIo,
    /// Waiting for a message round trip to the global lock service.
    WaitingMessage,
}

/// The dynamic state of one active transaction.
#[derive(Debug)]
pub(crate) struct Transaction {
    /// Globally unique transaction identifier (used by the lock manager; its
    /// numeric order defines the lock manager's wake-up order, so it is
    /// never replaced by an arena index).
    pub id: u64,
    /// The computing module (node) the transaction runs on (its *home*:
    /// where it was admitted, where it occupies an MPL slot and where its
    /// completion is counted).
    pub node: usize,
    /// The node the transaction currently *executes* at.  Always equal to
    /// `node` under data sharing; in a shared-nothing run a
    /// [`MicroOp::RemoteCall`] ships execution to the owner of a remote
    /// partition (CPU bursts and buffer fetches then use that node's
    /// resources) and a second `RemoteCall` ships it back home.
    pub exec_node: usize,
    /// Index of the transaction's reference string in the engine's shared
    /// template table.
    pub template: u32,
    /// Arrival time at the SOURCE (response time is measured from here).
    pub arrival: SimTime,
    /// Coarse phase.
    pub phase: TxPhase,
    /// Pending micro operations.
    pub micro: VecDeque<MicroOp>,
    /// Wait state.
    pub state: TxState,
    /// CPU burst length waiting for a CPU grant.
    pub pending_burst: SimTime,
    /// Whether the pending burst is an NVEM transfer.
    pub pending_burst_nvem: bool,
    /// Object reference index whose lock request is outstanding.
    pub pending_lock_ref: Option<usize>,
    /// The message round trip for the current lock request was already paid
    /// (so a re-executed [`MicroOp::Lock`] does not pay it twice).
    pub lock_msg_paid: bool,
    /// Number of deadlock-induced restarts.
    pub restarts: u32,
    /// Page of this transaction's most recent buffer miss that went to a
    /// disk unit (sequential-prefetch detection; only maintained while the
    /// I/O scheduler prefetches).
    pub last_miss_page: Option<PageId>,
    /// Length of the current ascending-page miss run ending at
    /// `last_miss_page`.  A run of ≥ 2 triggers speculative read-ahead.
    pub miss_run: u32,
}

impl Transaction {
    /// Creates a freshly arrived transaction on `node`.
    pub fn new(id: u64, node: usize, template: u32, arrival: SimTime) -> Self {
        Self {
            id,
            node,
            exec_node: node,
            template,
            arrival,
            phase: TxPhase::BeforeAccess { next_ref: 0 },
            micro: VecDeque::new(),
            state: TxState::Ready,
            pending_burst: 0.0,
            pending_burst_nvem: false,
            pending_lock_ref: None,
            lock_msg_paid: false,
            restarts: 0,
            last_miss_page: None,
            miss_run: 0,
        }
    }

    /// Re-initialises a completed transaction's carcass for the next arrival
    /// on its slot, keeping the micro queue's allocation.
    pub fn reuse(&mut self, id: u64, node: usize, template: u32, arrival: SimTime) {
        self.id = id;
        self.node = node;
        self.exec_node = node;
        self.template = template;
        self.arrival = arrival;
        self.phase = TxPhase::BeforeAccess { next_ref: 0 };
        self.micro.clear();
        self.state = TxState::Ready;
        self.pending_burst = 0.0;
        self.pending_burst_nvem = false;
        self.pending_lock_ref = None;
        self.lock_msg_paid = false;
        self.restarts = 0;
        self.last_miss_page = None;
        self.miss_run = 0;
    }

    /// Resets the transaction for a restart after a deadlock abort.  The
    /// reference string and arrival time are kept, so the response time keeps
    /// accumulating across restarts.
    pub fn restart(&mut self) {
        self.phase = TxPhase::BeforeAccess { next_ref: 0 };
        self.micro.clear();
        self.state = TxState::Ready;
        // A victim shipped to a remote owner restarts at home (the abort
        // notification itself is not charged).
        self.exec_node = self.node;
        self.pending_lock_ref = None;
        self.lock_msg_paid = false;
        self.restarts += 1;
        // The re-execution's misses form a fresh run.
        self.last_miss_page = None;
        self.miss_run = 0;
    }

    /// Pushes a batch of micro operations to the *front* of the queue,
    /// preserving their order (used when one operation expands into several,
    /// e.g. a buffer fetch that needs a victim write-back plus a read).
    pub fn push_ops_front(&mut self, ops: Vec<MicroOp>) {
        for op in ops.into_iter().rev() {
            self.micro.push_front(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_resets_progress_but_keeps_arrival() {
        let mut tx = Transaction::new(1, 0, 7, 42.0);
        tx.phase = TxPhase::Committing;
        tx.micro.push_back(MicroOp::Complete);
        tx.pending_lock_ref = Some(2);
        tx.exec_node = 3; // shipped to a remote owner when the deadlock hit
        tx.last_miss_page = Some(PageId(9));
        tx.miss_run = 3;
        tx.restart();
        assert_eq!(tx.exec_node, 0, "restart must return execution home");
        assert_eq!(tx.phase, TxPhase::BeforeAccess { next_ref: 0 });
        assert!(tx.micro.is_empty());
        assert_eq!(tx.pending_lock_ref, None);
        assert_eq!(tx.last_miss_page, None, "restart starts a fresh miss run");
        assert_eq!(tx.miss_run, 0);
        assert_eq!(tx.restarts, 1);
        assert_eq!(tx.arrival, 42.0);
        assert_eq!(tx.template, 7);
        assert_eq!(tx.state, TxState::Ready);
    }

    #[test]
    fn reuse_resets_everything_including_restart_count() {
        let mut tx = Transaction::new(1, 0, 7, 42.0);
        tx.restart();
        tx.micro.push_back(MicroOp::Complete);
        tx.lock_msg_paid = true;
        tx.exec_node = 5;
        tx.last_miss_page = Some(PageId(4));
        tx.miss_run = 2;
        tx.reuse(9, 2, 3, 100.0);
        assert_eq!((tx.id, tx.node, tx.template, tx.arrival), (9, 2, 3, 100.0));
        assert_eq!(tx.exec_node, 2);
        assert_eq!(tx.phase, TxPhase::BeforeAccess { next_ref: 0 });
        assert!(tx.micro.is_empty());
        assert!(!tx.lock_msg_paid);
        assert_eq!(tx.restarts, 0);
        assert_eq!(tx.last_miss_page, None);
        assert_eq!(tx.miss_run, 0);
    }

    #[test]
    fn push_ops_front_preserves_order() {
        let mut tx = Transaction::new(1, 0, 0, 0.0);
        tx.micro.push_back(MicroOp::Complete);
        tx.push_ops_front(vec![
            MicroOp::CpuBurst {
                ms: 1.0,
                nvem: false,
            },
            MicroOp::LogWrite,
        ]);
        let order: Vec<MicroOp> = tx.micro.iter().copied().collect();
        assert_eq!(
            order,
            vec![
                MicroOp::CpuBurst {
                    ms: 1.0,
                    nvem: false
                },
                MicroOp::LogWrite,
                MicroOp::Complete,
            ]
        );
    }
}
