//! The lock manager: ties the lock table, the waits-for graph and the
//! per-partition concurrency-control modes together and keeps the statistics
//! TPSIM reports (lock requests, conflicts, deadlocks).

use std::collections::HashMap;

use dbmodel::{AccessMode, Database, ObjectRef, PartitionId};

use crate::deadlock::WaitsForGraph;
use crate::table::{LockMode, LockTable, LockableId, TableOutcome, TxId};

/// Concurrency-control mode of a partition (§3.2: "no CC, page-level CC, or
/// object-level CC for partition i").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcMode {
    /// No locks are acquired for this partition (e.g. the Debit-Credit
    /// HISTORY file, synchronized by latches in a real system).
    None,
    /// Page-granularity two-phase locking.
    #[default]
    Page,
    /// Object-granularity two-phase locking.
    Object,
}

/// Outcome of a lock request as seen by the transaction system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted (or no lock is needed) — continue processing.
    Granted,
    /// The request conflicts; the transaction must block until woken.
    Blocked,
    /// Granting the wait would close a waits-for cycle; the requesting
    /// transaction must be aborted ("the transaction causing the deadlock is
    /// aborted to break the cycle").
    Deadlock,
}

/// A lock request derived from an object reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRequest {
    /// The item to lock (page or object id depending on partition CC mode),
    /// or `None` when the partition is not subject to locking.
    pub item: Option<LockableId>,
    /// Requested mode.
    pub mode: LockMode,
}

/// Counters kept by the lock manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockManagerStats {
    /// Lock requests issued (excluding partitions with `CcMode::None`).
    pub requests: u64,
    /// Requests granted immediately.
    pub immediate_grants: u64,
    /// Requests that had to wait.
    pub conflicts: u64,
    /// Deadlocks detected (= transactions aborted by the lock manager).
    pub deadlocks: u64,
    /// Lock releases.
    pub releases: u64,
}

/// The lock manager.
#[derive(Debug)]
pub struct LockManager {
    modes: Vec<CcMode>,
    table: LockTable,
    graph: WaitsForGraph,
    /// Locks currently held per transaction (for release at EOT / abort).
    /// A plain de-duplicated `Vec` per transaction: transactions hold few
    /// locks, so a linear membership check beats hashing on the per-request
    /// hot path.
    held: HashMap<TxId, Vec<LockableId>>,
    /// The single item each blocked transaction is waiting for.
    waiting_on: HashMap<TxId, LockableId>,
    stats: LockManagerStats,
}

impl LockManager {
    /// Creates a lock manager with the given per-partition modes.
    pub fn new(modes: Vec<CcMode>) -> Self {
        Self {
            modes,
            table: LockTable::new(),
            graph: WaitsForGraph::new(),
            held: HashMap::new(),
            waiting_on: HashMap::new(),
            stats: LockManagerStats::default(),
        }
    }

    /// Convenience constructor: the same mode for every partition of `db`.
    pub fn uniform(db: &Database, mode: CcMode) -> Self {
        Self::new(vec![mode; db.num_partitions()])
    }

    /// Overrides the mode of one partition.
    pub fn set_mode(&mut self, partition: PartitionId, mode: CcMode) {
        if partition >= self.modes.len() {
            self.modes.resize(partition + 1, CcMode::default());
        }
        self.modes[partition] = mode;
    }

    /// The mode configured for `partition` (default page-level).
    pub fn mode(&self, partition: PartitionId) -> CcMode {
        self.modes.get(partition).copied().unwrap_or_default()
    }

    /// Current statistics.
    pub fn stats(&self) -> LockManagerStats {
        self.stats
    }

    /// Resets the statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = LockManagerStats::default();
    }

    /// Number of transactions currently blocked on a lock.
    pub fn blocked_transactions(&self) -> usize {
        self.waiting_on.len()
    }

    /// Number of locks currently held by `tx`.
    pub fn locks_held(&self, tx: TxId) -> usize {
        self.held.get(&tx).map(Vec::len).unwrap_or(0)
    }

    /// Translates an object reference into a lock request according to the
    /// partition's CC mode.
    pub fn request_for(&self, r: &ObjectRef) -> LockRequest {
        let mode = if r.mode == AccessMode::Write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        let item = match self.mode(r.partition) {
            CcMode::None => None,
            CcMode::Page => Some(LockableId::Page(r.page)),
            CcMode::Object => Some(LockableId::Object(r.object)),
        };
        LockRequest { item, mode }
    }

    /// Requests the lock needed for object reference `r` on behalf of `tx`.
    pub fn acquire(&mut self, tx: TxId, r: &ObjectRef) -> LockOutcome {
        let req = self.request_for(r);
        let Some(item) = req.item else {
            return LockOutcome::Granted;
        };
        self.stats.requests += 1;
        match self.table.request(item, tx, req.mode) {
            TableOutcome::Granted => {
                self.stats.immediate_grants += 1;
                let held = self.held.entry(tx).or_default();
                if !held.contains(&item) {
                    held.push(item);
                }
                LockOutcome::Granted
            }
            TableOutcome::Blocked => {
                let blockers = self.table.wait_for_set(item, tx, req.mode);
                if self.graph.would_deadlock(tx, &blockers) {
                    // Abort the requester: remove the queued request again.
                    self.table.cancel_wait(item, tx);
                    self.stats.deadlocks += 1;
                    LockOutcome::Deadlock
                } else {
                    self.graph.add_waits(tx, &blockers);
                    self.waiting_on.insert(tx, item);
                    self.stats.conflicts += 1;
                    LockOutcome::Blocked
                }
            }
        }
    }

    /// Called when the lock table has granted a queued request of `tx`
    /// (returned from a release).  Marks the lock as held and clears the
    /// waits-for edges.
    fn on_wakeup(&mut self, tx: TxId) {
        if let Some(item) = self.waiting_on.remove(&tx) {
            let held = self.held.entry(tx).or_default();
            if !held.contains(&item) {
                held.push(item);
            }
        }
        self.graph.clear_waits(tx);
    }

    /// Releases all locks of `tx` (strict 2PL: at commit, phase 2).
    /// Returns the transactions whose queued requests became granted; the
    /// caller must resume them.
    pub fn release_all(&mut self, tx: TxId) -> Vec<TxId> {
        let items = self.held.remove(&tx).unwrap_or_default();
        let mut woken = Vec::new();
        for item in items {
            self.stats.releases += 1;
            for w in self.table.release(item, tx) {
                self.on_wakeup(w);
                woken.push(w);
            }
        }
        self.graph.remove_transaction(tx);
        woken.sort_unstable();
        woken.dedup();
        woken
    }

    /// Aborts `tx`: cancels a pending wait if any and releases all held locks.
    /// Returns the transactions woken by the released locks.
    pub fn abort(&mut self, tx: TxId) -> Vec<TxId> {
        if let Some(item) = self.waiting_on.remove(&tx) {
            self.table.cancel_wait(item, tx);
        }
        self.release_all(tx)
    }

    /// True if `tx` is currently blocked.
    pub fn is_blocked(&self, tx: TxId) -> bool {
        self.waiting_on.contains_key(&tx)
    }

    /// Crash recovery: drops every held lock and every queued request at
    /// once (the transactions holding them died with the system; a restart
    /// begins with an empty lock table).  Returns the number of locks that
    /// were held at the crash.  Statistics and CC modes are preserved so the
    /// final report still describes the whole run.
    pub fn crash_reset(&mut self) -> u64 {
        // analyzer: allow(hash-iter): sum of set sizes is order-independent
        let held: u64 = self.held.values().map(|s| s.len() as u64).sum();
        self.table = LockTable::new();
        self.graph = WaitsForGraph::new();
        self.held.clear();
        self.waiting_on.clear();
        held
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{ObjectId, PageId};

    fn obj_ref(partition: usize, page: u64, object: u64, write: bool) -> ObjectRef {
        ObjectRef {
            partition,
            page: PageId(page),
            object: ObjectId(object),
            mode: if write {
                AccessMode::Write
            } else {
                AccessMode::Read
            },
        }
    }

    fn page_level_mgr() -> LockManager {
        LockManager::new(vec![CcMode::Page, CcMode::Object, CcMode::None])
    }

    #[test]
    fn cc_mode_none_always_grants() {
        let mut m = page_level_mgr();
        for i in 0..100 {
            assert_eq!(m.acquire(i, &obj_ref(2, 1, 1, true)), LockOutcome::Granted);
        }
        assert_eq!(m.stats().requests, 0);
        assert_eq!(m.locks_held(0), 0);
    }

    #[test]
    fn page_level_conflicts_on_same_page_different_objects() {
        let mut m = page_level_mgr();
        assert_eq!(
            m.acquire(1, &obj_ref(0, 10, 100, true)),
            LockOutcome::Granted
        );
        // Different object, same page → conflict under page-level locking.
        assert_eq!(
            m.acquire(2, &obj_ref(0, 10, 101, true)),
            LockOutcome::Blocked
        );
        assert!(m.is_blocked(2));
        assert_eq!(m.stats().conflicts, 1);
    }

    #[test]
    fn object_level_allows_same_page_different_objects() {
        let mut m = page_level_mgr();
        assert_eq!(
            m.acquire(1, &obj_ref(1, 10, 100, true)),
            LockOutcome::Granted
        );
        assert_eq!(
            m.acquire(2, &obj_ref(1, 10, 101, true)),
            LockOutcome::Granted
        );
        assert_eq!(
            m.acquire(3, &obj_ref(1, 10, 100, true)),
            LockOutcome::Blocked
        );
    }

    #[test]
    fn read_locks_are_shared() {
        let mut m = page_level_mgr();
        assert_eq!(m.acquire(1, &obj_ref(0, 5, 1, false)), LockOutcome::Granted);
        assert_eq!(m.acquire(2, &obj_ref(0, 5, 2, false)), LockOutcome::Granted);
        assert_eq!(m.acquire(3, &obj_ref(0, 5, 3, true)), LockOutcome::Blocked);
    }

    #[test]
    fn release_wakes_waiter_and_reports_it() {
        let mut m = page_level_mgr();
        m.acquire(1, &obj_ref(0, 10, 1, true));
        assert_eq!(m.acquire(2, &obj_ref(0, 10, 2, true)), LockOutcome::Blocked);
        let woken = m.release_all(1);
        assert_eq!(woken, vec![2]);
        assert!(!m.is_blocked(2));
        assert_eq!(m.locks_held(2), 1);
        // tx 2 can later release without issue.
        assert!(m.release_all(2).is_empty());
        assert_eq!(m.stats().releases, 2);
    }

    #[test]
    fn deadlock_detected_and_requester_aborted() {
        let mut m = page_level_mgr();
        // T1 holds page 1, T2 holds page 2.
        assert_eq!(m.acquire(1, &obj_ref(0, 1, 1, true)), LockOutcome::Granted);
        assert_eq!(m.acquire(2, &obj_ref(0, 2, 2, true)), LockOutcome::Granted);
        // T1 waits for page 2.
        assert_eq!(m.acquire(1, &obj_ref(0, 2, 3, true)), LockOutcome::Blocked);
        // T2 requesting page 1 closes the cycle → deadlock, T2 is the victim.
        assert_eq!(m.acquire(2, &obj_ref(0, 1, 4, true)), LockOutcome::Deadlock);
        assert_eq!(m.stats().deadlocks, 1);
        // Aborting T2 releases page 2 and wakes T1.
        let woken = m.abort(2);
        assert_eq!(woken, vec![1]);
        assert_eq!(m.locks_held(1), 2);
    }

    #[test]
    fn abort_of_waiting_transaction_cancels_wait() {
        let mut m = page_level_mgr();
        m.acquire(1, &obj_ref(0, 1, 1, true));
        assert_eq!(m.acquire(2, &obj_ref(0, 1, 2, true)), LockOutcome::Blocked);
        let woken = m.abort(2);
        assert!(woken.is_empty());
        assert!(!m.is_blocked(2));
        // T1's later release wakes nobody.
        assert!(m.release_all(1).is_empty());
    }

    #[test]
    fn repeated_access_to_same_page_takes_one_lock() {
        let mut m = page_level_mgr();
        assert_eq!(m.acquire(1, &obj_ref(0, 3, 1, false)), LockOutcome::Granted);
        assert_eq!(m.acquire(1, &obj_ref(0, 3, 2, true)), LockOutcome::Granted);
        assert_eq!(m.locks_held(1), 1);
        assert_eq!(m.stats().requests, 2);
        assert_eq!(m.stats().immediate_grants, 2);
    }

    #[test]
    fn set_mode_overrides_partition() {
        let db_less = LockManager::new(vec![CcMode::Page]);
        assert_eq!(db_less.mode(5), CcMode::Page); // default for unknown
        let mut m = LockManager::new(vec![CcMode::Page]);
        m.set_mode(0, CcMode::None);
        assert_eq!(m.mode(0), CcMode::None);
        m.set_mode(3, CcMode::Object);
        assert_eq!(m.mode(3), CcMode::Object);
        assert_eq!(m.mode(1), CcMode::Page);
    }

    #[test]
    fn blocked_transaction_count_tracks_waiters() {
        let mut m = page_level_mgr();
        m.acquire(1, &obj_ref(0, 1, 1, true));
        m.acquire(2, &obj_ref(0, 1, 1, true));
        m.acquire(3, &obj_ref(0, 1, 1, true));
        assert_eq!(m.blocked_transactions(), 2);
        m.release_all(1);
        assert_eq!(m.blocked_transactions(), 1);
    }

    #[test]
    fn crash_reset_drops_all_locks_and_waiters() {
        let mut m = page_level_mgr();
        assert_eq!(m.acquire(1, &obj_ref(0, 1, 1, true)), LockOutcome::Granted);
        assert_eq!(m.acquire(1, &obj_ref(0, 2, 2, true)), LockOutcome::Granted);
        assert_eq!(m.acquire(2, &obj_ref(0, 1, 3, true)), LockOutcome::Blocked);
        let before = m.stats();
        assert_eq!(m.crash_reset(), 2);
        assert_eq!(m.blocked_transactions(), 0);
        assert_eq!(m.locks_held(1), 0);
        // Stats survive the crash (the report covers the whole run) ...
        assert_eq!(m.stats(), before);
        // ... and the table is genuinely empty: a restart transaction can
        // take any lock immediately, including the previously contended one.
        assert_eq!(m.acquire(9, &obj_ref(0, 1, 1, true)), LockOutcome::Granted);
        assert_eq!(m.release_all(9), Vec::<TxId>::new());
    }

    #[test]
    fn reset_stats_clears_counts() {
        let mut m = page_level_mgr();
        m.acquire(1, &obj_ref(0, 1, 1, true));
        m.reset_stats();
        assert_eq!(m.stats(), LockManagerStats::default());
    }
}
