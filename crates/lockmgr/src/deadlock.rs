//! Waits-for graph and cycle (deadlock) detection.
//!
//! "Deadlock checks are performed for every denied lock request; the
//! transaction causing the deadlock is aborted to break the cycle." (§3.2)
//!
//! The graph stores, for every blocked transaction, the set of transactions it
//! waits for.  Detection is a depth-first reachability check starting from the
//! newly blocked transaction: if it can reach itself, the new request closes a
//! cycle and the requester is chosen as the victim.
//!
//! The graph sits on the lock manager's per-commit path
//! ([`WaitsForGraph::remove_transaction`] runs for *every* release), so it
//! keeps a reverse index (blocker → waiters) to remove a transaction in
//! `O(degree)` instead of scanning every blocked transaction, reuses its
//! DFS scratch buffers across checks instead of allocating per denied
//! request, and recycles the per-transaction edge sets through a free pool:
//! under contention, transactions block and release continuously, and
//! without the pool every block/release pair allocated (and dropped) fresh
//! `HashSet`s on this hot path.

use std::collections::{HashMap, HashSet};

use crate::table::TxId;

/// The waits-for graph.
#[derive(Debug, Default)]
pub struct WaitsForGraph {
    /// `edges[t]` = set of transactions `t` is waiting for.
    edges: HashMap<TxId, HashSet<TxId>>,
    /// `reverse[t]` = set of transactions waiting for `t` (incoming edges),
    /// kept in lockstep with `edges` so removal never scans the whole graph.
    reverse: HashMap<TxId, HashSet<TxId>>,
    /// Pool of emptied edge sets, recycled by `add_waits` so the steady
    /// block/release churn stops allocating (sets keep their capacity).
    pool: Vec<HashSet<TxId>>,
    /// DFS scratch (cleared per check, allocation reused).
    visited: HashSet<TxId>,
    /// DFS stack scratch.
    stack: Vec<TxId>,
}

impl WaitsForGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds edges `waiter → blocker` for every blocker.
    pub fn add_waits(&mut self, waiter: TxId, blockers: &[TxId]) {
        if blockers.is_empty() {
            return;
        }
        let pool = &mut self.pool;
        let reverse = &mut self.reverse;
        let set = self
            .edges
            .entry(waiter)
            .or_insert_with(|| pool.pop().unwrap_or_default());
        for b in blockers {
            if *b != waiter && set.insert(*b) {
                reverse
                    .entry(*b)
                    .or_insert_with(|| pool.pop().unwrap_or_default())
                    .insert(waiter);
            }
        }
    }

    /// Removes all outgoing edges of `waiter` (it is no longer blocked).
    pub fn clear_waits(&mut self, waiter: TxId) {
        if let Some(mut blockers) = self.edges.remove(&waiter) {
            // analyzer: allow(hash-iter): set removals commute; order cannot escape
            for b in blockers.drain() {
                if let Some(set) = self.reverse.get_mut(&b) {
                    set.remove(&waiter);
                    if set.is_empty() {
                        let set = self.reverse.remove(&b).expect("reverse set exists");
                        self.pool.push(set);
                    }
                }
            }
            // The drained (empty, capacity-keeping) set goes back to the pool.
            self.pool.push(blockers);
        }
    }

    /// Removes a transaction completely: its outgoing edges and every incoming
    /// edge (other transactions no longer wait for it).
    pub fn remove_transaction(&mut self, tx: TxId) {
        self.clear_waits(tx);
        if let Some(mut waiters) = self.reverse.remove(&tx) {
            // analyzer: allow(hash-iter): set removals commute; order cannot escape
            for w in waiters.drain() {
                if let Some(set) = self.edges.get_mut(&w) {
                    set.remove(&tx);
                    // An empty outgoing set is kept until `clear_waits`: the
                    // transaction is still blocked in the lock table, its
                    // remaining blockers just all released.
                }
            }
            self.pool.push(waiters);
        }
    }

    /// Number of recycled edge sets currently parked in the free pool
    /// (diagnostic for the allocation-pooling tests).
    pub fn pooled_sets(&self) -> usize {
        self.pool.len()
    }

    /// Number of blocked transactions currently recorded.
    pub fn blocked_count(&self) -> usize {
        self.edges.len()
    }

    /// The transactions `tx` currently waits for (empty if not blocked).
    pub fn waits_of(&self, tx: TxId) -> Vec<TxId> {
        self.edges
            .get(&tx)
            .map(|s| {
                let mut v: Vec<TxId> = s.iter().copied().collect();
                v.sort_unstable();
                v
            })
            .unwrap_or_default()
    }

    /// True if `start` can reach `target` following waits-for edges.
    pub fn reaches(&mut self, start: TxId, target: TxId) -> bool {
        self.visited.clear();
        self.stack.clear();
        self.stack.push(start);
        while let Some(t) = self.stack.pop() {
            if !self.visited.insert(t) {
                continue;
            }
            if let Some(next) = self.edges.get(&t) {
                // analyzer: allow(hash-iter): reachability is a bool; visit order
                // affects neither the answer nor any output
                for n in next {
                    if *n == target {
                        self.stack.clear();
                        return true;
                    }
                    self.stack.push(*n);
                }
            }
        }
        false
    }

    /// Checks whether adding the edges `waiter → blockers` would close a
    /// cycle containing `waiter`.  The edges are *not* added.  `blockers`
    /// must be sorted and deduplicated (as
    /// [`wait_for_set`](crate::table::LockTable::wait_for_set) returns it).
    ///
    /// A cycle exists iff some blocker *reaches* the waiter — equivalently,
    /// iff a blocker is among the waiter's *ancestors* in the waits-for
    /// graph.  The check therefore walks backwards from the waiter over the
    /// reverse index and binary-searches each discovered ancestor against
    /// the blocker list.  This bounds the work by the waiter's transitive
    /// waiter set — for a freshly denied request a handful of transactions —
    /// and never hashes the blocker list at all, where the forward scan this
    /// replaces traversed the blockers' *descendant* set: under a lock
    /// convoy essentially the whole blocked population, which made every
    /// denied request on a saturated multi-node run O(blocked transactions).
    pub fn would_deadlock(&mut self, waiter: TxId, blockers: &[TxId]) -> bool {
        debug_assert!(
            blockers.windows(2).all(|w| w[0] < w[1]),
            "blockers must be sorted and deduplicated"
        );
        let is_blocker = |t: &TxId| blockers.binary_search(t).is_ok();
        if is_blocker(&waiter) {
            return true;
        }
        self.visited.clear();
        self.stack.clear();
        self.visited.insert(waiter);
        self.stack.push(waiter);
        while let Some(t) = self.stack.pop() {
            if let Some(prev) = self.reverse.get(&t) {
                // analyzer: allow(hash-iter): reachability is a bool; visit order
                // affects neither the answer nor any output
                for p in prev {
                    if is_blocker(p) {
                        return true;
                    }
                    if self.visited.insert(*p) {
                        self.stack.push(*p);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadlock_on_simple_wait() {
        let mut g = WaitsForGraph::new();
        assert!(!g.would_deadlock(1, &[2]));
    }

    #[test]
    fn two_transaction_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.add_waits(1, &[2]); // T1 waits for T2
        assert!(g.would_deadlock(2, &[1])); // T2 requesting something held by T1
        assert!(!g.would_deadlock(3, &[1]));
    }

    #[test]
    fn three_transaction_cycle_detected() {
        let mut g = WaitsForGraph::new();
        g.add_waits(1, &[2]);
        g.add_waits(2, &[3]);
        assert!(g.would_deadlock(3, &[1]));
        assert!(!g.would_deadlock(3, &[4]));
    }

    #[test]
    fn self_edge_is_a_deadlock() {
        let mut g = WaitsForGraph::new();
        assert!(g.would_deadlock(7, &[7]));
    }

    #[test]
    fn clearing_waits_breaks_the_path() {
        let mut g = WaitsForGraph::new();
        g.add_waits(1, &[2]);
        g.add_waits(2, &[3]);
        assert!(g.reaches(1, 3));
        g.clear_waits(2);
        assert!(!g.reaches(1, 3));
        assert!(g.reaches(1, 2));
    }

    #[test]
    fn remove_transaction_drops_incoming_edges() {
        let mut g = WaitsForGraph::new();
        g.add_waits(1, &[2]);
        g.add_waits(3, &[2]);
        g.remove_transaction(2);
        assert!(!g.reaches(1, 2));
        assert!(!g.reaches(3, 2));
        // Outgoing sets still exist for 1 and 3 but are empty of 2.
        assert!(g.waits_of(1).is_empty());
    }

    #[test]
    fn waits_of_reports_sorted_blockers() {
        let mut g = WaitsForGraph::new();
        g.add_waits(5, &[9, 2, 9, 5]);
        assert_eq!(g.waits_of(5), vec![2, 9]);
        assert_eq!(g.blocked_count(), 1);
        assert_eq!(g.waits_of(42), Vec::<TxId>::new());
    }

    #[test]
    fn diamond_without_cycle_is_not_a_deadlock() {
        let mut g = WaitsForGraph::new();
        g.add_waits(1, &[2, 3]);
        g.add_waits(2, &[4]);
        g.add_waits(3, &[4]);
        assert!(!g.would_deadlock(4, &[5]));
        assert!(g.would_deadlock(4, &[1]));
    }

    #[test]
    fn emptied_edge_sets_are_pooled_and_reused() {
        let mut g = WaitsForGraph::new();
        assert_eq!(g.pooled_sets(), 0);
        // One outgoing set (waiter 1) and two reverse sets (blockers 2, 3).
        g.add_waits(1, &[2, 3]);
        assert_eq!(g.pooled_sets(), 0);
        // Clearing frees all three into the pool ...
        g.clear_waits(1);
        assert_eq!(g.pooled_sets(), 3);
        // ... and the next block reuses them instead of allocating.
        g.add_waits(4, &[5]);
        assert_eq!(g.pooled_sets(), 1);
        g.remove_transaction(5);
        // 5's reverse set and (via clear_waits inside remove) nothing else:
        // 4's outgoing set stays (4 is still blocked in the table).
        assert_eq!(g.pooled_sets(), 2);
        assert_eq!(g.blocked_count(), 1);
        assert!(g.waits_of(4).is_empty());
        g.clear_waits(4);
        assert_eq!(g.pooled_sets(), 3);
        assert_eq!(g.blocked_count(), 0);
        // Steady-state churn holds the pool size: block/release cycles stop
        // growing it once the high-water mark is reached.
        for round in 0..10u64 {
            g.add_waits(10 + round, &[100 + round]);
            g.clear_waits(10 + round);
        }
        assert_eq!(g.pooled_sets(), 3);
    }

    #[test]
    fn reverse_index_survives_interleaved_add_clear_remove() {
        // Regression for the reverse-index bookkeeping: adds, partial
        // clears and removals must keep both directions consistent.
        let mut g = WaitsForGraph::new();
        g.add_waits(1, &[10, 11]);
        g.add_waits(2, &[10]);
        g.add_waits(3, &[1]);
        // Removing blocker 10 must unhook it from both waiters ...
        g.remove_transaction(10);
        assert!(!g.reaches(1, 10));
        assert!(!g.reaches(2, 10));
        // ... while 1 still waits for 11, and 3 still waits for 1.
        assert!(g.reaches(1, 11));
        assert!(g.reaches(3, 11));
        // Re-adding edges after clears keeps working.
        g.clear_waits(1);
        assert!(!g.reaches(3, 11));
        g.add_waits(1, &[2]);
        assert!(g.reaches(3, 2));
        g.remove_transaction(2);
        g.remove_transaction(1);
        g.remove_transaction(3);
        assert_eq!(g.blocked_count(), 0);
    }
}
