//! The lock table: per-item lock queues with shared/exclusive modes.
//!
//! Lockable items are either pages or objects, depending on the granularity
//! chosen for the partition ("page- and object-level locking ... offered on a
//! per-partition basis", §3.2).  The table implements long (strict) locks:
//! granted locks are only released at end of transaction.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use dbmodel::{ObjectId, PageId};

/// Transaction identifier used by the lock manager.
pub type TxId = u64;

/// Lock mode: shared (read) or exclusive (write).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared lock — compatible with other shared locks.
    Shared,
    /// Exclusive lock — incompatible with everything.
    Exclusive,
}

impl LockMode {
    /// True if a holder in `self` mode is compatible with a new request in
    /// `other` mode.
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// True for exclusive locks.
    #[inline]
    pub fn is_exclusive(self) -> bool {
        matches!(self, LockMode::Exclusive)
    }
}

/// Identifier of a lockable item: a page or an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockableId {
    /// A page-granularity lock.
    Page(PageId),
    /// An object-granularity lock.
    Object(ObjectId),
}

/// One queued (not yet granted) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// The requesting transaction.
    pub tx: TxId,
    /// Requested mode.
    pub mode: LockMode,
}

/// State of a single lockable item.
#[derive(Debug, Clone, Default)]
pub struct LockEntry {
    /// Currently granted holders with their modes.  With an exclusive holder
    /// this contains exactly one element.
    holders: Vec<(TxId, LockMode)>,
    /// FIFO queue of waiting requests.
    waiters: Vec<Waiter>,
}

impl LockEntry {
    /// Granted holders.
    pub fn holders(&self) -> &[(TxId, LockMode)] {
        &self.holders
    }

    /// Waiting requests in FIFO order.
    pub fn waiters(&self) -> &[Waiter] {
        &self.waiters
    }

    fn holds(&self, tx: TxId) -> Option<LockMode> {
        self.holders.iter().find(|(t, _)| *t == tx).map(|(_, m)| *m)
    }

    /// True if a new request by `tx` in `mode` can be granted right now,
    /// honouring FIFO fairness (a compatible request behind incompatible
    /// waiters must wait).
    fn can_grant(&self, tx: TxId, mode: LockMode) -> bool {
        let others_compatible = self
            .holders
            .iter()
            .filter(|(t, _)| *t != tx)
            .all(|(_, m)| m.compatible(mode));
        others_compatible && (self.waiters.is_empty() || self.holds(tx).is_some())
    }
}

/// Result of a lock-table request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableOutcome {
    /// The lock is granted (possibly it was already held in a sufficient mode).
    Granted,
    /// The request conflicts and was appended to the item's wait queue.
    /// The conflicting holders are needed for deadlock detection.
    Blocked,
}

/// The lock table.
#[derive(Debug, Default)]
pub struct LockTable {
    entries: HashMap<LockableId, LockEntry>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of items that currently have holders or waiters.
    pub fn active_items(&self) -> usize {
        self.entries.len()
    }

    /// Read access to an entry (diagnostics / tests).
    pub fn entry(&self, id: LockableId) -> Option<&LockEntry> {
        self.entries.get(&id)
    }

    /// Transactions currently holding `id` in a mode incompatible with `mode`,
    /// excluding `tx` itself.
    pub fn conflicting_holders(&self, id: LockableId, tx: TxId, mode: LockMode) -> Vec<TxId> {
        match self.entries.get(&id) {
            None => Vec::new(),
            Some(e) => e
                .holders
                .iter()
                .filter(|(t, m)| *t != tx && !m.compatible(mode))
                .map(|(t, _)| *t)
                .collect(),
        }
    }

    /// All transactions ahead of `tx` (holders plus earlier waiters) that `tx`
    /// would wait for if queued on `id` in `mode`.  Used to build waits-for
    /// edges.
    pub fn wait_for_set(&self, id: LockableId, tx: TxId, mode: LockMode) -> Vec<TxId> {
        let mut out = Vec::new();
        if let Some(e) = self.entries.get(&id) {
            for (t, m) in &e.holders {
                if *t != tx && (!m.compatible(mode) || mode.is_exclusive() || m.is_exclusive()) {
                    out.push(*t);
                }
            }
            for w in &e.waiters {
                if w.tx != tx {
                    out.push(w.tx);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Requests `id` in `mode` for `tx`.
    ///
    /// Lock upgrades (shared → exclusive) are supported: if `tx` already holds
    /// the item in shared mode and no other transaction holds it, the lock is
    /// converted in place.
    pub fn request(&mut self, id: LockableId, tx: TxId, mode: LockMode) -> TableOutcome {
        let entry = self.entries.entry(id).or_default();
        if let Some(held) = entry.holds(tx) {
            if held.is_exclusive() || !mode.is_exclusive() {
                return TableOutcome::Granted; // already sufficient
            }
            // Upgrade request: allowed only if tx is the sole holder.
            let sole = entry.holders.iter().all(|(t, _)| *t == tx);
            if sole {
                for h in &mut entry.holders {
                    if h.0 == tx {
                        h.1 = LockMode::Exclusive;
                    }
                }
                return TableOutcome::Granted;
            }
            entry.waiters.push(Waiter { tx, mode });
            return TableOutcome::Blocked;
        }
        if entry.can_grant(tx, mode) {
            entry.holders.push((tx, mode));
            TableOutcome::Granted
        } else {
            entry.waiters.push(Waiter { tx, mode });
            TableOutcome::Blocked
        }
    }

    /// Removes a waiting request of `tx` on `id` (after an abort).  Returns
    /// true if a waiter was removed.
    pub fn cancel_wait(&mut self, id: LockableId, tx: TxId) -> bool {
        if let Some(entry) = self.entries.get_mut(&id) {
            let before = entry.waiters.len();
            entry.waiters.retain(|w| w.tx != tx);
            let removed = entry.waiters.len() != before;
            if entry.holders.is_empty() && entry.waiters.is_empty() {
                self.entries.remove(&id);
            }
            removed
        } else {
            false
        }
    }

    /// Releases the lock held by `tx` on `id` and grants as many queued
    /// requests as have now become compatible (FIFO).  Returns the
    /// transactions whose queued requests were granted by this release.
    pub fn release(&mut self, id: LockableId, tx: TxId) -> Vec<TxId> {
        let Entry::Occupied(mut occ) = self.entries.entry(id) else {
            return Vec::new();
        };
        let entry = occ.get_mut();
        entry.holders.retain(|(t, _)| *t != tx);
        let granted = Self::promote_waiters(entry);
        if entry.holders.is_empty() && entry.waiters.is_empty() {
            occ.remove();
        }
        granted
    }

    fn promote_waiters(entry: &mut LockEntry) -> Vec<TxId> {
        let mut granted = Vec::new();
        while let Some(w) = entry.waiters.first().copied() {
            let compatible = entry
                .holders
                .iter()
                .filter(|(t, _)| *t != w.tx)
                .all(|(_, m)| m.compatible(w.mode));
            if !compatible {
                break;
            }
            entry.waiters.remove(0);
            if let Some(h) = entry.holders.iter_mut().find(|(t, _)| *t == w.tx) {
                // Waiting upgrade now possible.
                h.1 = LockMode::Exclusive;
            } else {
                entry.holders.push((w.tx, w.mode));
            }
            granted.push(w.tx);
            if w.mode.is_exclusive() {
                break;
            }
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> LockableId {
        LockableId::Page(PageId(n))
    }

    #[test]
    fn shared_locks_are_compatible() {
        let mut t = LockTable::new();
        assert_eq!(
            t.request(page(1), 1, LockMode::Shared),
            TableOutcome::Granted
        );
        assert_eq!(
            t.request(page(1), 2, LockMode::Shared),
            TableOutcome::Granted
        );
        assert_eq!(t.entry(page(1)).unwrap().holders().len(), 2);
    }

    #[test]
    fn exclusive_conflicts_with_shared() {
        let mut t = LockTable::new();
        t.request(page(1), 1, LockMode::Shared);
        assert_eq!(
            t.request(page(1), 2, LockMode::Exclusive),
            TableOutcome::Blocked
        );
        assert_eq!(
            t.conflicting_holders(page(1), 2, LockMode::Exclusive),
            vec![1]
        );
    }

    #[test]
    fn rerequest_of_held_lock_is_granted() {
        let mut t = LockTable::new();
        t.request(page(1), 1, LockMode::Exclusive);
        assert_eq!(
            t.request(page(1), 1, LockMode::Shared),
            TableOutcome::Granted
        );
        assert_eq!(
            t.request(page(1), 1, LockMode::Exclusive),
            TableOutcome::Granted
        );
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let mut t = LockTable::new();
        t.request(page(1), 1, LockMode::Shared);
        assert_eq!(
            t.request(page(1), 1, LockMode::Exclusive),
            TableOutcome::Granted
        );
        assert!(t.entry(page(1)).unwrap().holders()[0].1.is_exclusive());
    }

    #[test]
    fn upgrade_blocks_behind_other_reader() {
        let mut t = LockTable::new();
        t.request(page(1), 1, LockMode::Shared);
        t.request(page(1), 2, LockMode::Shared);
        assert_eq!(
            t.request(page(1), 1, LockMode::Exclusive),
            TableOutcome::Blocked
        );
        // When tx 2 releases, tx 1's upgrade is granted.
        let granted = t.release(page(1), 2);
        assert_eq!(granted, vec![1]);
        assert!(t.entry(page(1)).unwrap().holders()[0].1.is_exclusive());
    }

    #[test]
    fn fifo_wakeup_on_release() {
        let mut t = LockTable::new();
        t.request(page(1), 1, LockMode::Exclusive);
        t.request(page(1), 2, LockMode::Shared);
        t.request(page(1), 3, LockMode::Shared);
        t.request(page(1), 4, LockMode::Exclusive);
        let granted = t.release(page(1), 1);
        // The two shared waiters are granted together; the exclusive waits.
        assert_eq!(granted, vec![2, 3]);
        assert_eq!(t.entry(page(1)).unwrap().waiters().len(), 1);
        assert_eq!(t.release(page(1), 2), Vec::<TxId>::new());
        assert_eq!(t.release(page(1), 3), vec![4]);
    }

    #[test]
    fn fairness_new_shared_request_waits_behind_queued_exclusive() {
        let mut t = LockTable::new();
        t.request(page(1), 1, LockMode::Shared);
        t.request(page(1), 2, LockMode::Exclusive); // queued
                                                    // A new shared request must not overtake the queued exclusive one.
        assert_eq!(
            t.request(page(1), 3, LockMode::Shared),
            TableOutcome::Blocked
        );
    }

    #[test]
    fn cancel_wait_removes_queued_request() {
        let mut t = LockTable::new();
        t.request(page(1), 1, LockMode::Exclusive);
        t.request(page(1), 2, LockMode::Exclusive);
        assert!(t.cancel_wait(page(1), 2));
        assert!(!t.cancel_wait(page(1), 2));
        assert_eq!(t.release(page(1), 1), Vec::<TxId>::new());
        // Entry is fully cleaned up.
        assert_eq!(t.active_items(), 0);
    }

    #[test]
    fn wait_for_set_includes_holders_and_waiters() {
        let mut t = LockTable::new();
        t.request(page(1), 1, LockMode::Exclusive);
        t.request(page(1), 2, LockMode::Exclusive);
        let wf = t.wait_for_set(page(1), 3, LockMode::Shared);
        assert_eq!(wf, vec![1, 2]);
    }

    #[test]
    fn object_and_page_ids_are_distinct_items() {
        let mut t = LockTable::new();
        assert_eq!(
            t.request(LockableId::Page(PageId(7)), 1, LockMode::Exclusive),
            TableOutcome::Granted
        );
        assert_eq!(
            t.request(LockableId::Object(ObjectId(7)), 2, LockMode::Exclusive),
            TableOutcome::Granted
        );
        assert_eq!(t.active_items(), 2);
    }
}
