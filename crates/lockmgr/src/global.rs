//! The global lock service of the data-sharing configuration.
//!
//! When several computing modules (nodes) share the database (Rahm's
//! data-sharing architecture), concurrency control must be global: all nodes
//! synchronize their accesses through one logically centralized lock table.
//! This module models that service as a [`GlobalLockTable`] (the plain
//! [`LockManager`] acting as the shared table) fronted by a configurable
//! *message delay*: a lock request from a node other than the service's home
//! node pays a round-trip communication cost before the table answers, while
//! requests from the home node are served locally for free.
//!
//! Like the rest of the crate the service is a pure data structure — it never
//! advances simulated time.  The transaction system asks
//! [`GlobalLockService::remote_round_trip`] for the delay it must simulate
//! before submitting the request, then calls
//! [`GlobalLockService::acquire`] exactly once per lock request.
//! Lock releases are modelled as asynchronous messages (the committing
//! transaction does not wait for them), matching the usual treatment in
//! data-sharing performance models.

use dbmodel::ObjectRef;

use crate::manager::{CcMode, LockManager, LockManagerStats, LockOutcome};
use crate::table::TxId;

/// The shared global lock table: one [`LockManager`] that every node's lock
/// requests are routed to.  The alias documents the role the plain manager
/// plays inside [`GlobalLockService`].
pub type GlobalLockTable = LockManager;

/// Counters specific to the global lock service (on top of the table's own
/// [`LockManagerStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GlobalLockStats {
    /// Lock requests issued by the home node (no messages needed).
    pub local_requests: u64,
    /// Lock requests issued by other nodes (each exchanges a message round
    /// trip with the service; the *charged* delay may be zero).
    pub remote_requests: u64,
    /// Messages exchanged with remote nodes (2 per remote request, counted
    /// even when the configured delay is zero).
    pub messages: u64,
    /// Total simulated communication delay charged to remote requests (ms).
    pub total_message_delay_ms: f64,
}

/// A globally shared lock table fronted by a per-request message delay.
#[derive(Debug)]
pub struct GlobalLockService {
    table: GlobalLockTable,
    home_node: usize,
    message_delay_ms: f64,
    /// Shared-nothing mode: every request is node-local (the requesting node
    /// owns the partition), so no home node, no messages, no remote split.
    local_only: bool,
    stats: GlobalLockStats,
}

impl GlobalLockService {
    /// Creates a global lock service with the given per-partition CC modes,
    /// hosted on `home_node`, charging `message_delay_ms` per one-way message
    /// to every other node.
    pub fn new(modes: Vec<CcMode>, home_node: usize, message_delay_ms: f64) -> Self {
        Self {
            table: GlobalLockTable::new(modes),
            home_node,
            message_delay_ms: message_delay_ms.max(0.0),
            local_only: false,
            stats: GlobalLockStats::default(),
        }
    }

    /// A degenerate single-node service: every request is local, no messages
    /// are ever exchanged.  Behaves exactly like a plain [`LockManager`].
    pub fn single_node(modes: Vec<CcMode>) -> Self {
        Self::new(modes, 0, 0.0)
    }

    /// A *node-local* service for shared-nothing configurations: every node
    /// locks only the partitions it owns, so a request never crosses nodes —
    /// no round trips, no remote/local split, every request counted as local
    /// regardless of the requesting node.  The single table still detects
    /// deadlocks that span nodes (a centralized detector over per-node
    /// tables whose lock sets are disjoint by construction).
    pub fn node_local(modes: Vec<CcMode>) -> Self {
        Self {
            local_only: true,
            ..Self::new(modes, 0, 0.0)
        }
    }

    /// True for the shared-nothing (node-local) service: lock requests never
    /// exchange messages and are never counted as remote.
    pub fn is_local_only(&self) -> bool {
        self.local_only
    }

    /// The node hosting the service.
    pub fn home_node(&self) -> usize {
        self.home_node
    }

    /// The configured one-way message delay (ms).
    pub fn message_delay_ms(&self) -> f64 {
        self.message_delay_ms
    }

    /// True if the object reference needs a lock at all (its partition is
    /// subject to concurrency control).  References that need no lock also
    /// exchange no messages.
    pub fn needs_lock(&self, r: &ObjectRef) -> bool {
        self.table.request_for(r).item.is_some()
    }

    /// The round-trip communication delay (ms) a lock request from `node`
    /// must simulate before calling [`GlobalLockService::acquire`], or `None`
    /// when the request is local (home node, or a zero configured delay).
    pub fn remote_round_trip(&self, node: usize) -> Option<f64> {
        (!self.local_only && node != self.home_node && self.message_delay_ms > 0.0)
            .then_some(2.0 * self.message_delay_ms)
    }

    /// The lock service's contribution to the sharded kernel's conservative
    /// lookahead: as a cross-shard *message endpoint*, the earliest a lock
    /// decision made now can influence another node is one message round
    /// trip away.  `None` when the service injects no cross-node latency
    /// (local-only mode, or a zero configured delay) — it then constrains
    /// the lookahead window not at all.
    pub fn lookahead_contribution_ms(&self) -> Option<f64> {
        (!self.local_only && self.message_delay_ms > 0.0).then_some(2.0 * self.message_delay_ms)
    }

    /// Requests the lock needed for object reference `r` on behalf of `tx`
    /// running on `node`.  The caller must already have simulated the
    /// [`GlobalLockService::remote_round_trip`] delay, if any.
    pub fn acquire(&mut self, node: usize, tx: TxId, r: &ObjectRef) -> LockOutcome {
        if self.needs_lock(r) {
            if self.local_only || node == self.home_node {
                self.stats.local_requests += 1;
            } else {
                self.stats.remote_requests += 1;
                self.stats.messages += 2;
                self.stats.total_message_delay_ms += 2.0 * self.message_delay_ms;
            }
        }
        self.table.acquire(tx, r)
    }

    /// Releases all locks of `tx` (commit phase 2).  Returns the transactions
    /// whose queued requests became granted.
    pub fn release_all(&mut self, tx: TxId) -> Vec<TxId> {
        self.table.release_all(tx)
    }

    /// Aborts `tx`: cancels a pending wait and releases all held locks.
    pub fn abort(&mut self, tx: TxId) -> Vec<TxId> {
        self.table.abort(tx)
    }

    /// Crash recovery: clears the shared table (all holders and waiters died
    /// with the system).  Returns the number of locks held at the crash.
    /// Restart processing re-acquires locks through the same service.
    pub fn crash_reset(&mut self) -> u64 {
        self.table.crash_reset()
    }

    /// The shared table's statistics (requests, conflicts, deadlocks).
    pub fn stats(&self) -> LockManagerStats {
        self.table.stats()
    }

    /// The service-level statistics (local/remote split, messages).
    pub fn global_stats(&self) -> GlobalLockStats {
        self.stats
    }

    /// Resets both the table and the service statistics (end of warm-up).
    pub fn reset_stats(&mut self) {
        self.table.reset_stats();
        self.stats = GlobalLockStats::default();
    }

    /// Read access to the underlying shared table.
    pub fn table(&self) -> &GlobalLockTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::{AccessMode, ObjectId, PageId};

    fn obj_ref(partition: usize, page: u64, write: bool) -> ObjectRef {
        ObjectRef {
            partition,
            page: PageId(page),
            object: ObjectId(page * 10),
            mode: if write {
                AccessMode::Write
            } else {
                AccessMode::Read
            },
        }
    }

    fn service() -> GlobalLockService {
        GlobalLockService::new(vec![CcMode::Page, CcMode::None], 0, 0.25)
    }

    #[test]
    fn home_node_requests_are_local_and_free() {
        let mut s = service();
        assert_eq!(s.remote_round_trip(0), None);
        assert_eq!(s.acquire(0, 1, &obj_ref(0, 1, true)), LockOutcome::Granted);
        assert_eq!(s.global_stats().local_requests, 1);
        assert_eq!(s.global_stats().remote_requests, 0);
        assert_eq!(s.global_stats().messages, 0);
    }

    #[test]
    fn remote_requests_pay_a_round_trip_and_are_counted() {
        let mut s = service();
        assert_eq!(s.remote_round_trip(3), Some(0.5));
        assert_eq!(s.acquire(3, 1, &obj_ref(0, 1, true)), LockOutcome::Granted);
        let g = s.global_stats();
        assert_eq!(g.remote_requests, 1);
        assert_eq!(g.messages, 2);
        assert!((g.total_message_delay_ms - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_cc_partitions_need_no_lock_and_no_messages() {
        let mut s = service();
        assert!(!s.needs_lock(&obj_ref(1, 7, true)));
        assert_eq!(s.acquire(5, 1, &obj_ref(1, 7, true)), LockOutcome::Granted);
        assert_eq!(s.global_stats(), GlobalLockStats::default());
        assert_eq!(s.stats().requests, 0);
    }

    #[test]
    fn conflicts_cross_nodes_through_the_shared_table() {
        let mut s = service();
        assert_eq!(s.acquire(0, 1, &obj_ref(0, 9, true)), LockOutcome::Granted);
        // A transaction on another node conflicts on the same page.
        assert_eq!(s.acquire(1, 2, &obj_ref(0, 9, true)), LockOutcome::Blocked);
        assert_eq!(s.stats().conflicts, 1);
        let woken = s.release_all(1);
        assert_eq!(woken, vec![2]);
        assert!(s.abort(2).is_empty());
    }

    #[test]
    fn single_node_service_never_charges_messages() {
        let mut s = GlobalLockService::single_node(vec![CcMode::Page]);
        assert_eq!(s.remote_round_trip(0), None);
        assert_eq!(s.remote_round_trip(4), None);
        s.acquire(4, 1, &obj_ref(0, 1, true));
        // Node 4 is "remote" but the delay is zero; the split is still kept.
        assert_eq!(s.global_stats().remote_requests, 1);
        assert_eq!(s.global_stats().total_message_delay_ms, 0.0);
    }

    #[test]
    fn node_local_service_never_messages_and_counts_everything_local() {
        let mut s = GlobalLockService::node_local(vec![CcMode::Page]);
        assert!(s.is_local_only());
        assert_eq!(s.remote_round_trip(0), None);
        assert_eq!(s.remote_round_trip(5), None);
        assert_eq!(s.acquire(5, 1, &obj_ref(0, 1, true)), LockOutcome::Granted);
        assert_eq!(s.acquire(2, 2, &obj_ref(0, 2, true)), LockOutcome::Granted);
        let g = s.global_stats();
        assert_eq!(g.local_requests, 2);
        assert_eq!(g.remote_requests, 0);
        assert_eq!(g.messages, 0);
        assert_eq!(g.total_message_delay_ms, 0.0);
        // Conflicts (and deadlock detection) still work through the table.
        assert_eq!(s.acquire(2, 3, &obj_ref(0, 1, true)), LockOutcome::Blocked);
        assert_eq!(s.release_all(1), vec![3]);
        // The ordinary constructors stay non-local.
        assert!(!GlobalLockService::single_node(vec![CcMode::Page]).is_local_only());
    }

    #[test]
    fn reset_clears_both_stat_sets() {
        let mut s = service();
        s.acquire(1, 1, &obj_ref(0, 1, true));
        s.reset_stats();
        assert_eq!(s.global_stats(), GlobalLockStats::default());
        assert_eq!(s.stats(), LockManagerStats::default());
        assert_eq!(s.home_node(), 0);
        assert!((s.message_delay_ms() - 0.25).abs() < 1e-12);
        // Held locks survive a stats reset: tx 1 still blocks a conflicting
        // request through the shared table.
        assert_eq!(s.acquire(0, 2, &obj_ref(0, 1, true)), LockOutcome::Blocked);
    }
}
