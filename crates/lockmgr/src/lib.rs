//! # lockmgr — TPSIM concurrency control component
//!
//! Implements the CC component of §3.2: strict two-phase locking with long
//! read and write locks, a choice of page-level or object-level granularity
//! (or no locking at all) selectable per partition, deadlock detection on
//! every denied lock request with the requester aborted to break the cycle.
//!
//! The lock manager is a pure data structure: it does not know about
//! simulated time.  The transaction system drives it and interprets the
//! returned [`LockOutcome`]s (granted → continue, queued → block the
//! transaction, deadlock → abort and restart).

//!
//! For data-sharing configurations (several computing modules against one
//! storage complex) the [`global`] module wraps the same table in a
//! [`GlobalLockService`]: one shared [`GlobalLockTable`] plus a configurable
//! message delay per remote lock request.

// Every public item must be documented (same discipline as `tpsim`; CI
// builds docs with `RUSTDOCFLAGS=-D warnings`).
#![warn(missing_docs)]

pub mod deadlock;
pub mod global;
pub mod manager;
pub mod table;

pub use global::{GlobalLockService, GlobalLockStats, GlobalLockTable};
pub use manager::{CcMode, LockManager, LockManagerStats, LockOutcome, LockRequest};
pub use table::{LockMode, LockableId, TxId};
