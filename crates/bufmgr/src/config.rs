//! Buffer-manager configuration: buffer sizes, update strategy, and the
//! per-partition storage policies of Fig. 3.2 (allocation, NVEM caching mode,
//! NVEM write buffer use).

use dbmodel::Database;

/// Where the home copy of a partition lives (the "DBallocation" parameter of
/// Table 3.4 plus the main-memory-resident option of Table 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageLocation {
    /// The partition is main-memory resident: every reference is a hit and
    /// only logging is performed at commit.
    MainMemoryResident,
    /// The partition resides in non-volatile extended memory; accesses are
    /// synchronous NVEM page transfers.
    NvemResident,
    /// The partition is stored on the disk unit with the given index (which
    /// may be a regular disk, a cached disk or an SSD).
    DiskUnit(usize),
}

impl Default for PageLocation {
    fn default() -> Self {
        PageLocation::DiskUnit(0)
    }
}

impl Default for PartitionPolicy {
    fn default() -> Self {
        Self {
            location: PageLocation::DiskUnit(0),
            nvem_cache: SecondLevelMode::None,
            use_nvem_write_buffer: false,
        }
    }
}

impl PageLocation {
    /// Compact helper used by reports.
    pub fn describe(&self) -> String {
        match self {
            PageLocation::MainMemoryResident => "main memory resident".to_string(),
            PageLocation::NvemResident => "NVEM resident".to_string(),
            PageLocation::DiskUnit(u) => format!("disk unit {u}"),
        }
    }
}

/// Which pages migrate from main memory to the second-level NVEM cache when
/// they are replaced (the "NVEM caching mode" parameter of Table 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecondLevelMode {
    /// No NVEM caching for this partition.
    #[default]
    None,
    /// All replaced pages migrate to the NVEM cache.
    All,
    /// Only modified pages migrate.
    OnlyModified,
    /// Only unmodified pages migrate.
    OnlyUnmodified,
}

impl SecondLevelMode {
    /// True if NVEM caching is enabled at all.
    pub fn enabled(self) -> bool {
        !matches!(self, SecondLevelMode::None)
    }

    /// True if a page with the given dirty state should migrate to NVEM when
    /// replaced from main memory.
    pub fn migrates(self, dirty: bool) -> bool {
        match self {
            SecondLevelMode::None => false,
            SecondLevelMode::All => true,
            SecondLevelMode::OnlyModified => dirty,
            SecondLevelMode::OnlyUnmodified => !dirty,
        }
    }
}

/// Propagation strategy for modified pages (Härder/Reuter 1983).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateStrategy {
    /// NOFORCE: modified pages stay in the buffer after commit and are written
    /// back on replacement; checkpoint overhead is ignored (fuzzy
    /// checkpointing).
    #[default]
    NoForce,
    /// FORCE: all pages modified by a transaction are written to the permanent
    /// database (or to non-volatile intermediate storage) at commit.
    Force,
}

/// Per-partition buffer-management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPolicy {
    /// Where the partition's home copy lives.
    pub location: PageLocation,
    /// Second-level NVEM caching mode for the partition.
    pub nvem_cache: SecondLevelMode,
    /// Whether page writes of this partition use the NVEM write buffer.
    pub use_nvem_write_buffer: bool,
}

impl PartitionPolicy {
    /// Partition stored on the given disk unit with no NVEM usage.
    pub fn on_disk_unit(unit: usize) -> Self {
        Self {
            location: PageLocation::DiskUnit(unit),
            ..Self::default()
        }
    }

    /// Main-memory-resident partition.
    pub fn memory_resident() -> Self {
        Self {
            location: PageLocation::MainMemoryResident,
            ..Self::default()
        }
    }

    /// NVEM-resident partition.
    pub fn nvem_resident() -> Self {
        Self {
            location: PageLocation::NvemResident,
            ..Self::default()
        }
    }

    /// Enables second-level NVEM caching with the given mode.
    pub fn with_nvem_cache(mut self, mode: SecondLevelMode) -> Self {
        self.nvem_cache = mode;
        self
    }

    /// Routes page writes of the partition through the NVEM write buffer.
    pub fn with_nvem_write_buffer(mut self) -> Self {
        self.use_nvem_write_buffer = true;
        self
    }
}

/// Complete buffer-manager configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferConfig {
    /// Size of the main-memory database buffer in page frames.
    pub mm_buffer_pages: usize,
    /// Size of the second-level NVEM database buffer in page frames
    /// (0 disables NVEM caching even if a partition policy requests it).
    pub nvem_cache_pages: usize,
    /// Size of the NVEM write buffer in page frames (0 disables it).
    pub nvem_write_buffer_pages: usize,
    /// FORCE or NOFORCE propagation.
    pub update_strategy: UpdateStrategy,
    /// K of the LRU-K replacement policy for the main-memory buffer: victims
    /// are ranked by their K-th most recent reference (O'Neil et al.).  K = 1
    /// is plain LRU and uses the buffer's intrinsic LRU chain; K > 1 keeps a
    /// per-page access history.
    pub lru_k: usize,
    /// Per-partition policies, indexed by partition id.
    pub partitions: Vec<PartitionPolicy>,
}

impl BufferConfig {
    /// A configuration for `db` where every partition is stored on disk unit 0
    /// and only main-memory caching is performed.
    pub fn disk_based(db: &Database, mm_buffer_pages: usize) -> Self {
        Self {
            mm_buffer_pages,
            nvem_cache_pages: 0,
            nvem_write_buffer_pages: 0,
            update_strategy: UpdateStrategy::NoForce,
            lru_k: 1,
            partitions: vec![PartitionPolicy::on_disk_unit(0); db.num_partitions()],
        }
    }

    /// Sets the K of the LRU-K replacement policy (1 = plain LRU).
    pub fn with_lru_k(mut self, k: usize) -> Self {
        self.lru_k = k;
        self
    }

    /// Sets the update strategy.
    pub fn with_update_strategy(mut self, s: UpdateStrategy) -> Self {
        self.update_strategy = s;
        self
    }

    /// Enables the NVEM write buffer of the given size for every partition.
    pub fn with_nvem_write_buffer(mut self, pages: usize) -> Self {
        self.nvem_write_buffer_pages = pages;
        for p in &mut self.partitions {
            p.use_nvem_write_buffer = true;
        }
        self
    }

    /// Enables a shared second-level NVEM cache of the given size with the
    /// given migration mode for every partition.
    pub fn with_nvem_cache(mut self, pages: usize, mode: SecondLevelMode) -> Self {
        self.nvem_cache_pages = pages;
        for p in &mut self.partitions {
            p.nvem_cache = mode;
        }
        self
    }

    /// Policy of partition `id` (defaults to disk unit 0 if out of range).
    pub fn policy(&self, id: usize) -> PartitionPolicy {
        self.partitions.get(id).copied().unwrap_or_default()
    }

    /// Basic consistency checks; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.mm_buffer_pages == 0 {
            return Err("main-memory buffer must have at least one frame".to_string());
        }
        if self.lru_k == 0 {
            return Err("LRU-K needs K >= 1 (1 = plain LRU)".to_string());
        }
        for (i, p) in self.partitions.iter().enumerate() {
            if p.nvem_cache.enabled() && self.nvem_cache_pages == 0 {
                return Err(format!(
                    "partition {i} requests NVEM caching but the NVEM cache size is 0"
                ));
            }
            if p.use_nvem_write_buffer && self.nvem_write_buffer_pages == 0 {
                return Err(format!(
                    "partition {i} requests the NVEM write buffer but its size is 0"
                ));
            }
            if p.use_nvem_write_buffer && p.nvem_cache.enabled() {
                // "when NVEM caching is employed for a partition there is no
                // further need for a write buffer" (§3.3, footnote 4).
                return Err(format!(
                    "partition {i} enables both NVEM caching and the NVEM write buffer"
                ));
            }
            if p.use_nvem_write_buffer
                && matches!(
                    p.location,
                    PageLocation::MainMemoryResident | PageLocation::NvemResident
                )
            {
                return Err(format!(
                    "partition {i} is semiconductor-resident and needs no write buffer"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbmodel::database::PartitionSpec;

    fn db() -> Database {
        Database::from_specs(vec![
            PartitionSpec::uniform("A", 100, 10),
            PartitionSpec::uniform("B", 100, 10),
        ])
    }

    #[test]
    fn second_level_mode_migration_rules() {
        assert!(!SecondLevelMode::None.migrates(true));
        assert!(SecondLevelMode::All.migrates(true));
        assert!(SecondLevelMode::All.migrates(false));
        assert!(SecondLevelMode::OnlyModified.migrates(true));
        assert!(!SecondLevelMode::OnlyModified.migrates(false));
        assert!(SecondLevelMode::OnlyUnmodified.migrates(false));
        assert!(!SecondLevelMode::OnlyUnmodified.migrates(true));
    }

    #[test]
    fn disk_based_config_is_valid() {
        let c = BufferConfig::disk_based(&db(), 100);
        assert!(c.validate().is_ok());
        assert_eq!(c.partitions.len(), 2);
        assert_eq!(c.policy(0).location, PageLocation::DiskUnit(0));
        assert_eq!(c.policy(99).location, PageLocation::DiskUnit(0));
    }

    #[test]
    fn builders_compose() {
        let c = BufferConfig::disk_based(&db(), 100)
            .with_update_strategy(UpdateStrategy::Force)
            .with_nvem_cache(500, SecondLevelMode::All);
        assert_eq!(c.update_strategy, UpdateStrategy::Force);
        assert_eq!(c.nvem_cache_pages, 500);
        assert!(c.policy(1).nvem_cache.enabled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_missing_nvem_cache_size() {
        let mut c = BufferConfig::disk_based(&db(), 100);
        c.partitions[0].nvem_cache = SecondLevelMode::All;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_catches_write_buffer_without_size() {
        let mut c = BufferConfig::disk_based(&db(), 100);
        c.partitions[1].use_nvem_write_buffer = true;
        assert!(c.validate().is_err());
        let c = BufferConfig::disk_based(&db(), 100).with_nvem_write_buffer(200);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_cache_plus_write_buffer() {
        let mut c = BufferConfig::disk_based(&db(), 100).with_nvem_write_buffer(100);
        c.nvem_cache_pages = 100;
        c.partitions[0].nvem_cache = SecondLevelMode::All;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_mm_buffer() {
        let mut c = BufferConfig::disk_based(&db(), 100);
        c.mm_buffer_pages = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn lru_k_defaults_to_plain_lru_and_rejects_zero() {
        let c = BufferConfig::disk_based(&db(), 100);
        assert_eq!(c.lru_k, 1);
        let c2 = c.clone().with_lru_k(2);
        assert_eq!(c2.lru_k, 2);
        assert!(c2.validate().is_ok());
        let mut bad = c;
        bad.lru_k = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn resident_partitions_need_no_write_buffer() {
        let mut c = BufferConfig::disk_based(&db(), 100).with_nvem_write_buffer(100);
        c.partitions[0] = PartitionPolicy {
            location: PageLocation::NvemResident,
            nvem_cache: SecondLevelMode::None,
            use_nvem_write_buffer: true,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn location_describe() {
        assert_eq!(
            PageLocation::MainMemoryResident.describe(),
            "main memory resident"
        );
        assert_eq!(PageLocation::DiskUnit(3).describe(), "disk unit 3");
        assert_eq!(PageLocation::NvemResident.describe(), "NVEM resident");
    }
}
