//! # bufmgr — TPSIM DBMS buffer manager
//!
//! Implements the BM component of §3.2:
//!
//! * caching of database pages in **main memory** under a global LRU policy;
//! * a **second-level database buffer in NVEM** with per-partition caching
//!   modes (migrate only modified pages, only unmodified pages, or all pages);
//!   under NOFORCE the main-memory and NVEM buffers are kept *exclusive* (a
//!   page is cached at most once), under FORCE pages forced to NVEM also stay
//!   in main memory (replication);
//! * a **write buffer in NVEM** that absorbs page writes at NVEM speed and
//!   updates the disk copy asynchronously;
//! * the **FORCE / NOFORCE** update strategies;
//! * logging (one log page per update transaction, handled by the engine using
//!   the configured log allocation); and
//! * a per-pool **dirty-page table** ([`dirty::DirtyPageTable`]) tracking
//!   committed-but-unpropagated updates for the engine's crash-recovery
//!   subsystem.
//!
//! Like the device models, the buffer manager is pure policy: every page
//! reference returns the ordered list of [`ops::PageOp`]s the transaction must
//! perform (synchronous NVEM transfers, device reads, synchronous or
//! asynchronous device writes); the engine executes them with queueing and
//! timing.

pub mod config;
pub mod dirty;
pub mod manager;
pub mod ops;
pub mod stats;

pub use config::{BufferConfig, PageLocation, PartitionPolicy, SecondLevelMode, UpdateStrategy};
pub use dirty::{DirtyPageTable, RecLsn};
pub use manager::{BufferManager, PrefetchAdmit};
pub use ops::{FetchOutcome, PageOp};
pub use stats::{BufferStats, PartitionBufferStats};
