//! The buffer manager proper.
//!
//! All decisions of §3.2 live here: main-memory LRU caching, victim
//! write-back (directly to disk, through the NVEM write buffer, or by
//! migration into the second-level NVEM cache), exclusive (NOFORCE) versus
//! replicated (FORCE) NVEM caching, and commit-time forcing of modified pages.

use dbmodel::PageId;
use storage::{LruCache, LruKTracker};

use crate::config::{BufferConfig, PageLocation, UpdateStrategy};
use crate::dirty::{DirtyPageTable, RecLsn};
use crate::ops::{FetchOutcome, PageOp};
use crate::stats::BufferStats;

/// State of a page frame in the main-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameState {
    partition: usize,
    dirty: bool,
    /// The frame was filled by a speculative (prefetch) read and has not
    /// been referenced yet.  The first reference clears it and counts a
    /// prefetch hit; dropping the frame unreferenced counts it wasted.
    prefetched: bool,
}

/// Outcome of admitting a speculatively read page
/// ([`BufferManager::admit_prefetched`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchAdmit {
    /// The page was inserted into the main-memory buffer.
    Admitted,
    /// A copy was already buffered; the speculative read bought nothing
    /// (counted wasted).
    AlreadyResident,
    /// The buffer is full and every victim candidate is dirty: speculative
    /// data never evicts dirty pages, so the page was dropped (counted
    /// wasted).
    Rejected,
}

/// State of a page in the second-level NVEM cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NvemEntry {
    partition: usize,
    /// Asynchronous disk writes still in flight for this page.  The entry is
    /// "clean" (freely replaceable) once this reaches zero.
    pending: u32,
}

/// The TPSIM buffer manager.
#[derive(Debug)]
pub struct BufferManager {
    config: BufferConfig,
    mm: LruCache<PageId, FrameState>,
    /// LRU-K access history for the main-memory buffer, active only when
    /// `config.lru_k > 1`; with K = 1 victim selection uses the buffer's
    /// intrinsic LRU chain, bit-for-bit as before.  Kept strictly in sync
    /// with `mm`'s key set.
    lru_k: Option<LruKTracker<PageId>>,
    nvem_cache: Option<LruCache<PageId, NvemEntry>>,
    write_buffer: Option<LruCache<PageId, u32>>,
    /// Committed-but-unpropagated updates for crash recovery; fed by the
    /// engine at commit, drained here whenever a page is propagated.
    dirty_table: DirtyPageTable,
    stats: BufferStats,
    /// Invalidations that found no buffered copy to drop but did clear a
    /// dirty-page-table entry (the page was evicted/written back while a
    /// remote commit superseded its redo entry).  Kept outside
    /// [`BufferStats`] so report renderings stay byte-identical.
    dpt_only_clears: u64,
    /// Per-partition count of prefetched frames whose first reference was a
    /// main-memory hit.  Kept outside [`BufferStats`] (like
    /// `dpt_only_clears`) so report renderings stay byte-identical; the
    /// engine folds these into the per-device scheduler report.
    prefetch_hits: Vec<u64>,
    /// Per-partition count of speculative reads that bought nothing: the
    /// page was already resident at admission, admission was rejected, or
    /// the prefetched frame was dropped without ever being referenced.
    prefetch_wasted: Vec<u64>,
}

impl BufferManager {
    /// Creates a buffer manager for the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`BufferConfig::validate`].
    pub fn new(config: BufferConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid buffer configuration: {msg}");
        }
        let nvem_cache = (config.nvem_cache_pages > 0
            && config.partitions.iter().any(|p| p.nvem_cache.enabled()))
        .then(|| LruCache::new(config.nvem_cache_pages));
        let write_buffer = (config.nvem_write_buffer_pages > 0
            && config.partitions.iter().any(|p| p.use_nvem_write_buffer))
        .then(|| LruCache::new(config.nvem_write_buffer_pages));
        let stats = BufferStats::new(config.partitions.len());
        let lru_k = (config.lru_k > 1).then(|| LruKTracker::new(config.lru_k));
        let partitions = config.partitions.len();
        Self {
            mm: LruCache::new(config.mm_buffer_pages),
            lru_k,
            config,
            nvem_cache,
            write_buffer,
            dirty_table: DirtyPageTable::new(),
            stats,
            dpt_only_clears: 0,
            prefetch_hits: vec![0; partitions],
            prefetch_wasted: vec![0; partitions],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BufferConfig {
        &self.config
    }

    /// Current statistics.
    pub fn stats(&self) -> &BufferStats {
        &self.stats
    }

    /// Resets the statistics (end of warm-up) without flushing the buffers.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.dpt_only_clears = 0;
        self.prefetch_hits.iter_mut().for_each(|c| *c = 0);
        self.prefetch_wasted.iter_mut().for_each(|c| *c = 0);
    }

    /// Invalidations that cleared only a dirty-page-table entry (no buffered
    /// copy was present any more); see [`BufferManager::invalidate_page`].
    pub fn dpt_only_clears(&self) -> u64 {
        self.dpt_only_clears
    }

    /// Per-partition count of prefetched frames whose first reference hit
    /// in main memory (see [`BufferManager::admit_prefetched`]).
    pub fn prefetch_hits(&self) -> &[u64] {
        &self.prefetch_hits
    }

    /// Per-partition count of speculative reads that bought nothing (see
    /// [`BufferManager::admit_prefetched`]).
    pub fn prefetch_wasted(&self) -> &[u64] {
        &self.prefetch_wasted
    }

    /// Number of pages in the main-memory buffer.
    pub fn mm_pages(&self) -> usize {
        self.mm.len()
    }

    /// True if `page` is in the main-memory buffer.
    pub fn mm_contains(&self, page: PageId) -> bool {
        self.mm.contains(&page)
    }

    /// True if the main-memory copy of `page` is dirty.
    pub fn mm_is_dirty(&self, page: PageId) -> bool {
        self.mm.peek(&page).map(|f| f.dirty).unwrap_or(false)
    }

    /// Number of pages in the second-level NVEM cache.
    pub fn nvem_pages(&self) -> usize {
        self.nvem_cache.as_ref().map(LruCache::len).unwrap_or(0)
    }

    /// True if `page` is in the second-level NVEM cache.
    pub fn nvem_contains(&self, page: PageId) -> bool {
        self.nvem_cache.as_ref().is_some_and(|c| c.contains(&page))
    }

    /// Number of pages in the NVEM write buffer.
    pub fn write_buffer_pages(&self) -> usize {
        self.write_buffer.as_ref().map(LruCache::len).unwrap_or(0)
    }

    /// The pool's dirty-page table: pages with committed-but-unpropagated
    /// updates and their recovery LSNs (crash recovery).
    pub fn dirty_page_table(&self) -> &DirtyPageTable {
        &self.dirty_table
    }

    /// True if [`BufferManager::invalidate_page`] on `page` would do any
    /// work at all: a main-memory copy, a second-level NVEM cache entry
    /// (even one with an in-flight write, which invalidation spares but
    /// still constitutes a held copy) or a dirty-page-table entry.  The
    /// engine's page→holders index uses this as the ground truth when
    /// asserting index-vs-broadcast equivalence: for any page, a node with
    /// `!holds_page(page)` experiences `invalidate_page(page)` as a complete
    /// no-op, so skipping it cannot change simulation state.
    pub fn holds_page(&self, page: PageId) -> bool {
        self.mm.contains(&page)
            || self.nvem_contains(page)
            || self.dirty_table.rec_lsn(page).is_some()
    }

    /// True if this pool holds a copy of `page` that may be shipped to
    /// another node by a direct cache-to-cache transfer: a main-memory frame
    /// or a second-level NVEM cache entry with no disk write-backs in
    /// flight.  An NVEM entry *with* pending write-backs is excluded — such
    /// an entry is spared by [`BufferManager::invalidate_page`] and may
    /// therefore be stale, so it must never serve as a donor.
    pub fn has_current_copy(&self, page: PageId) -> bool {
        self.mm.contains(&page)
            || self
                .nvem_cache
                .as_ref()
                .is_some_and(|c| c.peek(&page).is_some_and(|e| e.pending == 0))
    }

    /// Records that a transaction committed an update to `page` of
    /// `partition` under log sequence number `lsn`.  The page enters the
    /// dirty-page table only while its committed content is volatile: a
    /// main-memory-resident page always is, any other page only while its
    /// main-memory frame is dirty (a page already written back, migrated to
    /// NVEM or evicted has its committed content in non-volatile storage and
    /// needs no redo).
    pub fn note_committed_update(&mut self, partition: usize, page: PageId, lsn: RecLsn) {
        let volatile = match self.config.policy(partition).location {
            PageLocation::MainMemoryResident => true,
            _ => self.mm.peek(&page).map(|f| f.dirty).unwrap_or(false),
        };
        if volatile {
            self.dirty_table.note_committed_update(page, lsn);
        }
    }

    /// References `page` of `partition` on behalf of a transaction, with
    /// `is_write` indicating a write access.  Returns the operations the
    /// transaction must perform before the access is complete.
    pub fn reference_page(
        &mut self,
        partition: usize,
        page: PageId,
        is_write: bool,
    ) -> FetchOutcome {
        self.ensure_partition_stats(partition);
        self.stats.per_partition[partition].references += 1;
        let policy = self.config.policy(partition);

        // Memory-resident partitions always hit and need no propagation
        // (NOFORCE with logging only, §3.2).
        if policy.location == PageLocation::MainMemoryResident {
            self.stats.per_partition[partition].mm_hits += 1;
            return FetchOutcome::hit();
        }

        // Main-memory hit.
        if let Some(frame) = self.mm.get_mut(&page) {
            frame.dirty |= is_write;
            let first_prefetch_use = frame.prefetched;
            frame.prefetched = false;
            if let Some(tracker) = self.lru_k.as_mut() {
                tracker.record_access(page);
            }
            self.stats.per_partition[partition].mm_hits += 1;
            if first_prefetch_use {
                self.prefetch_hits[partition] += 1;
            }
            return FetchOutcome::hit();
        }

        // Miss: make room, fetch the page, insert it.
        let mut ops = Vec::new();
        if self.mm.is_full() {
            self.evict_one(&mut ops);
        }
        let nvem_cache_hit = self.fetch_missing_page(partition, page, policy.location, &mut ops);
        if nvem_cache_hit {
            self.stats.per_partition[partition].nvem_hits += 1;
        }
        self.mm.insert(
            page,
            FrameState {
                partition,
                dirty: is_write,
                prefetched: false,
            },
        );
        if let Some(tracker) = self.lru_k.as_mut() {
            tracker.record_access(page);
        }
        FetchOutcome {
            main_memory_hit: false,
            nvem_cache_hit,
            ops,
        }
    }

    /// Evicts one frame from main memory — the LRU frame with K = 1, the
    /// largest-backward-K-distance frame under LRU-K — appending any
    /// write-back / migration operations to `ops`.
    fn evict_one(&mut self, ops: &mut Vec<PageOp>) {
        let victim = match self.lru_k.as_mut() {
            Some(tracker) => tracker
                .evict()
                .and_then(|page| self.mm.remove(&page).map(|state| (page, state))),
            None => self.mm.pop_lru(),
        };
        let Some((vpage, vstate)) = victim else {
            return;
        };
        self.stats.mm_evictions += 1;
        if vstate.dirty {
            self.stats.dirty_evictions += 1;
        }
        if vstate.prefetched {
            // The speculative read was paid for but the page left the
            // buffer without ever being referenced.
            self.prefetch_wasted[vstate.partition] += 1;
        }
        let vpolicy = self.config.policy(vstate.partition);
        match vpolicy.location {
            PageLocation::MainMemoryResident => {
                // Memory-resident pages never occupy buffer frames; nothing to do.
            }
            PageLocation::NvemResident => {
                if vstate.dirty {
                    // Write the page back to its NVEM home copy.
                    ops.push(PageOp::NvemTransfer {
                        page: vpage,
                        to_nvem: true,
                    });
                    self.dirty_table.clear_page(vpage);
                }
            }
            PageLocation::DiskUnit(unit) => {
                let migrate =
                    self.nvem_cache.is_some() && vpolicy.nvem_cache.migrates(vstate.dirty);
                if migrate {
                    // The NVEM cache copy is non-volatile: committed updates
                    // survive a crash from here on.
                    self.dirty_table.clear_page(vpage);
                    ops.push(PageOp::NvemTransfer {
                        page: vpage,
                        to_nvem: true,
                    });
                    if vstate.dirty {
                        // Start the asynchronous disk update immediately so the
                        // NVEM frame can later be replaced without delay (§3.2).
                        ops.push(PageOp::UnitWriteAsync { unit, page: vpage });
                    }
                    self.insert_into_nvem_cache(vpage, vstate.partition, vstate.dirty);
                    self.stats.migrations_to_nvem += 1;
                } else if vstate.dirty {
                    self.write_back_dirty(vpage, vstate.partition, unit, ops);
                }
                // Clean, non-migrating pages are simply dropped.
            }
        }
    }

    /// Handles the write-back of a dirty page that does not migrate to the
    /// NVEM cache: through the NVEM write buffer if configured (and not
    /// saturated), otherwise synchronously to the partition's disk unit.
    fn write_back_dirty(
        &mut self,
        page: PageId,
        partition: usize,
        unit: usize,
        ops: &mut Vec<PageOp>,
    ) {
        // Every path below propagates the page to non-volatile storage (the
        // NVEM write buffer or the disk itself): committed updates to it no
        // longer need redo.
        self.dirty_table.clear_page(page);
        let use_wb = self.config.policy(partition).use_nvem_write_buffer;
        if use_wb {
            if let Some(wb) = self.write_buffer.as_mut() {
                let absorbed = if let Some(pending) = wb.get_mut(&page) {
                    *pending += 1;
                    true
                } else if !wb.is_full() {
                    wb.insert(page, 1);
                    true
                } else if let Some(clean) = wb.lru_matching(|pending| *pending == 0) {
                    wb.remove(&clean);
                    wb.insert(page, 1);
                    true
                } else {
                    false
                };
                if absorbed {
                    ops.push(PageOp::NvemTransfer {
                        page,
                        to_nvem: true,
                    });
                    ops.push(PageOp::UnitWriteAsync { unit, page });
                    self.stats.write_buffer_absorbed += 1;
                    return;
                }
                // Every write-buffer frame still has a pending disk update:
                // fall through to a synchronous disk write.
                self.stats.write_buffer_overflows += 1;
            }
        }
        ops.push(PageOp::UnitWrite { unit, page });
    }

    /// Produces the read operation for a missing page and reports whether it
    /// was a second-level NVEM cache hit.
    fn fetch_missing_page(
        &mut self,
        partition: usize,
        page: PageId,
        location: PageLocation,
        ops: &mut Vec<PageOp>,
    ) -> bool {
        match location {
            PageLocation::MainMemoryResident => false,
            PageLocation::NvemResident => {
                ops.push(PageOp::NvemTransfer {
                    page,
                    to_nvem: false,
                });
                false
            }
            PageLocation::DiskUnit(unit) => {
                let policy = self.config.policy(partition);
                let in_nvem = policy.nvem_cache.enabled()
                    && self
                        .nvem_cache
                        .as_mut()
                        .is_some_and(|c| c.get(&page).is_some());
                if in_nvem {
                    ops.push(PageOp::NvemTransfer {
                        page,
                        to_nvem: false,
                    });
                    if self.config.update_strategy == UpdateStrategy::NoForce {
                        // Exclusive caching: the page now lives in main memory
                        // only ("the page copy in NVEM is deleted", §3.2).
                        if let Some(c) = self.nvem_cache.as_mut() {
                            c.remove(&page);
                        }
                        self.stats.migrations_from_nvem += 1;
                    }
                    true
                } else {
                    ops.push(PageOp::UnitRead { unit, page });
                    false
                }
            }
        }
    }

    /// Inserts a page into the second-level NVEM cache, preferring to replace
    /// a clean (already destaged) frame when the cache is full.
    fn insert_into_nvem_cache(&mut self, page: PageId, partition: usize, dirty: bool) {
        let Some(cache) = self.nvem_cache.as_mut() else {
            return;
        };
        if cache.is_full() && !cache.contains(&page) {
            if let Some(clean) = cache.lru_matching(|e| e.pending == 0) {
                cache.remove(&clean);
            }
            // Otherwise the plain LRU frame is evicted by `insert`; its disk
            // update is already under way, so no data is lost.
        }
        let pending_from_existing = cache.peek(&page).map(|e| e.pending).unwrap_or(0);
        cache.insert(
            page,
            NvemEntry {
                partition,
                pending: pending_from_existing + u32::from(dirty),
            },
        );
    }

    /// Admits a page a speculative (prefetch) read just brought in.  The
    /// admission contract for speculative data is deliberately narrow:
    ///
    /// * a page that is already buffered is left untouched — the
    ///   speculative read bought nothing (counted wasted),
    /// * a full buffer only ever gives up a *clean* frame; if every frame
    ///   is dirty the page is dropped rather than triggering write-backs
    ///   or NVEM migrations on behalf of data nobody asked for (counted
    ///   wasted),
    /// * an admitted frame enters clean and flagged prefetched: its first
    ///   reference counts a prefetch hit, dropping it unreferenced counts
    ///   it wasted.
    ///
    /// Called by the engine when the speculative I/O *completes* — the page
    /// is not buffered while the read is in flight (a demand miss in
    /// between coalesces onto the in-flight request at the scheduler).
    pub fn admit_prefetched(&mut self, partition: usize, page: PageId) -> PrefetchAdmit {
        self.ensure_partition_stats(partition);
        if self.mm.contains(&page) {
            self.prefetch_wasted[partition] += 1;
            return PrefetchAdmit::AlreadyResident;
        }
        if self.mm.is_full() {
            let Some(victim) = self.mm.lru_matching(|f| !f.dirty) else {
                self.prefetch_wasted[partition] += 1;
                return PrefetchAdmit::Rejected;
            };
            let state = self.mm.remove(&victim).expect("matched victim present");
            self.stats.mm_evictions += 1;
            if state.prefetched {
                self.prefetch_wasted[state.partition] += 1;
            }
            if let Some(tracker) = self.lru_k.as_mut() {
                tracker.remove(&victim);
            }
        }
        self.mm.insert(
            page,
            FrameState {
                partition,
                dirty: false,
                prefetched: true,
            },
        );
        if let Some(tracker) = self.lru_k.as_mut() {
            tracker.record_access(page);
        }
        PrefetchAdmit::Admitted
    }

    /// Commit-time forcing of a modified page (FORCE strategy).  Returns the
    /// operations the committing transaction must wait for (asynchronous disk
    /// updates excluded).
    pub fn force_page(&mut self, partition: usize, page: PageId) -> Vec<PageOp> {
        self.ensure_partition_stats(partition);
        let policy = self.config.policy(partition);
        let mut ops = Vec::new();
        match policy.location {
            PageLocation::MainMemoryResident => {
                // Memory-resident partitions use NOFORCE semantics.
                return ops;
            }
            PageLocation::NvemResident => {
                if self.mark_clean_if_dirty(page) {
                    self.dirty_table.clear_page(page);
                    ops.push(PageOp::NvemTransfer {
                        page,
                        to_nvem: true,
                    });
                    self.stats.forced_pages += 1;
                }
            }
            PageLocation::DiskUnit(unit) => {
                if !self.mark_clean_if_dirty(page) {
                    // The page was already written back (e.g. evicted before
                    // commit); nothing to force.
                    return ops;
                }
                self.stats.forced_pages += 1;
                if self.nvem_cache.is_some() && policy.nvem_cache.enabled() {
                    // FORCE writes the update to the NVEM cache; the page also
                    // stays buffered in main memory (replication, §3.2).
                    self.dirty_table.clear_page(page);
                    ops.push(PageOp::NvemTransfer {
                        page,
                        to_nvem: true,
                    });
                    ops.push(PageOp::UnitWriteAsync { unit, page });
                    self.insert_into_nvem_cache(page, partition, true);
                    self.stats.migrations_to_nvem += 1;
                } else {
                    self.write_back_dirty(page, partition, unit, &mut ops);
                }
            }
        }
        ops
    }

    /// Marks the main-memory copy of `page` clean.  Returns true if the page
    /// was present and dirty.
    fn mark_clean_if_dirty(&mut self, page: PageId) -> bool {
        if let Some(frame) = self.mm.peek_mut(&page) {
            if frame.dirty {
                frame.dirty = false;
                return true;
            }
        }
        false
    }

    /// Reports the completion of an asynchronous disk write started by an
    /// earlier [`PageOp::UnitWriteAsync`]: the corresponding NVEM cache or
    /// write-buffer frame becomes clean (replaceable).
    pub fn async_write_complete(&mut self, page: PageId) {
        if let Some(cache) = self.nvem_cache.as_mut() {
            if let Some(entry) = cache.peek_mut(&page) {
                entry.pending = entry.pending.saturating_sub(1);
                return;
            }
        }
        if let Some(wb) = self.write_buffer.as_mut() {
            if let Some(pending) = wb.peek_mut(&page) {
                *pending = pending.saturating_sub(1);
            }
        }
    }

    /// Drops any buffered copy of `page` because another node committed an
    /// update to it (data sharing: cross-node buffer invalidation).  The
    /// stale copy is discarded without a write-back even if it is dirty
    /// (possible under NOFORCE): its update is superseded by the committing
    /// node's version, which that node holds dirty in its own pool and will
    /// itself propagate — only the latest owner writes the page, as in a
    /// real coherence protocol.  Returns true if a copy was dropped.
    ///
    /// Frames that track an *in-flight* asynchronous disk write of a version
    /// this node produced earlier are left alone so the write's completion
    /// bookkeeping stays consistent: write-buffer frames always, and
    /// NVEM-cache entries while their pending count is non-zero.
    pub fn invalidate_page(&mut self, page: PageId) -> bool {
        // Whatever this node committed to the page is superseded: the
        // committing node now tracks the page in *its* dirty-page table.
        let dpt_cleared = self.dirty_table.clear_page(page).is_some();
        let removed = self.mm.remove(&page);
        if let Some(state) = removed {
            if state.prefetched {
                self.prefetch_wasted[state.partition] += 1;
            }
            if let Some(tracker) = self.lru_k.as_mut() {
                tracker.remove(&page);
            }
        }
        let mut dropped = removed.is_some();
        if let Some(cache) = self.nvem_cache.as_mut() {
            if cache.peek(&page).is_some_and(|e| e.pending == 0) {
                cache.remove(&page);
                dropped = true;
            }
        }
        if dropped {
            self.stats.invalidations += 1;
        } else if dpt_cleared {
            // The stale copy was already evicted / written back, but the
            // remote commit still superseded this node's redo entry.  Count
            // it so the invalidation really is visible in reports.
            self.dpt_only_clears += 1;
        }
        dropped
    }

    /// Clears a *superseded* dirty-page-table entry for `page` without
    /// touching any buffered copy (on-request validation: a remote commit
    /// produced a newer committed version, so this node's pending redo
    /// entry is obsolete — but no invalidation message exists to drop the
    /// copy itself; the copy is detected stale at the next reference).
    /// Keeping the DPT exact between the remote commit and that reference
    /// tightens `min_rec_lsn`, so fuzzy checkpoints record the true redo
    /// boundary instead of a superseded one.  Returns true if an entry was
    /// cleared.
    pub fn clear_superseded_dpt(&mut self, page: PageId) -> bool {
        let cleared = self.dirty_table.clear_page(page).is_some();
        if cleared {
            self.dpt_only_clears += 1;
        }
        cleared
    }

    /// Drops any buffered copy of `page` *unconditionally* because a
    /// reference-time version check found it stale (on-request validation).
    /// Unlike commit-time [`BufferManager::invalidate_page`] this also
    /// removes a second-level NVEM entry with write-backs still in flight:
    /// the stale copy must not satisfy the re-read that follows, and the
    /// in-flight writes' completions tolerate a missing entry
    /// ([`BufferManager::async_write_complete`] simply finds nothing to
    /// decrement).  The dirty-page-table entry is cleared like any other
    /// superseded redo entry.  Returns true if a copy was dropped.
    pub fn discard_stale_copy(&mut self, page: PageId) -> bool {
        let dpt_cleared = self.dirty_table.clear_page(page).is_some();
        let removed = self.mm.remove(&page);
        if let Some(state) = removed {
            if state.prefetched {
                self.prefetch_wasted[state.partition] += 1;
            }
            if let Some(tracker) = self.lru_k.as_mut() {
                tracker.remove(&page);
            }
        }
        let mut dropped = removed.is_some();
        if let Some(cache) = self.nvem_cache.as_mut() {
            dropped |= cache.remove(&page).is_some();
        }
        if dropped {
            self.stats.invalidations += 1;
        } else if dpt_cleared {
            self.dpt_only_clears += 1;
        }
        dropped
    }

    fn ensure_partition_stats(&mut self, partition: usize) {
        if partition >= self.stats.per_partition.len() {
            self.stats
                .per_partition
                .resize(partition + 1, Default::default());
        }
        if partition >= self.prefetch_hits.len() {
            self.prefetch_hits.resize(partition + 1, 0);
            self.prefetch_wasted.resize(partition + 1, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PartitionPolicy, SecondLevelMode};
    use dbmodel::database::PartitionSpec;
    use dbmodel::Database;

    fn db() -> Database {
        Database::from_specs(vec![
            PartitionSpec::uniform("A", 1000, 10),
            PartitionSpec::uniform("B", 1000, 10),
        ])
    }

    fn disk_config(mm: usize) -> BufferConfig {
        BufferConfig::disk_based(&db(), mm)
    }

    #[test]
    fn read_miss_then_hit() {
        let mut bm = BufferManager::new(disk_config(10));
        let miss = bm.reference_page(0, PageId(1), false);
        assert!(!miss.main_memory_hit);
        assert_eq!(
            miss.ops,
            vec![PageOp::UnitRead {
                unit: 0,
                page: PageId(1)
            }]
        );
        let hit = bm.reference_page(0, PageId(1), false);
        assert!(hit.main_memory_hit);
        assert!(hit.ops.is_empty());
        assert!((bm.stats().mm_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn write_access_marks_frame_dirty_and_forces_writeback_on_eviction() {
        let mut bm = BufferManager::new(disk_config(2));
        bm.reference_page(0, PageId(1), true);
        assert!(bm.mm_is_dirty(PageId(1)));
        bm.reference_page(0, PageId(2), false);
        // Third page evicts page 1 (dirty) → synchronous write-back + read.
        let out = bm.reference_page(0, PageId(3), false);
        assert_eq!(
            out.ops,
            vec![
                PageOp::UnitWrite {
                    unit: 0,
                    page: PageId(1)
                },
                PageOp::UnitRead {
                    unit: 0,
                    page: PageId(3)
                },
            ]
        );
        assert_eq!(bm.stats().mm_evictions, 1);
        assert_eq!(bm.stats().dirty_evictions, 1);
        assert!(!bm.mm_contains(PageId(1)));
    }

    #[test]
    fn clean_eviction_needs_no_writeback() {
        let mut bm = BufferManager::new(disk_config(1));
        bm.reference_page(0, PageId(1), false);
        let out = bm.reference_page(0, PageId(2), false);
        assert_eq!(
            out.ops,
            vec![PageOp::UnitRead {
                unit: 0,
                page: PageId(2)
            }]
        );
        assert_eq!(bm.stats().dirty_evictions, 0);
    }

    #[test]
    fn memory_resident_partition_always_hits() {
        let mut cfg = disk_config(1);
        cfg.partitions[1] = PartitionPolicy::memory_resident();
        let mut bm = BufferManager::new(cfg);
        for i in 0..100 {
            let out = bm.reference_page(1, PageId(1000 + i), true);
            assert!(out.main_memory_hit);
            assert!(out.ops.is_empty());
        }
        assert_eq!(bm.mm_pages(), 0);
        assert!((bm.stats().per_partition[1].mm_hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nvem_resident_partition_reads_and_writes_through_nvem() {
        let mut cfg = disk_config(1);
        cfg.partitions[0] = PartitionPolicy::nvem_resident();
        let mut bm = BufferManager::new(cfg);
        let out = bm.reference_page(0, PageId(1), true);
        assert_eq!(
            out.ops,
            vec![PageOp::NvemTransfer {
                page: PageId(1),
                to_nvem: false
            }]
        );
        // Evicting the dirty page writes it back to NVEM, not to a disk unit.
        let out2 = bm.reference_page(0, PageId(2), false);
        assert_eq!(
            out2.ops,
            vec![
                PageOp::NvemTransfer {
                    page: PageId(1),
                    to_nvem: true
                },
                PageOp::NvemTransfer {
                    page: PageId(2),
                    to_nvem: false
                },
            ]
        );
    }

    #[test]
    fn nvem_write_buffer_absorbs_dirty_evictions() {
        let cfg = disk_config(1).with_nvem_write_buffer(4);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), true);
        let out = bm.reference_page(0, PageId(2), false);
        assert_eq!(
            out.ops,
            vec![
                PageOp::NvemTransfer {
                    page: PageId(1),
                    to_nvem: true
                },
                PageOp::UnitWriteAsync {
                    unit: 0,
                    page: PageId(1)
                },
                PageOp::UnitRead {
                    unit: 0,
                    page: PageId(2)
                },
            ]
        );
        assert_eq!(bm.stats().write_buffer_absorbed, 1);
        assert_eq!(bm.write_buffer_pages(), 1);
        // Completion of the async write makes the frame clean again.
        bm.async_write_complete(PageId(1));
    }

    #[test]
    fn full_write_buffer_falls_back_to_synchronous_writes() {
        let cfg = disk_config(1).with_nvem_write_buffer(2);
        let mut bm = BufferManager::new(cfg);
        // Three dirty evictions without any async completion: the third one
        // finds the write buffer full of pending pages.
        bm.reference_page(0, PageId(1), true);
        bm.reference_page(0, PageId(2), true); // evicts 1 → WB
        bm.reference_page(0, PageId(3), true); // evicts 2 → WB
        let out = bm.reference_page(0, PageId(4), true); // evicts 3 → overflow
        assert!(out.ops.contains(&PageOp::UnitWrite {
            unit: 0,
            page: PageId(3)
        }));
        assert_eq!(bm.stats().write_buffer_overflows, 1);
        // After a completion there is room again.
        bm.async_write_complete(PageId(1));
        let out = bm.reference_page(0, PageId(5), true); // evicts 4
        assert!(out.ops.contains(&PageOp::UnitWriteAsync {
            unit: 0,
            page: PageId(4)
        }));
    }

    #[test]
    fn noforce_nvem_cache_is_exclusive() {
        let cfg = disk_config(2).with_nvem_cache(4, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), true);
        bm.reference_page(0, PageId(2), false);
        // Page 3 evicts page 1 → migrates to NVEM cache (dirty → async write).
        let out = bm.reference_page(0, PageId(3), false);
        assert_eq!(
            out.ops,
            vec![
                PageOp::NvemTransfer {
                    page: PageId(1),
                    to_nvem: true
                },
                PageOp::UnitWriteAsync {
                    unit: 0,
                    page: PageId(1)
                },
                PageOp::UnitRead {
                    unit: 0,
                    page: PageId(3)
                },
            ]
        );
        assert!(bm.nvem_contains(PageId(1)));
        assert!(!bm.mm_contains(PageId(1)));
        // Re-referencing page 1: NVEM hit, page moves back to main memory and
        // is removed from the NVEM cache (exclusive caching).
        let out = bm.reference_page(0, PageId(1), false);
        assert!(out.nvem_cache_hit);
        assert_eq!(out.ops.len(), 2); // eviction of page 2 (clean → dropped) has no op
        assert!(matches!(
            out.ops.last(),
            Some(PageOp::NvemTransfer { to_nvem: false, .. })
        ));
        assert!(!bm.nvem_contains(PageId(1)));
        assert!(bm.mm_contains(PageId(1)));
        assert_eq!(bm.stats().migrations_from_nvem, 1);
    }

    #[test]
    fn force_nvem_cache_replicates_pages() {
        let cfg = disk_config(4)
            .with_nvem_cache(4, SecondLevelMode::All)
            .with_update_strategy(UpdateStrategy::Force);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), true);
        let ops = bm.force_page(0, PageId(1));
        assert_eq!(
            ops,
            vec![
                PageOp::NvemTransfer {
                    page: PageId(1),
                    to_nvem: true
                },
                PageOp::UnitWriteAsync {
                    unit: 0,
                    page: PageId(1)
                },
            ]
        );
        // The page stays in main memory *and* in the NVEM cache.
        assert!(bm.mm_contains(PageId(1)));
        assert!(bm.nvem_contains(PageId(1)));
        assert!(!bm.mm_is_dirty(PageId(1)));
        assert_eq!(bm.stats().forced_pages, 1);
        // Under FORCE an NVEM hit does not remove the NVEM copy.
        // Evict page 1 from MM first (clean now, so it is silently dropped).
        bm.reference_page(0, PageId(2), false);
        bm.reference_page(0, PageId(3), false);
        bm.reference_page(0, PageId(4), false);
        bm.reference_page(0, PageId(5), false);
        assert!(!bm.mm_contains(PageId(1)));
        let out = bm.reference_page(0, PageId(1), false);
        assert!(out.nvem_cache_hit);
        assert!(bm.nvem_contains(PageId(1)));
    }

    #[test]
    fn force_page_without_dirty_copy_is_a_noop() {
        let cfg = disk_config(4).with_update_strategy(UpdateStrategy::Force);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), false);
        assert!(bm.force_page(0, PageId(1)).is_empty());
        assert!(bm.force_page(0, PageId(99)).is_empty());
        assert_eq!(bm.stats().forced_pages, 0);
    }

    #[test]
    fn force_page_without_nvem_goes_to_disk_synchronously() {
        let cfg = disk_config(4).with_update_strategy(UpdateStrategy::Force);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(1, PageId(7), true);
        let ops = bm.force_page(1, PageId(7));
        assert_eq!(
            ops,
            vec![PageOp::UnitWrite {
                unit: 0,
                page: PageId(7)
            }]
        );
        assert!(!bm.mm_is_dirty(PageId(7)));
        // Forcing again is a no-op (already clean).
        assert!(bm.force_page(1, PageId(7)).is_empty());
    }

    #[test]
    fn migration_mode_only_modified_drops_clean_victims() {
        let cfg = disk_config(1).with_nvem_cache(4, SecondLevelMode::OnlyModified);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), false); // clean
        let out = bm.reference_page(0, PageId(2), true);
        // Clean victim is dropped, not migrated.
        assert_eq!(
            out.ops,
            vec![PageOp::UnitRead {
                unit: 0,
                page: PageId(2)
            }]
        );
        assert!(!bm.nvem_contains(PageId(1)));
        // Dirty victim migrates.
        let out = bm.reference_page(0, PageId(3), false);
        assert!(out.ops.contains(&PageOp::NvemTransfer {
            page: PageId(2),
            to_nvem: true
        }));
        assert!(bm.nvem_contains(PageId(2)));
    }

    #[test]
    fn nvem_cache_prefers_replacing_clean_frames() {
        let cfg = disk_config(1).with_nvem_cache(2, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        // Create three migrations: 1 dirty, 2 clean, 3 clean.
        bm.reference_page(0, PageId(1), true);
        bm.reference_page(0, PageId(2), false); // evicts 1 (dirty) → NVEM
        bm.reference_page(0, PageId(3), false); // evicts 2 (clean) → NVEM
        assert!(bm.nvem_contains(PageId(1)) && bm.nvem_contains(PageId(2)));
        // Next migration must replace page 2 (clean) and keep page 1 (pending
        // disk update).
        bm.reference_page(0, PageId(4), false); // evicts 3 → NVEM
        assert!(bm.nvem_contains(PageId(1)));
        assert!(!bm.nvem_contains(PageId(2)));
        assert!(bm.nvem_contains(PageId(3)));
        // After the async write of page 1 completes it becomes replaceable.
        bm.async_write_complete(PageId(1));
        bm.reference_page(0, PageId(5), false); // evicts 4 → NVEM replaces 1
        assert!(!bm.nvem_contains(PageId(1)));
    }

    #[test]
    fn per_partition_hit_ratios_are_tracked_separately() {
        let mut bm = BufferManager::new(disk_config(10));
        bm.reference_page(0, PageId(1), false);
        bm.reference_page(0, PageId(1), false);
        bm.reference_page(1, PageId(500), false);
        let s = bm.stats();
        assert_eq!(s.per_partition[0].references, 2);
        assert!((s.per_partition[0].mm_hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.per_partition[1].references, 1);
        assert_eq!(s.per_partition[1].mm_hits, 0);
        assert_eq!(s.references(), 3);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let mut cfg = disk_config(10);
        cfg.mm_buffer_pages = 0;
        let _ = BufferManager::new(cfg);
    }

    #[test]
    fn invalidate_page_drops_mm_and_nvem_copies() {
        let cfg = disk_config(2).with_nvem_cache(4, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), false);
        bm.reference_page(0, PageId(2), false);
        bm.reference_page(0, PageId(3), false); // evicts 1 (clean) → NVEM cache
        assert!(bm.nvem_contains(PageId(1)));
        assert!(bm.mm_contains(PageId(2)));
        // Invalidate a main-memory copy and a clean NVEM-cache copy.
        assert!(bm.invalidate_page(PageId(2)));
        assert!(bm.invalidate_page(PageId(1)));
        assert!(!bm.mm_contains(PageId(2)));
        assert!(!bm.nvem_contains(PageId(1)));
        assert_eq!(bm.stats().invalidations, 2);
        // Pages this node never buffered are a no-op.
        assert!(!bm.invalidate_page(PageId(99)));
        assert_eq!(bm.stats().invalidations, 2);
        // The next reference misses again (the stale copy is gone).
        let out = bm.reference_page(0, PageId(2), false);
        assert!(!out.main_memory_hit && !out.nvem_cache_hit);
    }

    #[test]
    fn invalidate_page_spares_nvem_entries_with_inflight_writes() {
        let cfg = disk_config(1).with_nvem_cache(4, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), true);
        bm.reference_page(0, PageId(2), false); // evicts 1 dirty → NVEM, async write pending
        assert!(bm.nvem_contains(PageId(1)));
        // The pending entry tracks an in-flight disk write: invalidation must
        // leave its bookkeeping alone.
        assert!(!bm.invalidate_page(PageId(1)));
        assert!(bm.nvem_contains(PageId(1)));
        assert_eq!(bm.stats().invalidations, 0);
        // Once the write completes the entry is a plain (clean) cache copy
        // and becomes invalidatable.
        bm.async_write_complete(PageId(1));
        assert!(bm.invalidate_page(PageId(1)));
        assert!(!bm.nvem_contains(PageId(1)));
        assert_eq!(bm.stats().invalidations, 1);
    }

    #[test]
    fn dirty_table_tracks_committed_updates_until_writeback() {
        let mut bm = BufferManager::new(disk_config(2));
        bm.reference_page(0, PageId(1), true);
        // Commit of the update: the page is dirty in MM only → tracked.
        bm.note_committed_update(0, PageId(1), 7);
        assert_eq!(bm.dirty_page_table().rec_lsn(PageId(1)), Some(7));
        assert_eq!(bm.dirty_page_table().min_rec_lsn(), Some(7));
        // Eviction writes the page back → the committed update is durable.
        bm.reference_page(0, PageId(2), false);
        bm.reference_page(0, PageId(3), false); // evicts page 1 (dirty)
        assert!(bm.dirty_page_table().is_empty());
    }

    #[test]
    fn dirty_table_ignores_already_propagated_commits() {
        let mut bm = BufferManager::new(disk_config(1));
        bm.reference_page(0, PageId(1), true);
        // Evicting page 1 writes it back synchronously.
        bm.reference_page(0, PageId(2), false);
        // The commit arrives after the page was already written back: no redo
        // will ever be needed, so the table must stay empty.
        bm.note_committed_update(0, PageId(1), 3);
        assert!(bm.dirty_page_table().is_empty());
        // A clean page (read only) is never tracked either.
        bm.note_committed_update(0, PageId(2), 4);
        assert!(bm.dirty_page_table().is_empty());
    }

    #[test]
    fn dirty_table_always_tracks_memory_resident_partitions() {
        let mut cfg = disk_config(1);
        cfg.partitions[1] = PartitionPolicy::memory_resident();
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(1, PageId(500), true);
        bm.note_committed_update(1, PageId(500), 9);
        // MM-resident pages are never written back; their committed updates
        // stay volatile until a crash replays them from the log.
        assert_eq!(bm.dirty_page_table().rec_lsn(PageId(500)), Some(9));
    }

    #[test]
    fn force_and_migration_clear_the_dirty_table() {
        // FORCE to disk.
        let cfg = disk_config(4).with_update_strategy(UpdateStrategy::Force);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), true);
        bm.note_committed_update(0, PageId(1), 1);
        assert_eq!(bm.dirty_page_table().len(), 1);
        bm.force_page(0, PageId(1));
        assert!(bm.dirty_page_table().is_empty());
        // Migration into the (non-volatile) NVEM cache.
        let cfg = disk_config(1).with_nvem_cache(4, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), true);
        bm.note_committed_update(0, PageId(1), 2);
        bm.reference_page(0, PageId(2), false); // evicts 1 → NVEM cache
        assert!(bm.dirty_page_table().is_empty());
    }

    #[test]
    fn invalidation_clears_the_dirty_table_entry() {
        let mut bm = BufferManager::new(disk_config(4));
        bm.reference_page(0, PageId(1), true);
        bm.note_committed_update(0, PageId(1), 5);
        assert!(bm.invalidate_page(PageId(1)));
        assert!(bm.dirty_page_table().is_empty());
    }

    #[test]
    fn dpt_only_clear_is_counted_for_evicted_then_remotely_committed_pages() {
        // Regression for the invisible-invalidation bug: a node holding a
        // dirty-page-table entry for a page it no longer buffers (here a
        // memory-resident partition, which never occupies buffer frames) is
        // remotely invalidated.  The DPT entry must be cleared — and, new in
        // this PR, the clear must be counted instead of vanishing from every
        // report because no buffered copy dropped.
        let mut cfg = disk_config(1);
        cfg.partitions[1] = PartitionPolicy::memory_resident();
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(1, PageId(500), true);
        bm.note_committed_update(1, PageId(500), 7);
        // MM-resident pages never occupy buffer frames: a remote commit finds
        // no copy to drop but must still clear (and now count) the DPT entry.
        assert!(!bm.invalidate_page(PageId(500)));
        assert!(bm.dirty_page_table().is_empty());
        assert_eq!(bm.stats().invalidations, 0);
        assert_eq!(bm.dpt_only_clears(), 1);
        // A pure no-op invalidation (no copy, no DPT entry) counts nothing.
        assert!(!bm.invalidate_page(PageId(501)));
        assert_eq!(bm.dpt_only_clears(), 1);
        // Reset at end of warm-up clears the counter.
        bm.reset_stats();
        assert_eq!(bm.dpt_only_clears(), 0);
    }

    #[test]
    fn holds_page_matches_invalidate_page_reach() {
        // `holds_page` must be true exactly when `invalidate_page` would do
        // any work: MM copy, NVEM-cache entry (pending or not), DPT entry.
        let cfg = disk_config(1).with_nvem_cache(4, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        assert!(!bm.holds_page(PageId(1)));
        bm.reference_page(0, PageId(1), true);
        assert!(bm.holds_page(PageId(1))); // MM copy
        bm.reference_page(0, PageId(2), false); // evicts 1 dirty → NVEM, pending write
        assert!(bm.holds_page(PageId(1))); // NVEM entry, even with pending > 0
        bm.async_write_complete(PageId(1));
        assert!(bm.holds_page(PageId(1))); // NVEM entry, clean
        bm.invalidate_page(PageId(1));
        assert!(!bm.holds_page(PageId(1)));
        // DPT-only holding (memory-resident partition).
        let mut cfg = disk_config(1);
        cfg.partitions[1] = PartitionPolicy::memory_resident();
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(1, PageId(500), true);
        bm.note_committed_update(1, PageId(500), 3);
        assert!(bm.holds_page(PageId(500))); // DPT entry only
        bm.invalidate_page(PageId(500));
        assert!(!bm.holds_page(PageId(500)));
    }

    #[test]
    fn spared_pending_nvem_entry_still_serves_hits_afterwards() {
        // Pins the current (intended under BroadcastInvalidate) behavior for
        // the stale-NVEM-hit window: an NVEM entry spared by invalidation
        // because of an in-flight write remains referencable and serves a
        // second-level hit on the next miss.  OnRequestValidate closes this
        // window at the engine level with per-page version stamps.
        let cfg = disk_config(1).with_nvem_cache(4, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), true);
        bm.reference_page(0, PageId(2), false); // evicts 1 dirty → NVEM, pending
        assert!(!bm.invalidate_page(PageId(1))); // spared: pending > 0
        let out = bm.reference_page(0, PageId(1), false); // evicts 2, refetches 1
        assert!(out.nvem_cache_hit, "spared entry serves the stale hit");
    }

    #[test]
    fn discard_stale_copy_removes_even_pending_nvem_entries() {
        // Same setup as above, but the on-request-validation discard must
        // remove the pending entry so the re-read cannot hit it, and the
        // in-flight write's completion must tolerate the missing entry.
        let cfg = disk_config(1).with_nvem_cache(4, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), true);
        bm.reference_page(0, PageId(2), false); // evicts 1 dirty → NVEM, pending
        assert!(bm.nvem_contains(PageId(1)));
        assert!(
            !bm.has_current_copy(PageId(1)),
            "a pending NVEM entry may be stale and must never donate"
        );
        assert!(bm.has_current_copy(PageId(2)));
        assert!(bm.discard_stale_copy(PageId(1)));
        assert!(!bm.nvem_contains(PageId(1)));
        assert_eq!(bm.stats().invalidations, 1);
        bm.async_write_complete(PageId(1)); // in-flight write completes: no-op
        let out = bm.reference_page(0, PageId(1), false);
        assert!(!out.nvem_cache_hit, "discarded entry no longer serves hits");
        // Discard with no copy anywhere is a complete no-op.
        assert!(!bm.discard_stale_copy(PageId(99)));
        assert_eq!(bm.stats().invalidations, 1);
        assert_eq!(bm.dpt_only_clears(), 0);
    }

    #[test]
    fn lru_k2_evicts_single_touch_pages_before_the_hot_page() {
        // mm holds 3 frames; page 1 is referenced twice (full K=2 history),
        // then a scan of single-touch pages must evict among itself and leave
        // the hot page resident (plain LRU would evict page 1 first).
        let cfg = disk_config(3).with_lru_k(2);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), false);
        bm.reference_page(0, PageId(1), false);
        bm.reference_page(0, PageId(2), false);
        bm.reference_page(0, PageId(3), false);
        bm.reference_page(0, PageId(4), false); // evicts 2 (oldest single-touch)
        assert!(bm.mm_contains(PageId(1)));
        assert!(!bm.mm_contains(PageId(2)));
        bm.reference_page(0, PageId(5), false); // evicts 3
        assert!(bm.mm_contains(PageId(1)));
        assert!(!bm.mm_contains(PageId(3)));
        assert_eq!(bm.stats().mm_evictions, 2);
    }

    #[test]
    fn lru_k1_config_keeps_the_plain_lru_chain() {
        // K = 1 must not allocate a tracker and must evict in LRU order.
        let cfg = disk_config(2).with_lru_k(1);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), false);
        bm.reference_page(0, PageId(2), false);
        bm.reference_page(0, PageId(1), false); // touch 1; 2 is now LRU
        bm.reference_page(0, PageId(3), false); // evicts 2
        assert!(bm.mm_contains(PageId(1)));
        assert!(!bm.mm_contains(PageId(2)));
    }

    #[test]
    fn lru_k_tracker_stays_in_sync_across_invalidations() {
        let cfg = disk_config(2).with_lru_k(2);
        let mut bm = BufferManager::new(cfg);
        bm.reference_page(0, PageId(1), false);
        bm.reference_page(0, PageId(2), false);
        assert!(bm.invalidate_page(PageId(1)));
        // The freed frame is reusable and the tracker no longer knows page 1:
        // filling the buffer again must evict among resident pages only.
        bm.reference_page(0, PageId(3), false);
        bm.reference_page(0, PageId(4), false); // evicts 2 or 3, never panics
        assert_eq!(bm.mm_pages(), 2);
        assert!(!bm.mm_contains(PageId(1)));
    }

    #[test]
    fn reset_stats_keeps_buffer_contents() {
        let mut bm = BufferManager::new(disk_config(10));
        bm.reference_page(0, PageId(1), false);
        bm.reset_stats();
        assert_eq!(bm.stats().references(), 0);
        assert!(bm.mm_contains(PageId(1)));
        let out = bm.reference_page(0, PageId(1), false);
        assert!(out.main_memory_hit);
    }

    #[test]
    fn prefetch_admission_hit_and_waste_accounting() {
        let mut bm = BufferManager::new(disk_config(10));
        assert_eq!(bm.admit_prefetched(0, PageId(1)), PrefetchAdmit::Admitted);
        assert!(bm.mm_contains(PageId(1)));
        assert!(!bm.mm_is_dirty(PageId(1)));
        // The first reference of the prefetched frame is a hit.
        let hit = bm.reference_page(0, PageId(1), false);
        assert!(hit.main_memory_hit);
        assert_eq!(bm.prefetch_hits()[0], 1);
        // ... and only the first: the flag is consumed.
        bm.reference_page(0, PageId(1), false);
        assert_eq!(bm.prefetch_hits()[0], 1);
        // Re-admitting a resident page bought nothing.
        assert_eq!(
            bm.admit_prefetched(0, PageId(1)),
            PrefetchAdmit::AlreadyResident
        );
        assert_eq!(bm.prefetch_wasted()[0], 1);
    }

    #[test]
    fn prefetch_never_evicts_dirty_pages() {
        let mut bm = BufferManager::new(disk_config(2));
        bm.reference_page(0, PageId(1), true);
        bm.reference_page(0, PageId(2), true);
        assert_eq!(bm.admit_prefetched(0, PageId(3)), PrefetchAdmit::Rejected);
        assert!(!bm.mm_contains(PageId(3)));
        assert!(bm.mm_contains(PageId(1)) && bm.mm_contains(PageId(2)));
        assert_eq!(bm.prefetch_wasted()[0], 1);
    }

    #[test]
    fn prefetch_admission_replaces_the_oldest_clean_frame() {
        let mut bm = BufferManager::new(disk_config(2));
        bm.reference_page(0, PageId(1), true); // dirty
        bm.reference_page(0, PageId(2), false); // clean
        assert_eq!(bm.admit_prefetched(0, PageId(3)), PrefetchAdmit::Admitted);
        assert!(bm.mm_contains(PageId(1)), "dirty frame must survive");
        assert!(!bm.mm_contains(PageId(2)));
        assert!(bm.mm_contains(PageId(3)));
    }

    #[test]
    fn dropping_an_unreferenced_prefetched_frame_counts_wasted() {
        let mut bm = BufferManager::new(disk_config(10));
        assert_eq!(bm.admit_prefetched(0, PageId(1)), PrefetchAdmit::Admitted);
        assert!(bm.invalidate_page(PageId(1)));
        assert_eq!(bm.prefetch_wasted()[0], 1);
        assert_eq!(bm.prefetch_hits()[0], 0);
        // reset clears the counters like every other statistic.
        bm.reset_stats();
        assert_eq!(bm.prefetch_wasted()[0], 0);
    }
}
