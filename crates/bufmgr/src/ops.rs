//! The operations the buffer manager asks the transaction engine to perform.

use dbmodel::PageId;

/// One storage operation resulting from a page reference or a commit force.
///
/// The engine executes the operations of a [`FetchOutcome`] strictly in order:
/// synchronous operations delay the transaction (and, for NVEM transfers,
/// keep the CPU busy), asynchronous writes are started and forgotten by the
/// transaction (their completion is reported back to the buffer manager and
/// the owning disk unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOp {
    /// Synchronous page transfer between main memory and NVEM (read a page
    /// from the NVEM cache / an NVEM-resident partition, or store a page into
    /// the NVEM cache / write buffer).  The CPU stays busy for the transfer.
    NvemTransfer {
        /// The page being moved.
        page: PageId,
        /// Direction: true when the page moves from main memory into NVEM.
        to_nvem: bool,
    },
    /// Read `page` from disk unit `unit`; the transaction waits.
    UnitRead {
        /// Index of the disk unit.
        unit: usize,
        /// The page to read.
        page: PageId,
    },
    /// Write `page` to disk unit `unit`; the transaction waits.
    UnitWrite {
        /// Index of the disk unit.
        unit: usize,
        /// The page to write.
        page: PageId,
    },
    /// Write `page` to disk unit `unit` asynchronously.  The transaction does
    /// not wait; when the write completes the engine must call
    /// [`crate::BufferManager::async_write_complete`].
    UnitWriteAsync {
        /// Index of the disk unit.
        unit: usize,
        /// The page to write.
        page: PageId,
    },
}

impl PageOp {
    /// True for operations the transaction must wait for.
    pub fn is_synchronous(&self) -> bool {
        !matches!(self, PageOp::UnitWriteAsync { .. })
    }

    /// True for operations that hold the CPU while they run.
    pub fn holds_cpu(&self) -> bool {
        matches!(self, PageOp::NvemTransfer { .. })
    }

    /// The page the operation concerns.
    pub fn page(&self) -> PageId {
        match *self {
            PageOp::NvemTransfer { page, .. }
            | PageOp::UnitRead { page, .. }
            | PageOp::UnitWrite { page, .. }
            | PageOp::UnitWriteAsync { page, .. } => page,
        }
    }
}

/// The result of referencing a page through the buffer manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchOutcome {
    /// True if the reference was satisfied in main memory (or the partition is
    /// main-memory resident) without any storage operation.
    pub main_memory_hit: bool,
    /// True if the reference was satisfied by the second-level NVEM cache.
    pub nvem_cache_hit: bool,
    /// Operations to execute, in order.
    pub ops: Vec<PageOp>,
}

impl FetchOutcome {
    /// A pure main-memory hit.
    pub fn hit() -> Self {
        Self {
            main_memory_hit: true,
            nvem_cache_hit: false,
            ops: Vec::new(),
        }
    }

    /// Number of synchronous operations the transaction must wait for.
    pub fn synchronous_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_synchronous()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        let nvem = PageOp::NvemTransfer {
            page: PageId(1),
            to_nvem: true,
        };
        let read = PageOp::UnitRead {
            unit: 0,
            page: PageId(2),
        };
        let write = PageOp::UnitWrite {
            unit: 0,
            page: PageId(3),
        };
        let async_write = PageOp::UnitWriteAsync {
            unit: 1,
            page: PageId(4),
        };
        assert!(nvem.is_synchronous() && nvem.holds_cpu());
        assert!(read.is_synchronous() && !read.holds_cpu());
        assert!(write.is_synchronous());
        assert!(!async_write.is_synchronous());
        assert_eq!(async_write.page(), PageId(4));
        assert_eq!(nvem.page(), PageId(1));
    }

    #[test]
    fn fetch_outcome_hit_has_no_ops() {
        let h = FetchOutcome::hit();
        assert!(h.main_memory_hit);
        assert!(!h.nvem_cache_hit);
        assert_eq!(h.synchronous_ops(), 0);
    }
}
