//! The dirty-page table of the recovery subsystem.
//!
//! Tracks, per buffer pool, the pages that carry a *committed* update which
//! has not yet reached non-volatile storage, together with the page's
//! recovery LSN (the LSN of the oldest such update).  The transaction engine
//! inserts entries when an update transaction commits; the buffer manager
//! removes them the moment the page's current version is propagated —
//! written back to its disk unit, migrated into the (non-volatile) NVEM
//! cache or write buffer, forced at commit, or invalidated because another
//! node's commit superseded the copy.
//!
//! A fuzzy checkpoint reads [`DirtyPageTable::min_rec_lsn`] to find the redo
//! boundary; a crash reads the whole table to know which pages must be
//! re-read and redone.

use std::collections::HashMap;

use dbmodel::PageId;

/// Log sequence number (mirrors the engine's `recovery::Lsn`; the buffer
/// manager treats it as an opaque monotonically increasing stamp).
pub type RecLsn = u64;

/// Pages with committed-but-unpropagated updates and their recovery LSNs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtyPageTable {
    entries: HashMap<PageId, RecLsn>,
}

impl DirtyPageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a committed update to `page` with the given LSN.  If the page
    /// already has an unpropagated committed update the earlier recovery LSN
    /// is kept (redo must start at the oldest lost update).
    pub fn note_committed_update(&mut self, page: PageId, lsn: RecLsn) {
        self.entries.entry(page).or_insert(lsn);
    }

    /// Removes `page` from the table (its current version reached
    /// non-volatile storage, or another node took ownership).  Returns the
    /// page's recovery LSN if it was present.
    pub fn clear_page(&mut self, page: PageId) -> Option<RecLsn> {
        self.entries.remove(&page)
    }

    /// The recovery LSN of `page`, if it has an unpropagated committed
    /// update.
    pub fn rec_lsn(&self, page: PageId) -> Option<RecLsn> {
        self.entries.get(&page).copied()
    }

    /// The minimum recovery LSN over all entries — the redo boundary a fuzzy
    /// checkpoint records.  `None` when every committed update is propagated.
    pub fn min_rec_lsn(&self) -> Option<RecLsn> {
        // analyzer: allow(hash-iter): min over all values is order-independent
        self.entries.values().copied().min()
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no page carries an unpropagated committed update.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(page, recovery LSN)` pairs (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (PageId, RecLsn)> + '_ {
        // analyzer: allow(hash-iter): documented-unordered accessor; callers
        // must fold order-independently or sort (recovery folds a per-page min)
        self.entries.iter().map(|(p, l)| (*p, *l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_committed_update_pins_the_recovery_lsn() {
        let mut t = DirtyPageTable::new();
        assert!(t.is_empty());
        t.note_committed_update(PageId(1), 10);
        // A later commit to the same unpropagated page keeps the older LSN.
        t.note_committed_update(PageId(1), 25);
        assert_eq!(t.rec_lsn(PageId(1)), Some(10));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn min_rec_lsn_is_the_redo_boundary() {
        let mut t = DirtyPageTable::new();
        assert_eq!(t.min_rec_lsn(), None);
        t.note_committed_update(PageId(1), 30);
        t.note_committed_update(PageId(2), 12);
        t.note_committed_update(PageId(3), 44);
        assert_eq!(t.min_rec_lsn(), Some(12));
        assert_eq!(t.clear_page(PageId(2)), Some(12));
        assert_eq!(t.min_rec_lsn(), Some(30));
        assert_eq!(t.clear_page(PageId(2)), None);
    }

    #[test]
    fn propagation_then_recommit_restarts_the_lsn() {
        let mut t = DirtyPageTable::new();
        t.note_committed_update(PageId(7), 5);
        t.clear_page(PageId(7)); // written back
        t.note_committed_update(PageId(7), 90);
        assert_eq!(t.rec_lsn(PageId(7)), Some(90));
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs, vec![(PageId(7), 90)]);
    }
}
