//! Buffer-manager statistics: main-memory and NVEM hit ratios (globally and
//! per partition), replacement and write-back counts.  Table 4.2 and the
//! hit-ratio plots of Fig. 4.5/4.6 are produced from these counters.

/// Per-partition reference counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionBufferStats {
    /// Page references for the partition (one per object access).
    pub references: u64,
    /// References satisfied in main memory (including memory-resident
    /// partitions).
    pub mm_hits: u64,
    /// References satisfied by the second-level NVEM cache.
    pub nvem_hits: u64,
}

impl PartitionBufferStats {
    /// Main-memory hit ratio.
    pub fn mm_hit_ratio(&self) -> f64 {
        ratio(self.mm_hits, self.references)
    }

    /// Additional NVEM hit ratio (relative to all references).
    pub fn nvem_hit_ratio(&self) -> f64 {
        ratio(self.nvem_hits, self.references)
    }
}

/// Global buffer-manager statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BufferStats {
    /// Per-partition counters.
    pub per_partition: Vec<PartitionBufferStats>,
    /// Pages evicted from the main-memory buffer.
    pub mm_evictions: u64,
    /// Evicted pages that were dirty and required a write-back.
    pub dirty_evictions: u64,
    /// Pages that migrated from main memory to the NVEM cache.
    pub migrations_to_nvem: u64,
    /// Pages that migrated from the NVEM cache back to main memory.
    pub migrations_from_nvem: u64,
    /// Writes absorbed by the NVEM write buffer.
    pub write_buffer_absorbed: u64,
    /// Writes that bypassed a full NVEM write buffer and went to disk
    /// synchronously.
    pub write_buffer_overflows: u64,
    /// Pages forced at commit time (FORCE strategy).
    pub forced_pages: u64,
    /// Buffered copies dropped because another node committed an update to
    /// the page (data sharing: cross-node buffer invalidation).
    pub invalidations: u64,
}

impl BufferStats {
    /// Creates zeroed statistics for `num_partitions` partitions.
    pub fn new(num_partitions: usize) -> Self {
        Self {
            per_partition: vec![PartitionBufferStats::default(); num_partitions],
            ..Self::default()
        }
    }

    /// Total page references.
    pub fn references(&self) -> u64 {
        self.per_partition.iter().map(|p| p.references).sum()
    }

    /// Global main-memory hit ratio.
    pub fn mm_hit_ratio(&self) -> f64 {
        ratio(
            self.per_partition.iter().map(|p| p.mm_hits).sum(),
            self.references(),
        )
    }

    /// Global additional hit ratio in the second-level NVEM cache.
    pub fn nvem_hit_ratio(&self) -> f64 {
        ratio(
            self.per_partition.iter().map(|p| p.nvem_hits).sum(),
            self.references(),
        )
    }

    /// Combined hit ratio of main memory and NVEM cache.
    pub fn combined_hit_ratio(&self) -> f64 {
        self.mm_hit_ratio() + self.nvem_hit_ratio()
    }

    /// Resets every counter (end of warm-up).
    pub fn reset(&mut self) {
        let n = self.per_partition.len();
        *self = Self::new(n);
    }

    /// Adds `other`'s counters into `self` (aggregation across the per-node
    /// buffer managers of a data-sharing run).  Partition vectors of different
    /// lengths are aligned by index.
    pub fn absorb(&mut self, other: &BufferStats) {
        if other.per_partition.len() > self.per_partition.len() {
            self.per_partition
                .resize(other.per_partition.len(), PartitionBufferStats::default());
        }
        for (mine, theirs) in self.per_partition.iter_mut().zip(&other.per_partition) {
            mine.references += theirs.references;
            mine.mm_hits += theirs.mm_hits;
            mine.nvem_hits += theirs.nvem_hits;
        }
        self.mm_evictions += other.mm_evictions;
        self.dirty_evictions += other.dirty_evictions;
        self.migrations_to_nvem += other.migrations_to_nvem;
        self.migrations_from_nvem += other.migrations_from_nvem;
        self.write_buffer_absorbed += other.write_buffer_absorbed;
        self.write_buffer_overflows += other.write_buffer_overflows;
        self.forced_pages += other.forced_pages;
        self.invalidations += other.invalidations;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratios() {
        let mut s = BufferStats::new(2);
        s.per_partition[0].references = 80;
        s.per_partition[0].mm_hits = 60;
        s.per_partition[0].nvem_hits = 10;
        s.per_partition[1].references = 20;
        s.per_partition[1].mm_hits = 10;
        assert_eq!(s.references(), 100);
        assert!((s.mm_hit_ratio() - 0.7).abs() < 1e-12);
        assert!((s.nvem_hit_ratio() - 0.1).abs() < 1e-12);
        assert!((s.combined_hit_ratio() - 0.8).abs() < 1e-12);
        assert!((s.per_partition[0].mm_hit_ratio() - 0.75).abs() < 1e-12);
        assert!((s.per_partition[0].nvem_hit_ratio() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_ratios() {
        let s = BufferStats::new(1);
        assert_eq!(s.mm_hit_ratio(), 0.0);
        assert_eq!(s.nvem_hit_ratio(), 0.0);
        assert_eq!(s.per_partition[0].mm_hit_ratio(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = BufferStats::new(3);
        s.per_partition[2].references = 5;
        s.mm_evictions = 7;
        s.invalidations = 2;
        s.reset();
        assert_eq!(s, BufferStats::new(3));
    }

    #[test]
    fn absorb_sums_counters_and_aligns_partitions() {
        let mut a = BufferStats::new(1);
        a.per_partition[0].references = 10;
        a.per_partition[0].mm_hits = 5;
        a.mm_evictions = 3;
        let mut b = BufferStats::new(2);
        b.per_partition[0].references = 4;
        b.per_partition[1].references = 6;
        b.per_partition[1].nvem_hits = 2;
        b.invalidations = 1;
        a.absorb(&b);
        assert_eq!(a.per_partition.len(), 2);
        assert_eq!(a.per_partition[0].references, 14);
        assert_eq!(a.per_partition[0].mm_hits, 5);
        assert_eq!(a.per_partition[1].nvem_hits, 2);
        assert_eq!(a.references(), 20);
        assert_eq!(a.mm_evictions, 3);
        assert_eq!(a.invalidations, 1);
    }
}
