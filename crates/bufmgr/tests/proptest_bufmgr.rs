//! Property-based tests for the buffer manager invariants.

use bufmgr::{BufferConfig, BufferManager, PageOp, SecondLevelMode, UpdateStrategy};
use dbmodel::database::PartitionSpec;
use dbmodel::{Database, PageId};
use proptest::prelude::*;

fn database() -> Database {
    Database::from_specs(vec![
        PartitionSpec::uniform("A", 10_000, 10),
        PartitionSpec::uniform("B", 10_000, 10),
    ])
}

fn check_invariants(bm: &BufferManager, mm_cap: usize, nvem_cap: usize) -> Result<(), TestCaseError> {
    prop_assert!(bm.mm_pages() <= mm_cap);
    prop_assert!(bm.nvem_pages() <= nvem_cap.max(1));
    let s = bm.stats();
    let mm_hits: u64 = s.per_partition.iter().map(|p| p.mm_hits).sum();
    let nvem_hits: u64 = s.per_partition.iter().map(|p| p.nvem_hits).sum();
    prop_assert!(mm_hits + nvem_hits <= s.references());
    prop_assert!(s.dirty_evictions <= s.mm_evictions);
    Ok(())
}

proptest! {
    /// Under NOFORCE with an NVEM cache, a page is never cached in main memory
    /// and the NVEM cache at the same time (exclusive caching), buffers never
    /// exceed their capacity, and every dirty eviction produces exactly one
    /// write (synchronous or asynchronous).
    #[test]
    fn noforce_exclusive_caching_invariants(
        mm_cap in 1usize..12,
        nvem_cap in 1usize..12,
        refs in proptest::collection::vec((0u64..40, any::<bool>()), 1..400),
    ) {
        let db = database();
        let cfg = BufferConfig::disk_based(&db, mm_cap)
            .with_nvem_cache(nvem_cap, SecondLevelMode::All);
        let mut bm = BufferManager::new(cfg);
        for (page, is_write) in refs {
            let out = bm.reference_page(0, PageId(page), is_write);
            // Exclusive caching: the referenced page is in MM, not in NVEM.
            prop_assert!(bm.mm_contains(PageId(page)));
            prop_assert!(!bm.nvem_contains(PageId(page)));
            // Any UnitWrite/UnitWriteAsync in the ops refers to a page that is
            // no longer dirty in main memory (it was evicted or forced).
            for op in &out.ops {
                if let PageOp::UnitWrite { page, .. } | PageOp::UnitWriteAsync { page, .. } = op {
                    prop_assert!(!bm.mm_is_dirty(*page));
                }
            }
            check_invariants(&bm, mm_cap, nvem_cap)?;
        }
    }

    /// Under FORCE, committing (forcing) every written page leaves no dirty
    /// frames behind, regardless of the reference pattern.
    #[test]
    fn force_leaves_no_dirty_pages(
        mm_cap in 2usize..16,
        txs in proptest::collection::vec(
            proptest::collection::vec((0u64..30, any::<bool>()), 1..8),
            1..60,
        ),
    ) {
        let db = database();
        let cfg = BufferConfig::disk_based(&db, mm_cap)
            .with_update_strategy(UpdateStrategy::Force);
        let mut bm = BufferManager::new(cfg);
        for tx in txs {
            let mut written = Vec::new();
            for (page, is_write) in &tx {
                bm.reference_page(0, PageId(*page), *is_write);
                if *is_write {
                    written.push(PageId(*page));
                }
            }
            written.sort_unstable();
            written.dedup();
            for page in written {
                bm.force_page(0, page);
                prop_assert!(!bm.mm_is_dirty(page));
            }
        }
        // After forcing every transaction's pages, no page is dirty.
        for p in 0..30u64 {
            prop_assert!(!bm.mm_is_dirty(PageId(p)), "page {p} still dirty");
        }
    }

    /// The write buffer absorbs at most its capacity of concurrently pending
    /// writes; overflows fall back to synchronous writes but never lose a
    /// write-back (each dirty eviction produces exactly one write op).
    #[test]
    fn write_buffer_conservation(
        wb_cap in 1usize..6,
        pages in proptest::collection::vec(0u64..50, 1..300),
    ) {
        let db = database();
        let cfg = BufferConfig::disk_based(&db, 1).with_nvem_write_buffer(wb_cap);
        let mut bm = BufferManager::new(cfg);
        let mut dirty_evictions_writes = 0u64;
        for page in pages {
            // Every reference is a write with a 1-frame buffer: each new page
            // evicts the previous dirty page.
            let out = bm.reference_page(0, PageId(page), true);
            let writes = out.ops.iter().filter(|o| matches!(o,
                PageOp::UnitWrite { .. } | PageOp::UnitWriteAsync { .. })).count();
            dirty_evictions_writes += writes as u64;
        }
        let s = bm.stats();
        prop_assert_eq!(s.dirty_evictions, dirty_evictions_writes);
        prop_assert!(bm.write_buffer_pages() <= wb_cap);
        prop_assert_eq!(s.write_buffer_absorbed + s.write_buffer_overflows, s.dirty_evictions);
    }
}
