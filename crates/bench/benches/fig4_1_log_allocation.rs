//! Fig. 4.1 — influence of the log file allocation (Debit-Credit, NOFORCE).
//!
//! Each benchmark iteration runs a complete (scaled-down) simulation of one
//! log-allocation alternative at 150 TPS and reports the simulated response
//! time through a Criterion measurement of the simulation run itself.

mod common;

use tpsim::presets::LogVariant;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{fig4_1_point, run_debit_credit};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig4_1_log_allocation");
    for variant in LogVariant::ALL {
        group.bench_function(variant.label(), |b| {
            b.iter(|| {
                let report = run_debit_credit(&settings, fig4_1_point(variant, 150.0));
                black_box(report.response_time.mean)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
