//! Fig. 6.x — restart time after a crash (beyond the paper).
//!
//! Crosses FORCE/NOFORCE with a disk- vs NVEM-resident log at a fixed
//! checkpoint interval, crashes every run at the same point of the
//! measurement interval and reports the simulated restart time.  The §3.3
//! trade-off this measures: NOFORCE with a disk-resident log gives the best
//! steady-state commit path but the slowest restart (the whole redo tail is
//! read back at disk latency), while an NVEM-resident log tail collapses the
//! restart's log-read component and FORCE removes the page-redo component
//! entirely.

mod common;

use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{recovery_point, run_recovery_crash};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let checkpoint_interval_ms = settings.measure_ms / 4.0;
    let mut group = c.benchmark_group("fig6_restart_time");
    for (label, force, nvem_log) in [
        ("noforce_disk_log", false, false),
        ("noforce_nvem_log", false, true),
        ("force_disk_log", true, false),
        ("force_nvem_log", true, true),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let report = run_recovery_crash(
                    &settings,
                    recovery_point(force, nvem_log, checkpoint_interval_ms, 150.0),
                );
                black_box(report.restart_ms())
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
