//! Table 4.2 — main-memory and second-level cache hit ratios for NOFORCE and
//! FORCE.

mod common;

use tpsim::presets::SecondLevel;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{caching_point, run_debit_credit};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("table4_2_hit_ratios");
    for force in [false, true] {
        let strategy = if force { "force" } else { "noforce" };
        for (label, second) in [
            ("vol_disk_cache", SecondLevel::VolatileDiskCache(1_000)),
            ("nv_disk_cache", SecondLevel::NonVolatileDiskCache(1_000)),
            ("nvem_cache", SecondLevel::NvemCache(1_000)),
        ] {
            group.bench_function(format!("{strategy}/{label}"), |b| {
                b.iter(|| {
                    let report = run_debit_credit(
                        &settings,
                        caching_point(500, second, force, settings.caching_rate),
                    );
                    black_box((report.mm_hit_ratio(), report.nvem_hit_ratio()))
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
