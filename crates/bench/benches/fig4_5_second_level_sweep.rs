//! Fig. 4.5 — impact of the second-level buffer size (Debit-Credit, NOFORCE,
//! 500-page main-memory buffer).

mod common;

use tpsim::presets::SecondLevel;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{caching_point, run_debit_credit};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig4_5_second_level_sweep");
    for size in [500usize, 2_000] {
        for (label, second) in [
            ("vol_disk_cache", SecondLevel::VolatileDiskCache(size)),
            ("nv_disk_cache", SecondLevel::NonVolatileDiskCache(size)),
            ("nvem_cache", SecondLevel::NvemCache(size)),
        ] {
            group.bench_function(format!("{label}/{size}"), |b| {
                b.iter(|| {
                    let report = run_debit_credit(
                        &settings,
                        caching_point(500, second, false, settings.caching_rate),
                    );
                    black_box(report.response_time.mean)
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
