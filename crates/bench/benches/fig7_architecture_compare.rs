//! Fig. 7.x — data sharing vs shared nothing (beyond the paper).
//!
//! Runs the fig5.x node-scaling workload (same per-node offered rate at
//! 1/2/4/8 nodes) on both multi-node architectures.  Data sharing pays the
//! shared single log disk and global-lock message round trips; shared
//! nothing partitions database *and* log over the nodes but function-ships
//! the remote accesses, whose fraction grows as ≈ (n-1)/n with the node
//! count.  The interesting output is the throughput crossover: at which node
//! count the partitioned log's scaling starts beating the shipping overhead.

mod common;

use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{data_sharing_point, run_debit_credit, shared_nothing_point};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig7_architecture_compare");
    for nodes in [1usize, 2, 4, 8] {
        group.bench_function(format!("{nodes} nodes data-sharing"), |b| {
            b.iter(|| {
                let report = run_debit_credit(&settings, data_sharing_point(nodes, 60.0));
                black_box(report.throughput_tps)
            })
        });
        group.bench_function(format!("{nodes} nodes shared-nothing"), |b| {
            b.iter(|| {
                let report = run_debit_credit(&settings, shared_nothing_point(nodes, 60.0));
                black_box(report.throughput_tps)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
