//! Table 2.1 — device access times of the extended storage hierarchy.
//!
//! This bench measures the *simulated device models* directly (a microbench of
//! the storage substrate): the time to decide and account one page access for
//! each storage type, and the single-access latencies the models produce
//! (which reproduce the table's ordering: extended memory ≪ SSD/disk cache ≪
//! disk).

mod common;

use dbmodel::PageId;
use storage::{DiskUnit, DiskUnitKind, DiskUnitParams, IoKind, NvemParams};
use tpsim_bench::microbench::{black_box, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_1_device_latency");

    // Report the modelled latencies once (they are deterministic).
    let nvem = NvemParams::default();
    let ssd = DiskUnitParams::database_disks(DiskUnitKind::Ssd, 1, 1);
    let disk = DiskUnitParams::database_disks(DiskUnitKind::Regular, 1, 1);
    println!(
        "modelled access times: NVEM {:.3} ms, SSD/disk cache {:.1} ms, disk {:.1} ms",
        nvem.synchronous_cost(50.0),
        ssd.cache_hit_latency(),
        disk.disk_access_latency()
    );

    for (name, kind) in [
        ("ssd", DiskUnitKind::Ssd),
        ("regular_disk", DiskUnitKind::Regular),
        ("volatile_cache", DiskUnitKind::VolatileCache),
        ("nonvolatile_cache", DiskUnitKind::NonVolatileCache),
    ] {
        group.bench_function(format!("request_decision/{name}"), |b| {
            let mut unit = DiskUnit::new(
                name,
                DiskUnitParams {
                    kind,
                    cache_size: 4_096,
                    ..DiskUnitParams::default()
                },
            );
            let mut page = 0u64;
            b.iter(|| {
                page = (page + 1) % 16_384;
                let decision = unit.request(IoKind::Write, PageId(page));
                black_box(decision.foreground_service_time())
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
