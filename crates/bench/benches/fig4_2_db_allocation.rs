//! Fig. 4.2 — impact of the database allocation (Debit-Credit, NOFORCE).

mod common;

use tpsim::presets::DebitCreditStorage;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{fig4_2_point, run_debit_credit};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig4_2_db_allocation");
    for storage in DebitCreditStorage::ALL {
        group.bench_function(storage.label(), |b| {
            b.iter(|| {
                let report = run_debit_credit(&settings, fig4_2_point(storage, 200.0));
                black_box(report.response_time.mean)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
