//! Kernel hot-path throughput: the calendar event queue in isolation, and
//! whole-engine event throughput on representative configurations.
//!
//! Three groups:
//!
//! * `event_queue` — the classic *hold model* directly against
//!   [`simkernel::EventQueue`]: a fixed event population, each pop schedules
//!   one replacement.  This isolates the future event list from the rest of
//!   the engine (the structure the calendar queue replaced a binary heap in).
//! * `request_scheduler` — churn directly against
//!   [`storage::RequestScheduler`]: a mixed hot-set/ascending-run read
//!   stream submitted, dispatched and completed with a bounded in-flight
//!   window, isolating the scheduler's queueing structures.
//! * `quantile_sketch_insert` — streaming inserts into
//!   [`simkernel::QuantileSketch`] at several capacities: the per-completion
//!   cost the tail-latency section adds to the engine's hot path.
//! * `engine` — complete simulation runs (single-node quickstart point and
//!   the 8-node fig5.x point), reporting the kernel's events/sec via
//!   [`tpsim::Simulation::run_profiled`].
//!
//! ```bash
//! cargo bench -p tpsim-bench --bench kernel_throughput
//! ```

mod common;

use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{self, Family, RunSettings};

use simkernel::{EventQueue, QuantileSketch, SimRng};

/// One hold-model iteration: `churn` pop+schedule pairs over a primed queue.
fn hold_model(population: usize, churn: usize) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SimRng::seed_from(42);
    for i in 0..population {
        q.schedule_at(rng.exponential(5.0), i as u64);
    }
    let mut checksum = 0.0;
    for i in 0..churn {
        let e = q.pop().expect("population never drains");
        checksum += e.time;
        q.schedule_in(rng.exponential(5.0), (population + i) as u64);
    }
    checksum
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    for population in [64usize, 1_024, 16_384] {
        group.bench_function(format!("population {population}"), |b| {
            b.iter(|| black_box(hold_model(population, 200_000)))
        });
    }
    group.finish();
}

/// One request-scheduler churn iteration: `rounds` demand reads over a mix
/// of a hot page set (exercising same-page coalescing) and ascending runs
/// (exercising adjacent-page merging and the elevator sweep), with a bounded
/// number of batches kept in flight.  Returns a checksum so the work cannot
/// be optimised away.
fn scheduler_churn(params: storage::IoSchedulerParams, rounds: usize) -> u64 {
    let mut sched = storage::RequestScheduler::new(params, 4);
    let mut next_io: u32 = 0;
    let mut live: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    for i in 0..rounds {
        let page = if i % 4 == 0 {
            // Hot set: repeated pages that coalesce.
            dbmodel::PageId((i as u64).wrapping_mul(2_654_435_761) % 64)
        } else {
            // Cold ascending walk: adjacent pages that merge.
            dbmodel::PageId(10_000 + (i as u64 % 1_024))
        };
        let _ = sched.submit(page, i % 128);
        while let Some(batch) = sched.next_batch() {
            let io = next_io;
            next_io += 1;
            sched.register_inflight(io, &batch);
            live.push_back(io);
        }
        if live.len() > 3 {
            let io = live.pop_front().expect("non-empty");
            let _ = sched.complete(io);
        }
    }
    while let Some(io) = live.pop_front() {
        let _ = sched.complete(io);
    }
    let stats = sched.stats();
    stats.coalesced + stats.merged_adjacent + u64::from(next_io)
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("request_scheduler_churn");
    for (label, params) in [
        (
            "coalesce",
            storage::IoSchedulerParams {
                coalesce: true,
                ..storage::IoSchedulerParams::default()
            },
        ),
        (
            "coalesce+elevator",
            storage::IoSchedulerParams {
                coalesce: true,
                elevator: true,
                ..storage::IoSchedulerParams::default()
            },
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| black_box(scheduler_churn(params, 100_000)))
        });
    }
    group.finish();
}

/// One sketch-insert iteration: `n` exponential response times streamed into
/// a fresh sketch of capacity `k`, then one quantile read so the compactions
/// cannot be optimised away.
fn sketch_stream(k: usize, n: usize) -> f64 {
    let mut sketch = QuantileSketch::new(k);
    let mut rng = SimRng::seed_from(42);
    for _ in 0..n {
        sketch.insert(rng.exponential(25.0));
    }
    sketch.quantile(0.99).unwrap_or(0.0)
}

fn bench_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantile_sketch_insert");
    for k in [64usize, 512, 4_096] {
        group.bench_function(format!("capacity {k}"), |b| {
            b.iter(|| black_box(sketch_stream(k, 200_000)))
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut settings = RunSettings::full();
    settings.parallel = false;
    let mut group = c.benchmark_group("engine_events_per_sec");
    for (label, config) in [
        (
            "quickstart/disk".to_string(),
            runner::fig4_2_point(tpsim::presets::DebitCreditStorage::Disk, 100.0),
        ),
        (
            "fig5.x/8-nodes".to_string(),
            runner::data_sharing_point(8, 60.0),
        ),
    ] {
        group.bench_function(label.clone(), |b| {
            b.iter(|| {
                let (report, profile) =
                    runner::run_point_profiled(&settings, config.clone(), Family::DebitCredit);
                black_box((report.completed, profile.events))
            })
        });
        // One extra profiled run to print the kernel-level numbers the
        // ms/iter summary cannot show.
        let (_, profile) =
            runner::run_point_profiled(&settings, config.clone(), Family::DebitCredit);
        eprintln!(
            "bench engine_events_per_sec/{label:<32} {:>12} events {:>12.0} events/sec",
            profile.events, profile.events_per_sec
        );
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench_event_queue(&mut c);
    bench_scheduler(&mut c);
    bench_sketch(&mut c);
    bench_engine(&mut c);
    c.final_summary();
}
