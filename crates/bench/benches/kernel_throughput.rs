//! Kernel hot-path throughput: the calendar event queue in isolation, and
//! whole-engine event throughput on representative configurations.
//!
//! Two groups:
//!
//! * `event_queue` — the classic *hold model* directly against
//!   [`simkernel::EventQueue`]: a fixed event population, each pop schedules
//!   one replacement.  This isolates the future event list from the rest of
//!   the engine (the structure the calendar queue replaced a binary heap in).
//! * `engine` — complete simulation runs (single-node quickstart point and
//!   the 8-node fig5.x point), reporting the kernel's events/sec via
//!   [`tpsim::Simulation::run_profiled`].
//!
//! ```bash
//! cargo bench -p tpsim-bench --bench kernel_throughput
//! ```

mod common;

use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{self, Family, RunSettings};

use simkernel::{EventQueue, SimRng};

/// One hold-model iteration: `churn` pop+schedule pairs over a primed queue.
fn hold_model(population: usize, churn: usize) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = SimRng::seed_from(42);
    for i in 0..population {
        q.schedule_at(rng.exponential(5.0), i as u64);
    }
    let mut checksum = 0.0;
    for i in 0..churn {
        let e = q.pop().expect("population never drains");
        checksum += e.time;
        q.schedule_in(rng.exponential(5.0), (population + i) as u64);
    }
    checksum
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_hold");
    for population in [64usize, 1_024, 16_384] {
        group.bench_function(format!("population {population}"), |b| {
            b.iter(|| black_box(hold_model(population, 200_000)))
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut settings = RunSettings::full();
    settings.parallel = false;
    let mut group = c.benchmark_group("engine_events_per_sec");
    for (label, config) in [
        (
            "quickstart/disk".to_string(),
            runner::fig4_2_point(tpsim::presets::DebitCreditStorage::Disk, 100.0),
        ),
        (
            "fig5.x/8-nodes".to_string(),
            runner::data_sharing_point(8, 60.0),
        ),
    ] {
        group.bench_function(label.clone(), |b| {
            b.iter(|| {
                let (report, profile) =
                    runner::run_point_profiled(&settings, config.clone(), Family::DebitCredit);
                black_box((report.completed, profile.events))
            })
        });
        // One extra profiled run to print the kernel-level numbers the
        // ms/iter summary cannot show.
        let (_, profile) =
            runner::run_point_profiled(&settings, config.clone(), Family::DebitCredit);
        eprintln!(
            "bench engine_events_per_sec/{label:<32} {:>12} events {:>12.0} events/sec",
            profile.events, profile.events_per_sec
        );
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench_event_queue(&mut c);
    bench_engine(&mut c);
    c.final_summary();
}
