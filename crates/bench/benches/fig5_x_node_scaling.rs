//! Fig. 5.x — multi-node data-sharing scaling (beyond the paper).
//!
//! Sweeps 1/2/4/8 computing modules in front of the shared storage complex,
//! offering the same per-node arrival rate at every point, and reports the
//! simulated runs through a Criterion measurement.  The per-node rate is
//! chosen so the aggregate offered load crosses the ~200 TPS ceiling of the
//! single shared log disk: the CPU complex scales linearly with the node
//! count, but throughput scales sub-linearly because every node queues at the
//! shared log device, pays message round trips to the global lock service on
//! node 0, and invalidates the other nodes' buffered copies at commit.

mod common;

use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{data_sharing_point, run_debit_credit};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig5_x_node_scaling");
    for nodes in [1usize, 2, 4, 8] {
        group.bench_function(format!("{nodes} nodes"), |b| {
            b.iter(|| {
                let report = run_debit_credit(&settings, data_sharing_point(nodes, 60.0));
                black_box(report.throughput_tps)
            })
        });
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
