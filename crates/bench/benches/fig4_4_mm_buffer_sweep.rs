//! Fig. 4.4 — impact of caching for different main-memory buffer sizes
//! (Debit-Credit, NOFORCE, fixed arrival rate).

mod common;

use tpsim::presets::SecondLevel;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{caching_point, run_debit_credit};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig4_4_mm_buffer_sweep");
    let series = [
        ("mm_only", SecondLevel::None),
        ("vol_disk_cache_1000", SecondLevel::VolatileDiskCache(1_000)),
        (
            "nv_disk_cache_1000",
            SecondLevel::NonVolatileDiskCache(1_000),
        ),
        ("nvem_cache_1000", SecondLevel::NvemCache(1_000)),
    ];
    for (label, second) in series {
        for mm in [500usize, 2_000] {
            group.bench_function(format!("{label}/mm{mm}"), |b| {
                b.iter(|| {
                    let report = run_debit_credit(
                        &settings,
                        caching_point(mm, second, false, settings.caching_rate),
                    );
                    black_box((report.response_time.mean, report.mm_hit_ratio()))
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
