//! Fig. 4.6 — impact of the main-memory buffer size for the real-life (trace)
//! workload.

mod common;

use tpsim::presets::TraceStorage;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{run_trace, trace_point};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig4_6_trace_mm_sweep");
    let series = [
        ("mm_only", TraceStorage::MmOnly),
        (
            "vol_disk_cache_2000",
            TraceStorage::VolatileDiskCache(2_000),
        ),
        ("nvem_cache_2000", TraceStorage::NvemCache(2_000)),
        ("nvem_resident", TraceStorage::NvemResident),
    ];
    for (label, storage) in series {
        for mm in [200usize, 1_000] {
            group.bench_function(format!("{label}/mm{mm}"), |b| {
                b.iter(|| {
                    let report =
                        run_trace(&settings, trace_point(mm, storage, settings.trace_rate));
                    black_box(report.response_time.mean)
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
