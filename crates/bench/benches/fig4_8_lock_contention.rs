//! Fig. 4.8 — page- vs object-level locking for different allocation
//! strategies (high-contention synthetic workload).

mod common;

use lockmgr::CcMode;
use tpsim::presets::ContentionAllocation;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{fig4_8_point, run_contention};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig4_8_lock_contention");
    for allocation in ContentionAllocation::ALL {
        for granularity in [CcMode::Page, CcMode::Object] {
            let name = format!(
                "{}/{}",
                allocation.label(),
                if granularity == CcMode::Page {
                    "page"
                } else {
                    "object"
                }
            );
            group.bench_function(name, |b| {
                b.iter(|| {
                    let report =
                        run_contention(&settings, fig4_8_point(allocation, granularity, 150.0));
                    black_box((report.throughput_tps, report.lock_conflict_ratio()))
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
