//! Fig. 4.7 — impact of the second-level buffer size for the real-life
//! (trace) workload, 1,000-page main-memory buffer.

mod common;

use tpsim::presets::TraceStorage;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{run_trace, trace_point};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig4_7_trace_second_level");
    for size in [1_000usize, 4_000] {
        for (label, storage) in [
            ("vol_disk_cache", TraceStorage::VolatileDiskCache(size)),
            ("nv_disk_cache", TraceStorage::NonVolatileDiskCache(size)),
            ("nvem_cache", TraceStorage::NvemCache(size)),
        ] {
            group.bench_function(format!("{label}/{size}"), |b| {
                b.iter(|| {
                    let report =
                        run_trace(&settings, trace_point(1_000, storage, settings.trace_rate));
                    black_box((report.response_time.mean, report.nvem_hit_ratio()))
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
