//! Fig. 4.3 — FORCE vs NOFORCE update strategy (Debit-Credit).

mod common;

use tpsim::presets::DebitCreditStorage;
use tpsim_bench::microbench::{black_box, Criterion};
use tpsim_bench::runner::{fig4_3_point, run_debit_credit};

fn bench(c: &mut Criterion) {
    let settings = common::settings();
    let mut group = c.benchmark_group("fig4_3_force_noforce");
    let storages = [
        DebitCreditStorage::Disk,
        DebitCreditStorage::DiskWithNvCacheWriteBuffer,
        DebitCreditStorage::NvemResident,
    ];
    for storage in storages {
        for force in [true, false] {
            let name = format!(
                "{}/{}",
                if force { "FORCE" } else { "NOFORCE" },
                storage.label()
            );
            group.bench_function(name, |b| {
                b.iter(|| {
                    let report = run_debit_credit(&settings, fig4_3_point(storage, force, 150.0));
                    black_box(report.response_time.mean)
                })
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = common::criterion();
    bench(&mut c);
    c.final_summary();
}
