//! Shared Criterion configuration for the experiment benches: short
//! measurement windows (each iteration is a full simulation run) and the
//! quick run settings.

use tpsim_bench::microbench::Criterion;
use tpsim_bench::RunSettings;

/// Criterion instance tuned for whole-simulation iterations.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
}

/// Quick run settings shared by all experiment benches.
#[allow(dead_code)] // not every bench needs full run settings
pub fn settings() -> RunSettings {
    let mut s = RunSettings::quick();
    // Benches iterate the same point many times; keep each run short and
    // single-threaded so Criterion's timings are meaningful.
    s.parallel = false;
    s
}
