//! # tpsim-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! (§4).  Two entry points exist:
//!
//! * the **`experiments` binary** (`cargo run --release -p tpsim-bench --bin
//!   experiments`) prints the rows/series of each figure and table, and
//! * the **Criterion benches** (`cargo bench -p tpsim-bench`), one per figure
//!   and table, each of which runs representative configuration points of the
//!   corresponding experiment.
//!
//! The functions in this library build the configurations from
//! [`tpsim::presets`], run the simulations (optionally in parallel across the
//! points of a sweep), and format the results as text tables.  The same code
//! paths are used by the binary and by the benches so the regenerated numbers
//! in `EXPERIMENTS.md` are exactly what the benches exercise.

pub mod experiments;
pub mod microbench;
pub mod profile;
pub mod runner;

pub use experiments::{all_experiments, Experiment, ExperimentResult};
pub use profile::{kernel_profile_suite, ProfilePoint, ScalingInfo};
pub use runner::{ProfiledSweepPoint, RunSettings, SweepPoint};
